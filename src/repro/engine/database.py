"""The database facade: DDL, DML, constraint enforcement and change events.

:class:`Database` ties the storage pieces together:

* all tables share one :class:`~repro.engine.page.IOCounters`, so a query's
  total I/O is a single deterministic number;
* every enforced constraint is checked on the DML paths (informational
  constraints are skipped, per the paper's Section 1);
* PK / UNIQUE constraints get a backing unique index automatically;
* every successful change is published to registered *change observers* —
  this is the hook the soft-constraint maintenance engine (Section 4.3) and
  the exception-table (ASC-as-AST, Section 4.4) machinery subscribe to.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Callable, Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.engine.catalog import Catalog
from repro.engine.constraints import (
    Constraint,
    ConstraintMode,
    UniqueConstraint,
)
from repro.engine.index import BTreeIndex
from repro.engine.page import IOCounters
from repro.engine.row import RowId
from repro.engine.schema import TableSchema
from repro.engine.table import HeapTable


class ChangeEvent(NamedTuple):
    """A committed row change, published to observers after it happens."""

    kind: str  # "insert" | "delete" | "update"
    table_name: str
    old_row: Optional[Tuple[Any, ...]]
    new_row: Optional[Tuple[Any, ...]]


ChangeObserver = Callable[[ChangeEvent], None]

#: Shared no-op scope for the per-row statement-boundary passthroughs;
#: ``nullcontext`` is stateless, so one instance serves every caller.
_NULL_SCOPE = nullcontext()


class Database:
    """A complete single-process database instance."""

    def __init__(self) -> None:
        self.catalog = Catalog()
        self.counters = IOCounters()
        self.fault_injector = None
        self._observers: List[ChangeObserver] = []
        self._auto_index_sequence = 0
        # Set by DurabilityManager.attach; None = in-memory only.
        self.durability = None
        # Set by ConcurrencyEngine when the first session opens; None =
        # single-session (the DML/scan fast paths check this once).
        self.concurrency = None

    # -------------------------------------------------------------- resilience

    def attach_fault_injector(self, injector) -> None:
        """Attach (or with ``None``, detach) a fault injector everywhere.

        The injector is propagated to every existing table's page manager
        and every index, and to objects created later.  See
        :class:`repro.resilience.faults.FaultInjector`.
        """
        self.fault_injector = injector
        for name in self.catalog.table_names():
            table = self.catalog.table(name)
            table.pages.fault_injector = injector
            for index in self.catalog.indexes_on(name):
                index.fault_injector = injector

    def rebuild_index(self, name: str) -> BTreeIndex:
        """Rebuild an index from its heap — the recovery path after
        corruption quarantined it.

        The heap scan bypasses injection (the injector is paused for the
        duration) so recovery itself cannot be re-poisoned mid-rebuild.
        """
        index = self.catalog.index(name)
        table = self.catalog.table(index.table_name)
        injector = self.fault_injector
        was_enabled = injector.enabled if injector is not None else False
        if injector is not None:
            injector.pause()
        try:
            entries = []
            for row_id, row in table.scan():
                key = index.key_of(row)
                if key is not None:
                    entries.append((key, row_id))
            index.rebuild(entries)
        finally:
            if injector is not None and was_enabled:
                injector.resume()
        return index

    # ------------------------------------------------------------------- DDL

    def create_table(
        self,
        schema: TableSchema,
        constraints: Sequence[Constraint] = (),
    ) -> HeapTable:
        """Create a table and attach its constraints.

        Enforced PRIMARY KEY / UNIQUE constraints get a backing unique
        index; informational ones do not (nothing to check), though the
        optimizer still sees them in the catalog.
        """
        table = HeapTable(schema, self.counters)
        table.pages.fault_injector = self.fault_injector
        self.catalog.add_table(table)
        if self.durability is not None:
            self.durability.log_create_table(schema)
        for constraint in constraints:
            self.add_constraint(constraint)
        return table

    def add_constraint(self, constraint: Constraint) -> None:
        """Attach a constraint, creating a backing index when needed."""
        self.catalog.add_constraint(constraint)
        needs_index = isinstance(constraint, UniqueConstraint) and (
            constraint.mode is ConstraintMode.ENFORCED
        )
        if needs_index and constraint.backing_index_name is None:
            existing = self.catalog.find_index(
                constraint.table_name, constraint.column_names, prefix_ok=False
            )
            if existing is not None and existing.unique:
                constraint.backing_index_name = existing.name
            else:
                self._auto_index_sequence += 1
                index_name = (
                    f"idx_{constraint.table_name}_"
                    f"{constraint.kind}_{self._auto_index_sequence}"
                )
                index = self.create_index(
                    index_name,
                    constraint.table_name,
                    constraint.column_names,
                    unique=True,
                )
                constraint.backing_index_name = index.name
        if self.durability is not None:
            self.durability.log_add_constraint(constraint)

    def create_index(
        self,
        name: str,
        table_name: str,
        column_names: Sequence[str],
        unique: bool = False,
    ) -> BTreeIndex:
        """Create an index and bulk-load it from the current table data."""
        table = self.catalog.table(table_name)
        index = BTreeIndex(
            name, table.schema, column_names, unique=unique, counters=self.counters
        )
        index.fault_injector = self.fault_injector
        entries = []
        for row_id, row in table.scan():
            key = index.key_of(row)
            if key is not None:
                entries.append((key, row_id))
        index.rebuild(entries)
        self.catalog.add_index(index)
        if self.durability is not None:
            self.durability.log_create_index(index)
        return index

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        if self.durability is not None:
            self.durability.log_drop_table(name.lower())

    # -------------------------------------------------------------- accessors

    def table(self, name: str) -> HeapTable:
        return self.catalog.table(name)

    def schema(self, table_name: str) -> TableSchema:
        return self.catalog.table(table_name).schema

    # ----------------------------------------------------------- change events

    def add_observer(self, observer: ChangeObserver) -> None:
        """Subscribe to committed row changes (soft-constraint upkeep)."""
        self._observers.append(observer)

    def remove_observer(self, observer: ChangeObserver) -> None:
        self._observers.remove(observer)

    def _publish(self, event: ChangeEvent) -> None:
        for observer in self._observers:
            observer(event)

    # -------------------------------------------------------------------- DML

    def _statement_scope(self):
        """Durable statement boundary: all WAL records appended inside
        one scope commit together (or, after a crash, vanish together).
        A no-op context without durability or inside an open transaction.

        The passthrough cases short-circuit to a shared null context:
        this runs once per DML row, and even an immediately-yielding
        generator contextmanager is measurable at that frequency.
        """
        durability = self.durability
        if (
            durability is None
            or durability._txn_stack
            or durability._replaying
        ):
            return _NULL_SCOPE
        return durability.statement()

    def _mutation_guard(self):
        """The concurrency engine's latch, or a no-op without sessions.

        Held across one row's heap + index mutation and its version-note
        so a snapshot reader (which latches per page) never observes a
        half-applied change.
        """
        concurrency = self.concurrency
        if concurrency is None:
            return _NULL_SCOPE
        return concurrency.latch

    def statement_transaction(self):
        """An implicit transaction wrapping one multi-row DML statement."""
        from repro.engine.transactions import Transaction

        return Transaction(self)

    def rollback_statement(self, txn) -> None:
        """Roll back an implicit statement transaction.

        Statement rollback is a recovery action (like
        :meth:`rebuild_index`): injection is paused for the duration so
        the compensating writes cannot be re-poisoned by the very
        injector whose fault aborted the statement.
        """
        injector = self.fault_injector
        was_enabled = injector.enabled if injector is not None else False
        if injector is not None:
            injector.pause()
        try:
            txn.rollback()
        finally:
            if injector is not None and was_enabled:
                injector.resume()

    def insert(self, table_name: str, values: Sequence[Any]) -> RowId:
        """Insert one row, enforcing constraints and maintaining indexes."""
        table = self.catalog.table(table_name)
        row = table.schema.validate_row(values)
        for constraint in self.catalog.constraints_on(table.name):
            if not constraint.is_informational:
                constraint.check_insert(self, row)
        with self._mutation_guard(), self._statement_scope():
            row_id = table.insert(row)
            for index in self.catalog.indexes_on(table.name):
                index.insert(row, row_id)
            if self.concurrency is not None:
                self.concurrency.note_insert(table.name, row_id)
            if self.durability is not None:
                self.durability.log_insert(table.name, row_id, row)
            self._publish(ChangeEvent("insert", table.name, None, row))
        return row_id

    def insert_mapping(self, table_name: str, mapping: Dict[str, Any]) -> RowId:
        """Insert from a ``{column: value}`` dict (missing columns → NULL)."""
        table = self.catalog.table(table_name)
        return self.insert(table_name, table.schema.row_from_mapping(mapping))

    def insert_many(
        self, table_name: str, rows: Sequence[Sequence[Any]]
    ) -> List[RowId]:
        """Bulk insert as one atomic statement.

        More than one row is wrapped in an implicit transaction so a
        mid-statement fault rolls the whole statement back instead of
        leaving a prefix applied.
        """
        if len(rows) <= 1:
            return [self.insert(table_name, row) for row in rows]
        txn = self.statement_transaction()
        row_ids: List[RowId] = []
        try:
            for row in rows:
                row_ids.append(txn.insert(table_name, row))
        except BaseException:
            self.rollback_statement(txn)
            raise
        txn.commit()
        return row_ids

    def delete_row(self, table_name: str, row_id: RowId) -> Tuple[Any, ...]:
        """Delete one row by RowId (RESTRICT semantics for referencing FKs)."""
        table = self.catalog.table(table_name)
        row = table.fetch(row_id)
        for fk in self.catalog.foreign_keys_referencing(table.name):
            if not fk.is_informational:
                fk.check_parent_delete(self, row)
        for constraint in self.catalog.constraints_on(table.name):
            if not constraint.is_informational:
                constraint.check_delete(self, row)
        with self._mutation_guard(), self._statement_scope():
            table.delete(row_id)
            for index in self.catalog.indexes_on(table.name):
                index.delete(row, row_id)
            if self.concurrency is not None:
                self.concurrency.note_delete(table.name, row_id, row)
            if self.durability is not None:
                self.durability.log_delete(table.name, row_id, row)
            self._publish(ChangeEvent("delete", table.name, row, None))
        return row

    def update_row(
        self, table_name: str, row_id: RowId, values: Sequence[Any]
    ) -> RowId:
        """Replace one row's image, enforcing constraints on the new image."""
        table = self.catalog.table(table_name)
        new_row = table.schema.validate_row(values)
        old_row = table.fetch(row_id)
        for constraint in self.catalog.constraints_on(table.name):
            if not constraint.is_informational:
                constraint.check_update(self, old_row, new_row)
        # Parent-side restrict: if this table is referenced and the update
        # changes referenced key columns, stranded children must block it.
        for fk in self.catalog.foreign_keys_referencing(table.name):
            if fk.is_informational:
                continue
            parent_schema = table.schema
            old_key = tuple(
                old_row[parent_schema.position(c)] for c in fk.parent_columns
            )
            new_key = tuple(
                new_row[parent_schema.position(c)] for c in fk.parent_columns
            )
            if old_key != new_key:
                fk.check_parent_delete(self, old_row)
        with self._mutation_guard(), self._statement_scope():
            new_id, _ = table.update(row_id, new_row)
            for index in self.catalog.indexes_on(table.name):
                index.update(old_row, row_id, new_row, new_id)
            if self.concurrency is not None:
                self.concurrency.note_update(
                    table.name, row_id, new_id, old_row
                )
            if self.durability is not None:
                self.durability.log_update(
                    table.name, row_id, new_id, new_row
                )
            self._publish(ChangeEvent("update", table.name, old_row, new_row))
        return new_id

    def delete_where(
        self, table_name: str, predicate: Callable[[Dict[str, Any]], Optional[bool]]
    ) -> int:
        """Delete every row satisfying ``predicate``; returns the count."""
        table = self.catalog.table(table_name)
        names = table.schema.column_names()
        victims = [
            row_id
            for row_id, row in table.scan()
            if predicate(dict(zip(names, row))) is True
        ]
        if len(victims) <= 1:
            for row_id in victims:
                self.delete_row(table_name, row_id)
            return len(victims)
        # Multi-row statements are atomic: a mid-statement fault rolls
        # back the rows already deleted instead of leaving a prefix.
        txn = self.statement_transaction()
        try:
            for row_id in victims:
                txn.delete(table_name, row_id)
        except BaseException:
            self.rollback_statement(txn)
            raise
        txn.commit()
        return len(victims)

    def update_where(
        self,
        table_name: str,
        predicate: Callable[[Dict[str, Any]], Optional[bool]],
        assign: Callable[[Dict[str, Any]], Dict[str, Any]],
    ) -> int:
        """Update every matching row via an assignment function."""
        table = self.catalog.table(table_name)
        names = table.schema.column_names()
        targets: List[Tuple[RowId, Dict[str, Any]]] = []
        for row_id, row in table.scan():
            row_dict = dict(zip(names, row))
            if predicate(row_dict) is True:
                targets.append((row_id, row_dict))
        if len(targets) <= 1:
            for row_id, row_dict in targets:
                new_dict = dict(row_dict)
                new_dict.update(assign(row_dict))
                self.update_row(
                    table_name, row_id, [new_dict[name] for name in names]
                )
            return len(targets)
        txn = self.statement_transaction()
        try:
            for row_id, row_dict in targets:
                new_dict = dict(row_dict)
                new_dict.update(assign(row_dict))
                txn.update(
                    table_name, row_id, [new_dict[name] for name in names]
                )
        except BaseException:
            self.rollback_statement(txn)
            raise
        txn.commit()
        return len(targets)

    # ----------------------------------------------------------------- lookups

    def lookup_key(
        self, table_name: str, column_names: Sequence[str], key: Sequence[Any]
    ) -> List[RowId]:
        """RowIds of rows whose named columns equal ``key``.

        Routes through a matching index when one exists (counted as an
        index probe), otherwise falls back to a counted scan — exactly the
        cost asymmetry constraint checking has in a real engine.
        """
        index = self.catalog.find_index(table_name, column_names, prefix_ok=True)
        if index is not None and index.column_names[: len(column_names)] == [
            c.lower() for c in column_names
        ]:
            if len(index.column_names) == len(column_names):
                return index.search(key)
            return [
                rid
                for found_key, rid in index.range_scan(tuple(key), tuple(key))
            ]
        table = self.catalog.table(table_name)
        positions = [table.schema.position(c) for c in column_names]
        probe = tuple(key)
        return [
            row_id
            for row_id, row in table.scan()
            if tuple(row[p] for p in positions) == probe
        ]

    def fetch_rows(
        self, table_name: str, row_ids: Sequence[RowId]
    ) -> List[Tuple[Any, ...]]:
        table = self.catalog.table(table_name)
        return [table.fetch(row_id) for row_id in row_ids]

    # -------------------------------------------------------------------- misc

    def scan_dicts(self, table_name: str) -> Iterator[Dict[str, Any]]:
        """Full scan yielding rows as dicts (convenience for tools/tests)."""
        table = self.catalog.table(table_name)
        names = table.schema.column_names()
        for row in table.scan_rows():
            yield dict(zip(names, row))

    def reset_counters(self) -> None:
        self.counters.reset()

    def __repr__(self) -> str:
        return f"Database(tables={self.catalog.table_names()})"
