"""The system catalog.

The catalog is the registry of every named object in the database: tables,
indexes, integrity constraints, table statistics, soft constraints, and
summary tables (ASTs).  It also implements the *dependency / invalidation*
protocol the paper needs for absolute soft constraints (Section 4.1): cached
query plans register the soft constraints they relied on, and when an ASC is
overturned the catalog invalidates every dependent plan.

Statistics and soft-constraint objects are stored by reference; their
classes live in :mod:`repro.stats` and :mod:`repro.softcon` (above this
layer), so the catalog treats them as opaque values keyed by name.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.engine.constraints import Constraint, ForeignKeyConstraint
from repro.engine.index import BTreeIndex
from repro.engine.table import HeapTable
from repro.errors import DuplicateObjectError, UnknownObjectError


class Catalog:
    """Registry of tables, indexes, constraints, statistics and SCs."""

    def __init__(self) -> None:
        self.tables: Dict[str, HeapTable] = {}
        self.indexes: Dict[str, BTreeIndex] = {}
        self._indexes_by_table: Dict[str, List[str]] = {}
        self._constraints: Dict[str, Dict[str, Constraint]] = {}
        self._statistics: Dict[str, Any] = {}
        self._summary_tables: Dict[str, Any] = {}
        # Plan invalidation: dependency name -> callbacks to run when the
        # dependency is dropped/overturned.
        self._invalidation_hooks: Dict[str, List[Callable[[str], None]]] = {}

    # ------------------------------------------------------------------ tables

    def add_table(self, table: HeapTable) -> None:
        name = table.schema.name
        if name in self.tables:
            raise DuplicateObjectError(f"table {name!r} already exists")
        self.tables[name] = table
        self._indexes_by_table[name] = []
        self._constraints[name] = {}

    def table(self, name: str) -> HeapTable:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise UnknownObjectError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self.tables:
            raise UnknownObjectError(f"unknown table {name!r}")
        for index_name in list(self._indexes_by_table.get(key, [])):
            self.drop_index(index_name)
        del self.tables[key]
        self._indexes_by_table.pop(key, None)
        self._constraints.pop(key, None)
        self._statistics.pop(key, None)
        self.fire_invalidation(f"table:{key}")

    def table_names(self) -> List[str]:
        return sorted(self.tables)

    # ------------------------------------------------------------------ indexes

    def add_index(self, index: BTreeIndex) -> None:
        if index.name in self.indexes:
            raise DuplicateObjectError(f"index {index.name!r} already exists")
        if index.table_name not in self.tables:
            raise UnknownObjectError(
                f"index {index.name!r} references unknown table "
                f"{index.table_name!r}"
            )
        self.indexes[index.name] = index
        self._indexes_by_table[index.table_name].append(index.name)

    def index(self, name: str) -> BTreeIndex:
        try:
            return self.indexes[name.lower()]
        except KeyError:
            raise UnknownObjectError(f"unknown index {name!r}") from None

    def drop_index(self, name: str) -> None:
        key = name.lower()
        index = self.indexes.pop(key, None)
        if index is None:
            raise UnknownObjectError(f"unknown index {name!r}")
        self._indexes_by_table[index.table_name].remove(key)

    def indexes_on(self, table_name: str) -> List[BTreeIndex]:
        """All indexes over a table, in creation order."""
        return [
            self.indexes[index_name]
            for index_name in self._indexes_by_table.get(table_name.lower(), [])
        ]

    def find_index(
        self, table_name: str, column_names: Iterable[str], prefix_ok: bool = True
    ) -> Optional[BTreeIndex]:
        """Find an index whose key starts with exactly ``column_names``.

        With ``prefix_ok`` the requested columns may be a prefix of the
        index key (usable for probes); otherwise the key must match
        exactly.
        """
        wanted = [c.lower() for c in column_names]
        for index in self.indexes_on(table_name):
            key = index.column_names
            if key[: len(wanted)] == wanted and (prefix_ok or len(key) == len(wanted)):
                return index
        return None

    # -------------------------------------------------------------- constraints

    def add_constraint(self, constraint: Constraint) -> None:
        table_constraints = self._constraints.get(constraint.table_name)
        if table_constraints is None:
            raise UnknownObjectError(
                f"constraint {constraint.name!r} references unknown table "
                f"{constraint.table_name!r}"
            )
        if constraint.name in table_constraints:
            raise DuplicateObjectError(
                f"constraint {constraint.name!r} already exists on "
                f"{constraint.table_name!r}"
            )
        table_constraints[constraint.name] = constraint

    def drop_constraint(self, table_name: str, constraint_name: str) -> None:
        table_constraints = self._constraints.get(table_name.lower(), {})
        if constraint_name.lower() not in table_constraints:
            raise UnknownObjectError(
                f"unknown constraint {constraint_name!r} on {table_name!r}"
            )
        del table_constraints[constraint_name.lower()]
        self.fire_invalidation(f"constraint:{constraint_name.lower()}")

    def constraints_on(self, table_name: str) -> List[Constraint]:
        """All constraints attached to a table (child side for FKs)."""
        return list(self._constraints.get(table_name.lower(), {}).values())

    def constraint(self, table_name: str, constraint_name: str) -> Constraint:
        try:
            return self._constraints[table_name.lower()][constraint_name.lower()]
        except KeyError:
            raise UnknownObjectError(
                f"unknown constraint {constraint_name!r} on {table_name!r}"
            ) from None

    def foreign_keys_referencing(self, parent_table: str) -> List[ForeignKeyConstraint]:
        """FK constraints whose *parent* is the given table."""
        parent = parent_table.lower()
        result: List[ForeignKeyConstraint] = []
        for table_constraints in self._constraints.values():
            for constraint in table_constraints.values():
                if (
                    isinstance(constraint, ForeignKeyConstraint)
                    and constraint.parent_table == parent
                ):
                    result.append(constraint)
        return result

    def all_constraints(self) -> List[Constraint]:
        result: List[Constraint] = []
        for table_constraints in self._constraints.values():
            result.extend(table_constraints.values())
        return result

    # -------------------------------------------------------------- statistics

    def set_statistics(self, table_name: str, statistics: Any) -> None:
        """Attach runstats to a table (opaque to the catalog)."""
        if table_name.lower() not in self.tables:
            raise UnknownObjectError(f"unknown table {table_name!r}")
        self._statistics[table_name.lower()] = statistics

    def statistics(self, table_name: str) -> Optional[Any]:
        return self._statistics.get(table_name.lower())

    # ---------------------------------------------------------- summary tables

    def add_summary_table(self, name: str, definition: Any) -> None:
        """Register an AST / materialized view definition."""
        key = name.lower()
        if key in self._summary_tables:
            raise DuplicateObjectError(f"summary table {name!r} already exists")
        # NOTE: a summary table's materialization is itself a base table
        # registered under the same name, so no collision check against
        # ``self.tables`` here.
        self._summary_tables[key] = definition

    def summary_table(self, name: str) -> Any:
        try:
            return self._summary_tables[name.lower()]
        except KeyError:
            raise UnknownObjectError(f"unknown summary table {name!r}") from None

    def summary_tables(self) -> Dict[str, Any]:
        return dict(self._summary_tables)

    def drop_summary_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._summary_tables:
            raise UnknownObjectError(f"unknown summary table {name!r}")
        del self._summary_tables[key]
        self.fire_invalidation(f"ast:{key}")

    # ------------------------------------------------------- plan invalidation

    def on_invalidate(self, dependency: str, callback: Callable[[str], None]) -> None:
        """Register a callback fired when ``dependency`` is overturned.

        Dependencies are namespaced strings: ``"constraint:<name>"``,
        ``"softconstraint:<name>"``, ``"table:<name>"``, ``"ast:<name>"``.
        The plan cache uses this to drop plans that relied on an ASC when
        the ASC is violated (paper Section 4.1).
        """
        self._invalidation_hooks.setdefault(dependency, []).append(callback)

    def fire_invalidation(self, dependency: str) -> int:
        """Run and clear the callbacks for a dependency; returns how many."""
        callbacks = self._invalidation_hooks.pop(dependency, [])
        for callback in callbacks:
            callback(dependency)
        return len(callbacks)
