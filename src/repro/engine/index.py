"""B-tree secondary indexes.

The index keeps a sorted array of ``(key, RowId)`` entries (the classic
sorted-run emulation of a B+-tree) and *models* B-tree I/O: a probe charges
the tree height in page reads, and a range scan additionally charges one
read per leaf page crossed.  That keeps the executor's "pages read" numbers
faithful to what a disk-based engine would do, which is what the optimizer's
cost model predicts.

Keys may be composite.  Rows with a NULL in any key column are not indexed
(equality and range predicates never match NULL, so index results are still
exact for the predicates the optimizer routes here).
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.engine.page import IOCounters
from repro.engine.row import RowId
from repro.engine.schema import TableSchema
from repro.errors import IndexCorruptionError, StorageError, TransientIOError

ENTRIES_PER_LEAF = 256
INTERNAL_FANOUT = 256


def _entry_hash(key: Tuple[Any, ...], row_id: RowId) -> int:
    return hash((key, row_id))


class _KeyWrap:
    """Total-order wrapper so heterogeneous key columns compare safely.

    Within one index all keys in a given column position share a type, so
    plain tuple comparison would suffice; the wrapper exists to give
    deterministic behaviour for boolean/int mixes produced by SQL coercion.
    """

    __slots__ = ("key",)

    def __init__(self, key: Tuple[Any, ...]) -> None:
        self.key = key

    def __lt__(self, other: "_KeyWrap") -> bool:
        return self.key < other.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _KeyWrap) and self.key == other.key


class BTreeIndex:
    """A secondary index over one or more columns of a heap table.

    Parameters
    ----------
    name:
        Index name (unique within the catalog).
    table_schema:
        Schema of the indexed table.
    column_names:
        The key columns, in significance order.
    unique:
        When True, inserting a duplicate full key raises
        :class:`~repro.errors.StorageError` (used to back PK / UNIQUE
        constraints).
    counters:
        Shared I/O counters; probes and scans are charged here.
    """

    def __init__(
        self,
        name: str,
        table_schema: TableSchema,
        column_names: Sequence[str],
        unique: bool = False,
        counters: Optional[IOCounters] = None,
    ) -> None:
        self.name = name.lower()
        self.table_name = table_schema.name
        self.column_names = [c.lower() for c in column_names]
        self.key_positions = [table_schema.position(c) for c in self.column_names]
        self.unique = unique
        self.counters = counters if counters is not None else IOCounters()
        # Parallel arrays: sorted keys and their RowIds.  Duplicate keys are
        # adjacent; uniqueness (when requested) is enforced on insert.
        self._keys: List[Tuple[Any, ...]] = []
        self._rids: List[RowId] = []
        self._cluster_ratio_cache: Optional[float] = None
        # Incremental XOR checksum over (key, rid) entries; maintained O(1)
        # per mutation, recomputed for verification only under fault
        # injection.  A verify failure quarantines the index until a
        # rebuild from the heap (Database.rebuild_index).
        self.checksum = 0
        self.quarantined = False
        self.fault_injector = None

    # -- geometry ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def leaf_pages(self) -> int:
        """Number of simulated leaf pages."""
        return max(1, math.ceil(len(self._keys) / ENTRIES_PER_LEAF))

    def cluster_ratio(self) -> float:
        """Fraction of adjacent entries whose rows share a heap page.

        1.0 means the heap is stored in index order (a clustered index):
        a range scan's row fetches hit each data page once.  0.0 means
        every fetch lands on a different page.  The optimizer's cost model
        uses this to price index-scan data fetches; the value is cached
        and recomputed after maintenance.
        """
        if self._cluster_ratio_cache is None:
            if len(self._rids) < 2:
                self._cluster_ratio_cache = 1.0
            else:
                same_page = sum(
                    1
                    for previous, current in zip(self._rids, self._rids[1:])
                    if previous.page_id == current.page_id
                )
                self._cluster_ratio_cache = same_page / (len(self._rids) - 1)
        return self._cluster_ratio_cache

    @property
    def height(self) -> int:
        """Simulated tree height (levels above the leaves, plus the leaf)."""
        leaves = self.leaf_pages
        if leaves <= 1:
            return 1
        return 1 + max(1, math.ceil(math.log(leaves, INTERNAL_FANOUT)))

    # -- key extraction ------------------------------------------------------

    def key_of(self, row: Sequence[Any]) -> Optional[Tuple[Any, ...]]:
        """Extract the index key from a full row; None if any part is NULL."""
        key = tuple(row[position] for position in self.key_positions)
        if any(part is None for part in key):
            return None
        return key

    # -- maintenance -----------------------------------------------------------

    def insert(self, row: Sequence[Any], row_id: RowId) -> None:
        """Index one row.  Rows with NULL key parts are skipped."""
        key = self.key_of(row)
        if key is None:
            return
        at = bisect.bisect_left(self._keys, key)
        if self.unique and at < len(self._keys) and self._keys[at] == key:
            raise StorageError(
                f"duplicate key {key!r} in unique index {self.name!r}"
            )
        self._keys.insert(at, key)
        self._rids.insert(at, row_id)
        self.checksum ^= _entry_hash(key, row_id)
        self._cluster_ratio_cache = None
        self.counters.page_writes += 1

    def delete(self, row: Sequence[Any], row_id: RowId) -> None:
        """Remove one row's entry (no-op for NULL-keyed rows)."""
        key = self.key_of(row)
        if key is None:
            return
        at = bisect.bisect_left(self._keys, key)
        while at < len(self._keys) and self._keys[at] == key:
            if self._rids[at] == row_id:
                del self._keys[at]
                del self._rids[at]
                self.checksum ^= _entry_hash(key, row_id)
                self._cluster_ratio_cache = None
                self.counters.page_writes += 1
                return
            at += 1
        raise StorageError(
            f"index {self.name!r} has no entry for key={key!r} rid={row_id}"
        )

    def update(
        self,
        old_row: Sequence[Any],
        old_id: RowId,
        new_row: Sequence[Any],
        new_id: RowId,
    ) -> None:
        """Maintain the index across an UPDATE (delete old, insert new)."""
        old_key = self.key_of(old_row)
        new_key = self.key_of(new_row)
        if old_key == new_key and old_id == new_id:
            return
        if old_key is not None:
            self.delete(old_row, old_id)
        if new_key is not None:
            self.insert(new_row, new_id)

    # -- integrity ----------------------------------------------------------

    def compute_checksum(self) -> int:
        """Recompute the entry checksum from scratch."""
        checksum = 0
        for key, row_id in zip(self._keys, self._rids):
            checksum ^= _entry_hash(key, row_id)
        return checksum

    def verify(self) -> None:
        """Raise :class:`~repro.errors.IndexCorruptionError` on mismatch."""
        if self.compute_checksum() != self.checksum:
            raise IndexCorruptionError(
                f"checksum mismatch in index {self.name!r}",
                index_name=self.name,
            )

    def _pre_probe(self) -> None:
        """Gate every descent: quarantine check plus fault injection.

        Transient faults are retried with backoff (each retry charges a
        fresh descent).  Detected corruption is *persistent* for an index
        — the structure is quarantined and every later probe raises until
        :meth:`repro.engine.database.Database.rebuild_index` runs.
        """
        if self.quarantined:
            raise IndexCorruptionError(
                f"index {self.name!r} is quarantined pending rebuild",
                index_name=self.name,
            )
        injector = self.fault_injector
        if injector is None:
            return
        last_error: Optional[Exception] = None
        for attempt in range(injector.retry.max_attempts):
            if attempt:
                injector.clock.sleep(injector.retry.delay(attempt - 1))
                self.counters.page_reads += self.height
            kind = injector.decide("index_probe")
            if kind == "transient":
                last_error = TransientIOError(
                    f"transient I/O error probing index {self.name!r} "
                    f"(attempt {attempt + 1})"
                )
                continue
            if kind == "corrupt":
                injector.corrupt_index(self)
            try:
                self.verify()
            except IndexCorruptionError:
                self.quarantined = True
                raise
            return
        assert last_error is not None
        raise last_error

    # -- probes ------------------------------------------------------------------

    def _charge_probe(self) -> None:
        self._pre_probe()
        self.counters.page_reads += self.height

    def _charge_leaves(self, entries: int) -> None:
        if entries > ENTRIES_PER_LEAF:
            extra_leaves = math.ceil(entries / ENTRIES_PER_LEAF) - 1
            self.counters.page_reads += extra_leaves

    def search(self, key: Sequence[Any]) -> List[RowId]:
        """Equality probe on the full key; charges one root-to-leaf descent."""
        probe = tuple(key)
        self._charge_probe()
        lo = bisect.bisect_left(self._keys, probe)
        hi = bisect.bisect_right(self._keys, probe)
        self._charge_leaves(hi - lo)
        return self._rids[lo:hi]

    def range_scan(
        self,
        low: Optional[Sequence[Any]] = None,
        high: Optional[Sequence[Any]] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Tuple[Tuple[Any, ...], RowId]]:
        """Scan keys in ``[low, high]`` (bounds optional / exclusive-able).

        Bounds may be prefixes of a composite key; a prefix bound behaves
        like the usual B-tree prefix semantics (all extensions of the
        prefix fall inside the bound when inclusive).
        """
        self._charge_probe()
        if low is None:
            lo = 0
        else:
            probe = tuple(low)
            if low_inclusive:
                lo = bisect.bisect_left(self._keys, probe)
            else:
                # For a prefix bound, "strictly greater" must skip every key
                # extending the prefix, so pad conceptually with +infinity:
                # bisect_right on the prefix achieves exactly that for full
                # keys, and for prefixes we advance past all extensions.
                lo = self._bisect_after_prefix(probe)
        if high is None:
            hi = len(self._keys)
        else:
            probe = tuple(high)
            if high_inclusive:
                hi = self._bisect_after_prefix(probe)
            else:
                hi = bisect.bisect_left(self._keys, probe)
        self._charge_leaves(max(0, hi - lo))
        for at in range(lo, hi):
            yield self._keys[at], self._rids[at]

    def _bisect_after_prefix(self, prefix: Tuple[Any, ...]) -> int:
        """Index just past every key whose head equals ``prefix``."""
        if len(prefix) >= len(self.key_positions):
            return bisect.bisect_right(self._keys, prefix)
        lo = bisect.bisect_left(self._keys, prefix)
        at = lo
        while at < len(self._keys) and self._keys[at][: len(prefix)] == prefix:
            at += 1
        return at

    def min_key(self) -> Optional[Tuple[Any, ...]]:
        """Smallest key, or None when the index is empty (one probe)."""
        if not self._keys:
            return None
        self._charge_probe()
        return self._keys[0]

    def max_key(self) -> Optional[Tuple[Any, ...]]:
        """Largest key, or None when the index is empty (one probe)."""
        if not self._keys:
            return None
        self._charge_probe()
        return self._keys[-1]

    def rebuild(self, entries: Sequence[Tuple[Tuple[Any, ...], RowId]]) -> None:
        """Bulk-load the index from (key, RowId) pairs (e.g. CREATE INDEX)."""
        ordered = sorted(entries, key=lambda entry: entry[0])
        if self.unique:
            for previous, current in zip(ordered, ordered[1:]):
                if previous[0] == current[0]:
                    raise StorageError(
                        f"duplicate key {current[0]!r} while building "
                        f"unique index {self.name!r}"
                    )
        self._keys = [key for key, _ in ordered]
        self._rids = [rid for _, rid in ordered]
        self.checksum = self.compute_checksum()
        self.quarantined = False
        self._cluster_ratio_cache = None
        self.counters.page_writes += self.leaf_pages

    def load_entries(
        self,
        keys: Sequence[Tuple[Any, ...]],
        rids: Sequence[RowId],
        quarantined: bool = False,
    ) -> None:
        """Install already-sorted entries from a checkpoint image.

        Unlike :meth:`rebuild` this is a verbatim restore — order,
        uniqueness, and the quarantine flag are taken as recorded (the
        recovery path cross-checks against the heap afterwards and falls
        back to a rebuild on mismatch).  The in-memory checksum is
        recomputed because it is process-local.
        """
        if len(keys) != len(rids):
            raise StorageError(
                f"index image for {self.name!r} has {len(keys)} keys but "
                f"{len(rids)} row ids"
            )
        self._keys = [tuple(key) for key in keys]
        self._rids = list(rids)
        self.checksum = self.compute_checksum()
        self.quarantined = quarantined
        self._cluster_ratio_cache = None

    def __repr__(self) -> str:
        uniq = "unique " if self.unique else ""
        return (
            f"BTreeIndex({self.name}: {uniq}{self.table_name}"
            f"({', '.join(self.column_names)}), entries={len(self)})"
        )
