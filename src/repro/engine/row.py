"""Row identifiers and row utilities.

Rows themselves are plain tuples (positional, matching the table schema);
a :class:`RowId` names a row's physical location (page, slot) exactly as a
RID does in a disk-based engine, and is what secondary indexes point at.
"""

from __future__ import annotations

from typing import Any, Dict, NamedTuple, Sequence, Tuple

from repro.engine.schema import TableSchema


class RowId(NamedTuple):
    """Physical address of a row: (page number, slot number)."""

    page_id: int
    slot_no: int

    def __repr__(self) -> str:
        return f"RowId({self.page_id}:{self.slot_no})"


def row_as_dict(schema: TableSchema, row: Sequence[Any]) -> Dict[str, Any]:
    """Render a positional row as a ``{column: value}`` mapping."""
    return dict(zip(schema.column_names(), row))


def project_row(
    row: Sequence[Any], positions: Sequence[int]
) -> Tuple[Any, ...]:
    """Extract the values at ``positions`` as a new tuple."""
    return tuple(row[position] for position in positions)
