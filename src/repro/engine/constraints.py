"""Integrity constraints and their enforcement modes.

Every constraint carries a :class:`ConstraintMode`:

``ENFORCED``
    A classic *hard* integrity constraint — checked on every DML statement;
    violating statements are rejected.

``INFORMATIONAL``
    The paper's *informational constraint* (Section 1): an external promise
    has been made that the constraint holds, so the system never checks it,
    but the optimizer may use it exactly like an enforced constraint.

Soft constraints (ASCs / SSCs) are *not* integrity constraints and live in
:mod:`repro.softcon`; however, an ASC of a constraint-expressible class
wraps one of these constraint objects, reusing its checking logic.

CHECK constraints hold an opaque ``expression`` (the parsed SQL AST, used by
the optimizer for rewrites) plus a compiled ``predicate`` callable mapping a
``{column: value}`` dict to ``True`` / ``False`` / ``None`` (SQL three-valued
logic: a CHECK is satisfied unless the predicate is *False*).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import ConstraintViolation, SchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.engine.database import Database

RowDict = Dict[str, Any]
RowPredicate = Callable[[RowDict], Optional[bool]]


class ConstraintMode(enum.Enum):
    """Whether the system checks the constraint or merely trusts it."""

    ENFORCED = "enforced"
    INFORMATIONAL = "informational"


class Constraint:
    """Base class for all integrity constraints.

    Parameters
    ----------
    name:
        Constraint name, unique per table.
    table_name:
        The constrained table.
    mode:
        ENFORCED (checked) or INFORMATIONAL (trusted, never checked).
    """

    kind = "constraint"

    def __init__(
        self,
        name: str,
        table_name: str,
        mode: ConstraintMode = ConstraintMode.ENFORCED,
    ) -> None:
        if not name:
            raise SchemaError("constraint name must be non-empty")
        self.name = name.lower()
        self.table_name = table_name.lower()
        self.mode = mode

    @property
    def is_informational(self) -> bool:
        return self.mode is ConstraintMode.INFORMATIONAL

    # -- checking hooks (ENFORCED mode only; callers skip informational) ----

    def check_insert(self, database: "Database", row: Tuple[Any, ...]) -> None:
        """Raise :class:`ConstraintViolation` if inserting ``row`` violates."""

    def check_update(
        self,
        database: "Database",
        old_row: Tuple[Any, ...],
        new_row: Tuple[Any, ...],
    ) -> None:
        """Raise if replacing ``old_row`` with ``new_row`` violates."""
        self.check_insert(database, new_row)

    def check_delete(self, database: "Database", row: Tuple[Any, ...]) -> None:
        """Raise if deleting ``row`` violates (referential restrict)."""

    def verify_table(self, database: "Database") -> List[Tuple[Any, ...]]:
        """Return every current row violating the constraint.

        Used when promoting a mined statement to an absolute soft
        constraint and when re-validating after bulk loads.  The default
        full-scan implementation re-uses :meth:`row_violates`.
        """
        table = database.table(self.table_name)
        violations = []
        for row in table.scan_rows():
            if self.row_violates(database, row):
                violations.append(row)
        return violations

    def row_violates(self, database: "Database", row: Tuple[Any, ...]) -> bool:
        """Whether a single existing row violates the constraint."""
        try:
            self.check_insert(database, row)
        except ConstraintViolation:
            return True
        return False

    def describe(self) -> str:
        """Human-readable one-liner for EXPLAIN / catalog listings."""
        return f"{self.kind} {self.name} on {self.table_name}"

    def __repr__(self) -> str:
        flag = " (informational)" if self.is_informational else ""
        return f"<{type(self).__name__} {self.name}{flag}>"


class NotNullConstraint(Constraint):
    """``column IS NOT NULL`` for one column."""

    kind = "not_null"

    def __init__(
        self,
        name: str,
        table_name: str,
        column_name: str,
        mode: ConstraintMode = ConstraintMode.ENFORCED,
    ) -> None:
        super().__init__(name, table_name, mode)
        self.column_name = column_name.lower()

    def check_insert(self, database: "Database", row: Tuple[Any, ...]) -> None:
        schema = database.table(self.table_name).schema
        if row[schema.position(self.column_name)] is None:
            raise ConstraintViolation(
                f"{self.table_name}.{self.column_name} must not be NULL",
                constraint_name=self.name,
            )

    def describe(self) -> str:
        return f"NOT NULL {self.table_name}.{self.column_name}"


class UniqueConstraint(Constraint):
    """Uniqueness over a column list (backed by a unique index).

    The owning :class:`~repro.engine.database.Database` creates a unique
    B-tree index for each enforced UNIQUE/PK constraint; this class probes
    it.  Rows containing NULL key parts are exempt, per SQL semantics.
    """

    kind = "unique"

    def __init__(
        self,
        name: str,
        table_name: str,
        column_names: Sequence[str],
        mode: ConstraintMode = ConstraintMode.ENFORCED,
    ) -> None:
        super().__init__(name, table_name, mode)
        if not column_names:
            raise SchemaError(f"UNIQUE constraint {name!r} needs columns")
        self.column_names = [c.lower() for c in column_names]
        self.backing_index_name: Optional[str] = None

    def _key_of(self, database: "Database", row: Tuple[Any, ...]) -> Optional[Tuple[Any, ...]]:
        schema = database.table(self.table_name).schema
        key = tuple(row[schema.position(c)] for c in self.column_names)
        if any(part is None for part in key):
            return None
        return key

    def check_insert(self, database: "Database", row: Tuple[Any, ...]) -> None:
        key = self._key_of(database, row)
        if key is None:
            return
        matches = database.lookup_key(self.table_name, self.column_names, key)
        if matches:
            raise ConstraintViolation(
                f"duplicate key {key!r} for {self.kind.upper()} constraint "
                f"{self.name!r} on {self.table_name}",
                constraint_name=self.name,
            )

    def check_update(
        self,
        database: "Database",
        old_row: Tuple[Any, ...],
        new_row: Tuple[Any, ...],
    ) -> None:
        old_key = self._key_of(database, old_row)
        new_key = self._key_of(database, new_row)
        if new_key is None or new_key == old_key:
            return
        self.check_insert(database, new_row)

    def verify_table(self, database: "Database") -> List[Tuple[Any, ...]]:
        table = database.table(self.table_name)
        seen: Dict[Tuple[Any, ...], Tuple[Any, ...]] = {}
        violations: List[Tuple[Any, ...]] = []
        for row in table.scan_rows():
            key = self._key_of(database, row)
            if key is None:
                continue
            if key in seen:
                violations.append(row)
            else:
                seen[key] = row
        return violations

    def describe(self) -> str:
        cols = ", ".join(self.column_names)
        return f"UNIQUE {self.table_name}({cols})"


class PrimaryKeyConstraint(UniqueConstraint):
    """PRIMARY KEY: unique + all key columns NOT NULL."""

    kind = "primary_key"

    def check_insert(self, database: "Database", row: Tuple[Any, ...]) -> None:
        schema = database.table(self.table_name).schema
        for column_name in self.column_names:
            if row[schema.position(column_name)] is None:
                raise ConstraintViolation(
                    f"PRIMARY KEY column {self.table_name}.{column_name} "
                    f"must not be NULL",
                    constraint_name=self.name,
                )
        super().check_insert(database, row)

    def describe(self) -> str:
        cols = ", ".join(self.column_names)
        return f"PRIMARY KEY {self.table_name}({cols})"


class ForeignKeyConstraint(Constraint):
    """Referential integrity: child columns reference parent columns.

    Enforced as RESTRICT on both sides: a child insert/update must find a
    matching parent row, and a parent delete/update must not strand
    children.  The constraint is attached to the *child* table; the
    database additionally routes parent-side DML through
    :meth:`check_parent_delete`.
    """

    kind = "foreign_key"

    def __init__(
        self,
        name: str,
        table_name: str,
        column_names: Sequence[str],
        parent_table: str,
        parent_columns: Sequence[str],
        mode: ConstraintMode = ConstraintMode.ENFORCED,
    ) -> None:
        super().__init__(name, table_name, mode)
        if len(column_names) != len(parent_columns) or not column_names:
            raise SchemaError(
                f"FOREIGN KEY {name!r}: child and parent column lists must "
                f"be non-empty and the same length"
            )
        self.column_names = [c.lower() for c in column_names]
        self.parent_table = parent_table.lower()
        self.parent_columns = [c.lower() for c in parent_columns]

    def _child_key(
        self, database: "Database", row: Tuple[Any, ...]
    ) -> Optional[Tuple[Any, ...]]:
        schema = database.table(self.table_name).schema
        key = tuple(row[schema.position(c)] for c in self.column_names)
        if any(part is None for part in key):
            return None
        return key

    def check_insert(self, database: "Database", row: Tuple[Any, ...]) -> None:
        key = self._child_key(database, row)
        if key is None:
            return  # SQL: NULL FK parts satisfy the constraint
        matches = database.lookup_key(self.parent_table, self.parent_columns, key)
        if not matches:
            raise ConstraintViolation(
                f"FOREIGN KEY {self.name!r}: no parent row in "
                f"{self.parent_table} for key {key!r}",
                constraint_name=self.name,
            )

    def check_parent_delete(
        self, database: "Database", parent_row: Tuple[Any, ...]
    ) -> None:
        """RESTRICT: reject deleting a parent row that has children."""
        parent_schema = database.table(self.parent_table).schema
        key = tuple(
            parent_row[parent_schema.position(c)] for c in self.parent_columns
        )
        if any(part is None for part in key):
            return
        children = database.lookup_key(self.table_name, self.column_names, key)
        if children:
            raise ConstraintViolation(
                f"FOREIGN KEY {self.name!r}: parent row {key!r} in "
                f"{self.parent_table} still referenced by {self.table_name}",
                constraint_name=self.name,
            )

    def describe(self) -> str:
        child = ", ".join(self.column_names)
        parent = ", ".join(self.parent_columns)
        return (
            f"FOREIGN KEY {self.table_name}({child}) REFERENCES "
            f"{self.parent_table}({parent})"
        )


class CheckConstraint(Constraint):
    """A row-level CHECK constraint.

    Parameters
    ----------
    predicate:
        Compiled predicate over a ``{column: value}`` dict returning SQL
        three-valued logic (``None`` = UNKNOWN, which *satisfies* a CHECK).
    expression:
        The parsed SQL expression (opaque here; the rewrite engine pattern
        matches on it).
    sql_text:
        The original condition text, for display and round-tripping.
    """

    kind = "check"

    def __init__(
        self,
        name: str,
        table_name: str,
        predicate: RowPredicate,
        expression: Any = None,
        sql_text: str = "",
        mode: ConstraintMode = ConstraintMode.ENFORCED,
    ) -> None:
        super().__init__(name, table_name, mode)
        self.predicate = predicate
        self.expression = expression
        self.sql_text = sql_text

    def check_insert(self, database: "Database", row: Tuple[Any, ...]) -> None:
        schema = database.table(self.table_name).schema
        row_dict = dict(zip(schema.column_names(), row))
        verdict = self.predicate(row_dict)
        if verdict is False:
            raise ConstraintViolation(
                f"CHECK constraint {self.name!r} violated: {self.sql_text}",
                constraint_name=self.name,
            )

    def describe(self) -> str:
        return f"CHECK ({self.sql_text}) on {self.table_name}"
