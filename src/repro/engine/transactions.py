"""Minimal transactions: statement grouping with rollback via an undo log.

The paper's concurrency discussion (Section 4.1) concerns what happens when
one transaction *overturns* an ASC that another transaction's plan relied
on.  To reproduce that story we need transactions only as units of change
with abort/commit — not full ARIES.  A :class:`Transaction` wraps a
:class:`~repro.engine.database.Database`, records undo entries for every
change made through it, and replays them in reverse on rollback.

Change events are published immediately (the soft-constraint manager is
told about violations when they happen, matching the paper's synchronous
maintenance); a rolled-back transaction publishes compensating events so
observers stay consistent.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.database import Database
from repro.engine.row import RowId
from repro.errors import RollbackError, TransactionError


class _UndoEntry:
    __slots__ = ("kind", "table_name", "row_id", "old_row", "pre_rid")

    def __init__(
        self,
        kind: str,
        table_name: str,
        row_id: RowId,
        old_row: Optional[Tuple[Any, ...]],
        pre_rid: Optional[RowId] = None,
    ) -> None:
        self.kind = kind
        self.table_name = table_name
        # Where the compensating operation must be applied: the rid the
        # row occupied *after* this change (for updates, the post-image
        # rid — an update that did not fit in place forwarded the row).
        self.row_id = row_id
        self.old_row = old_row
        # Where older undo entries know the row: the rid it occupied
        # *before* this change.  Rollback records a remap from it when
        # the compensation itself lands the row somewhere new.
        self.pre_rid = pre_rid


class Transaction:
    """A unit of work over one database.

    Usage::

        with Transaction(db) as txn:
            txn.insert("t", [1, "x"])
            txn.delete("t", some_row_id)
        # commits on clean exit, rolls back on exception
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        self._undo: List[_UndoEntry] = []
        self._state = "active"
        # Durable transaction id: WAL records written while this
        # transaction is open are tagged with it, and recovery replays
        # them only if the matching commit record made it to disk.
        self._txn_id: Optional[int] = None
        if database.durability is not None:
            self._txn_id = database.durability.txn_begin()

    # -- lifecycle ----------------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self._state == "active"

    def _require_active(self) -> None:
        if self._state != "active":
            raise TransactionError(f"transaction is {self._state}")

    def commit(self) -> None:
        self._require_active()
        self._undo.clear()
        self._state = "committed"
        if self._txn_id is not None:
            self.database.durability.txn_commit(self._txn_id)

    def rollback(self) -> None:
        """Undo every change made through this transaction, newest first.

        Exception-safe: a failing undo entry (e.g. a storage fault mid
        recovery) does not abandon the rest of the log.  Every remaining
        entry is still applied, the transaction always deactivates, and
        the failures are re-raised aggregated in a single
        :class:`~repro.errors.RollbackError`.

        Compensations replay in strict reverse order, and each
        compensating event is published through the normal DML paths.  A
        compensation can *move* the row: undoing a delete re-inserts at
        a fresh rid, and undoing a forwarded update may restore the row
        to yet another slot.  Older undo entries still reference the rid
        the row had in their day, so rollback maintains a remap from
        historical rids to the row's current location — without it, an
        interleaved insert/update chain on one row rolls back against
        stale rids and both leaks the row and drops its compensating
        events.
        """
        self._require_active()
        failures: List[Exception] = []
        remap: Dict[RowId, RowId] = {}
        try:
            for entry in reversed(self._undo):
                try:
                    at = remap.get(entry.row_id, entry.row_id)
                    if entry.kind == "insert":
                        self.database.delete_row(entry.table_name, at)
                    elif entry.kind == "delete":
                        assert entry.old_row is not None
                        restored = self.database.insert(
                            entry.table_name, entry.old_row
                        )
                        # Unconditional (identity mappings included): a
                        # later-undone entry may have left a stale remap
                        # under this key, and this entry's placement is
                        # now the authoritative one.
                        remap[entry.row_id] = restored
                    else:  # update
                        assert entry.old_row is not None
                        assert entry.pre_rid is not None
                        restored = self.database.update_row(
                            entry.table_name, at, entry.old_row
                        )
                        remap[entry.pre_rid] = restored
                except Exception as error:  # noqa: BLE001 - aggregated below
                    failures.append(error)
        finally:
            self._undo.clear()
            self._state = "rolled_back"
            if self._txn_id is not None:
                # Compensations were logged under the same txn id, so
                # the abort hides them *and* the original changes from
                # recovery in one stroke.
                self.database.durability.txn_abort(self._txn_id)
        if failures:
            raise RollbackError(
                f"{len(failures)} undo entr"
                f"{'y' if len(failures) == 1 else 'ies'} failed during "
                f"rollback: {failures[0]}",
                failures=failures,
            )

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type: Any, exc: Any, traceback: Any) -> None:
        if not self.is_active:
            return
        if exc_type is None:
            self.commit()
        else:
            self.rollback()

    # -- DML ------------------------------------------------------------------

    def insert(self, table_name: str, values: Sequence[Any]) -> RowId:
        self._require_active()
        row_id = self.database.insert(table_name, values)
        self._undo.append(_UndoEntry("insert", table_name.lower(), row_id, None))
        return row_id

    def insert_mapping(self, table_name: str, mapping: Dict[str, Any]) -> RowId:
        self._require_active()
        table = self.database.table(table_name)
        return self.insert(table_name, table.schema.row_from_mapping(mapping))

    def delete(self, table_name: str, row_id: RowId) -> Tuple[Any, ...]:
        self._require_active()
        old_row = self.database.delete_row(table_name, row_id)
        self._undo.append(_UndoEntry("delete", table_name.lower(), row_id, old_row))
        return old_row

    def update(
        self, table_name: str, row_id: RowId, values: Sequence[Any]
    ) -> RowId:
        self._require_active()
        table = self.database.table(table_name)
        old_row = table.fetch(row_id)
        new_id = self.database.update_row(table_name, row_id, values)
        self._undo.append(
            _UndoEntry(
                "update", table_name.lower(), new_id, old_row, pre_rid=row_id
            )
        )
        return new_id
