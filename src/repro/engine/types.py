"""SQL data types and value handling.

The engine supports a small but complete set of scalar types: ``INTEGER``,
``DOUBLE``, ``VARCHAR(n)``, ``BOOLEAN``, and ``DATE``.  SQL ``NULL`` is
represented by Python ``None`` throughout the system.

Dates are stored internally as *days since 1970-01-01* (plain ``int``), which
makes date arithmetic, histogram bucketing, and linear-correlation mining on
date columns uniform with numeric columns.  :func:`date_to_days` and
:func:`days_to_date` convert to and from :class:`datetime.date`.
"""

from __future__ import annotations

import datetime
from typing import Any, Optional

from repro.errors import SchemaError, TypeMismatchError

_EPOCH = datetime.date(1970, 1, 1)


def date_to_days(value: datetime.date) -> int:
    """Convert a :class:`datetime.date` to days since 1970-01-01."""
    return (value - _EPOCH).days


def days_to_date(days: int) -> datetime.date:
    """Convert days since 1970-01-01 back to a :class:`datetime.date`."""
    return _EPOCH + datetime.timedelta(days=days)


def parse_date_literal(text: str) -> int:
    """Parse a ``'YYYY-MM-DD'`` literal into internal day-number form."""
    try:
        parsed = datetime.date.fromisoformat(text)
    except ValueError as exc:
        raise TypeMismatchError(f"invalid DATE literal {text!r}") from exc
    return date_to_days(parsed)


class SqlType:
    """A SQL scalar type.

    Instances are immutable and compare by ``kind`` (and length, for
    VARCHAR).  Use the module-level singletons ``INTEGER``, ``DOUBLE``,
    ``BOOLEAN``, ``DATE``, and the :func:`VARCHAR` factory.
    """

    __slots__ = ("kind", "length")

    INTEGER_KIND = "INTEGER"
    DOUBLE_KIND = "DOUBLE"
    VARCHAR_KIND = "VARCHAR"
    BOOLEAN_KIND = "BOOLEAN"
    DATE_KIND = "DATE"

    _KINDS = frozenset(
        [INTEGER_KIND, DOUBLE_KIND, VARCHAR_KIND, BOOLEAN_KIND, DATE_KIND]
    )

    def __init__(self, kind: str, length: Optional[int] = None) -> None:
        if kind not in self._KINDS:
            raise SchemaError(f"unknown SQL type kind {kind!r}")
        if kind == self.VARCHAR_KIND:
            if length is None or length <= 0:
                raise SchemaError("VARCHAR requires a positive length")
        elif length is not None:
            raise SchemaError(f"{kind} does not take a length")
        self.kind = kind
        self.length = length

    # -- identity ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SqlType):
            return NotImplemented
        return self.kind == other.kind and self.length == other.length

    def __hash__(self) -> int:
        return hash((self.kind, self.length))

    def __repr__(self) -> str:
        if self.kind == self.VARCHAR_KIND:
            return f"VARCHAR({self.length})"
        return self.kind

    # -- properties --------------------------------------------------------

    @property
    def is_numeric(self) -> bool:
        """True for types that support arithmetic (INTEGER, DOUBLE, DATE).

        DATE counts as numeric because it is stored as a day number and the
        soft-constraint machinery (linear correlations, range statistics)
        treats it as an ordered numeric domain.
        """
        return self.kind in (self.INTEGER_KIND, self.DOUBLE_KIND, self.DATE_KIND)

    @property
    def is_ordered(self) -> bool:
        """True for types with a total order usable in range predicates.

        Every supported type is totally ordered (booleans order as
        ``False < True``), so range predicates and min/max statistics are
        well defined on all columns.
        """
        return True

    # -- value validation and coercion --------------------------------------

    def validate(self, value: Any) -> Any:
        """Validate ``value`` against this type, coercing where SQL would.

        Returns the (possibly coerced) value.  ``None`` always validates:
        nullability is a constraint, not a property of the type.

        Raises
        ------
        TypeMismatchError
            If the value cannot represent this type.
        """
        if value is None:
            return None
        if self.kind == self.INTEGER_KIND:
            if isinstance(value, bool) or not isinstance(value, int):
                if isinstance(value, float) and value.is_integer():
                    return int(value)
                raise TypeMismatchError(
                    f"expected INTEGER, got {value!r} ({type(value).__name__})"
                )
            return value
        if self.kind == self.DOUBLE_KIND:
            if isinstance(value, bool):
                raise TypeMismatchError(f"expected DOUBLE, got {value!r}")
            if isinstance(value, (int, float)):
                return float(value)
            raise TypeMismatchError(
                f"expected DOUBLE, got {value!r} ({type(value).__name__})"
            )
        if self.kind == self.VARCHAR_KIND:
            if not isinstance(value, str):
                raise TypeMismatchError(
                    f"expected VARCHAR, got {value!r} ({type(value).__name__})"
                )
            assert self.length is not None
            if len(value) > self.length:
                raise TypeMismatchError(
                    f"string of length {len(value)} exceeds VARCHAR({self.length})"
                )
            return value
        if self.kind == self.BOOLEAN_KIND:
            if isinstance(value, bool):
                return value
            raise TypeMismatchError(f"expected BOOLEAN, got {value!r}")
        # DATE
        if isinstance(value, bool):
            raise TypeMismatchError(f"expected DATE, got {value!r}")
        if isinstance(value, int):
            return value
        if isinstance(value, datetime.date):
            return date_to_days(value)
        if isinstance(value, str):
            return parse_date_literal(value)
        raise TypeMismatchError(
            f"expected DATE, got {value!r} ({type(value).__name__})"
        )

    def storage_size(self, value: Any) -> int:
        """Bytes this value occupies on a page (simulated layout).

        NULLs cost one byte (the null indicator); fixed-width types cost
        their natural width plus the indicator; VARCHAR costs the string
        length plus a two-byte length prefix plus the indicator.
        """
        if value is None:
            return 1
        if self.kind == self.INTEGER_KIND or self.kind == self.DATE_KIND:
            return 1 + 4
        if self.kind == self.DOUBLE_KIND:
            return 1 + 8
        if self.kind == self.BOOLEAN_KIND:
            return 1 + 1
        return 1 + 2 + len(value)


INTEGER = SqlType(SqlType.INTEGER_KIND)
DOUBLE = SqlType(SqlType.DOUBLE_KIND)
BOOLEAN = SqlType(SqlType.BOOLEAN_KIND)
DATE = SqlType(SqlType.DATE_KIND)


def VARCHAR(length: int) -> SqlType:
    """Create a ``VARCHAR(length)`` type."""
    return SqlType(SqlType.VARCHAR_KIND, length)


def type_from_name(name: str, length: Optional[int] = None) -> SqlType:
    """Resolve a type name as written in SQL DDL to a :class:`SqlType`.

    Accepts common synonyms: INT/INTEGER, FLOAT/DOUBLE/REAL, CHAR/VARCHAR,
    BOOL/BOOLEAN.
    """
    upper = name.upper()
    if upper in ("INT", "INTEGER", "BIGINT", "SMALLINT"):
        return INTEGER
    if upper in ("DOUBLE", "FLOAT", "REAL", "DECIMAL", "NUMERIC"):
        return DOUBLE
    if upper in ("VARCHAR", "CHAR", "TEXT", "STRING"):
        return VARCHAR(length if length is not None else 255)
    if upper in ("BOOL", "BOOLEAN"):
        return BOOLEAN
    if upper == "DATE":
        return DATE
    raise SchemaError(f"unknown SQL type name {name!r}")
