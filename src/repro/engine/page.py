"""Simulated disk pages and page-level I/O accounting.

The engine does not persist bytes; it *models* a paged storage layout so the
optimizer's cost estimates ("pages scanned") can be validated against real
counters.  A :class:`Page` holds row tuples up to a byte budget computed from
the schema's :meth:`~repro.engine.schema.TableSchema.row_size`.  A
:class:`PageManager` tracks every logical read and write so benchmarks can
report deterministic, machine-independent I/O numbers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import PageOverflowError

PAGE_SIZE = 4096
_PAGE_HEADER = 32


class Page:
    """One fixed-size page holding a list of row slots.

    A slot is either a row tuple or ``None`` (a tombstone left by DELETE;
    the slot is reused by a later INSERT when the row fits).
    """

    __slots__ = ("page_id", "slots", "used_bytes", "slot_sizes")

    def __init__(self, page_id: int) -> None:
        self.page_id = page_id
        self.slots: List[Optional[Tuple[Any, ...]]] = []
        self.slot_sizes: List[int] = []
        self.used_bytes = _PAGE_HEADER

    @property
    def free_bytes(self) -> int:
        return PAGE_SIZE - self.used_bytes

    @property
    def live_rows(self) -> int:
        return sum(1 for slot in self.slots if slot is not None)

    def can_fit(self, row_bytes: int) -> bool:
        """Room for a row: fresh free space or a large-enough tombstone."""
        if row_bytes <= self.free_bytes:
            return True
        return any(
            slot is None and size >= row_bytes
            for slot, size in zip(self.slots, self.slot_sizes)
        )

    def insert(self, row: Tuple[Any, ...], row_bytes: int) -> int:
        """Place a row on this page, returning the slot number.

        Reuses a tombstoned slot when one can hold the row; otherwise
        appends a new slot.
        """
        if row_bytes > PAGE_SIZE - _PAGE_HEADER:
            raise PageOverflowError(
                f"row of {row_bytes} bytes exceeds page capacity"
            )
        for slot_no, slot in enumerate(self.slots):
            if slot is None and self.slot_sizes[slot_no] >= row_bytes:
                self.slots[slot_no] = row
                # The slot keeps its original size: the simulated layout
                # does not compact within a page.
                return slot_no
        if not self.can_fit(row_bytes):
            raise PageOverflowError("page full")
        self.slots.append(row)
        self.slot_sizes.append(row_bytes)
        self.used_bytes += row_bytes
        return len(self.slots) - 1

    def delete(self, slot_no: int) -> None:
        """Tombstone a slot.  The space remains allocated until reuse."""
        self.slots[slot_no] = None

    def update(self, slot_no: int, row: Tuple[Any, ...], row_bytes: int) -> bool:
        """Update a slot in place if the new image fits; returns success.

        When the new image is larger than the slot, the caller must delete
        here and re-insert elsewhere (the classic forwarding case, which we
        model simply as delete+insert).
        """
        if row_bytes <= self.slot_sizes[slot_no]:
            self.slots[slot_no] = row
            return True
        spare = self.free_bytes
        growth = row_bytes - self.slot_sizes[slot_no]
        if growth <= spare:
            self.slots[slot_no] = row
            self.slot_sizes[slot_no] = row_bytes
            self.used_bytes += growth
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"Page(id={self.page_id}, rows={self.live_rows}, "
            f"used={self.used_bytes}/{PAGE_SIZE})"
        )


class IOCounters:
    """Mutable counters of logical page I/O, shared via the page manager."""

    __slots__ = ("page_reads", "page_writes", "rows_read", "rows_written")

    def __init__(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.rows_read = 0
        self.rows_written = 0

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.rows_read = 0
        self.rows_written = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "rows_read": self.rows_read,
            "rows_written": self.rows_written,
        }

    def __repr__(self) -> str:
        return (
            f"IOCounters(reads={self.page_reads}, writes={self.page_writes}, "
            f"rows_read={self.rows_read}, rows_written={self.rows_written})"
        )


class PageManager:
    """Owns the pages of one table and counts every logical access.

    The manager is deliberately simple: pages are append-ordered and a
    free-space hint (the id of the last page known to have room) avoids
    quadratic insert behaviour without simulating a full FSM.
    """

    def __init__(self, counters: Optional[IOCounters] = None) -> None:
        self.pages: List[Page] = []
        self.counters = counters if counters is not None else IOCounters()
        self._insert_hint = 0

    @property
    def page_count(self) -> int:
        return len(self.pages)

    def allocate(self) -> Page:
        page = Page(len(self.pages))
        self.pages.append(page)
        return page

    def page_for_insert(self, row_bytes: int) -> Page:
        """Find (or allocate) a page with room for ``row_bytes``."""
        for page_id in range(self._insert_hint, len(self.pages)):
            if self.pages[page_id].can_fit(row_bytes):
                self._insert_hint = page_id
                return self.pages[page_id]
        page = self.allocate()
        self._insert_hint = page.page_id
        return page

    # -- counted access -----------------------------------------------------

    def read_page(self, page_id: int) -> Page:
        """Read a page, counting one logical page read."""
        self.counters.page_reads += 1
        return self.pages[page_id]

    def touch_write(self, count: int = 1) -> None:
        """Record ``count`` logical page writes."""
        self.counters.page_writes += count

    def read_row(self, count: int = 1) -> None:
        self.counters.rows_read += count

    def wrote_row(self, count: int = 1) -> None:
        self.counters.rows_written += count
