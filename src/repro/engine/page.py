"""Simulated disk pages and page-level I/O accounting.

The engine does not persist bytes; it *models* a paged storage layout so the
optimizer's cost estimates ("pages scanned") can be validated against real
counters.  A :class:`Page` holds row tuples up to a byte budget computed from
the schema's :meth:`~repro.engine.schema.TableSchema.row_size`.  A
:class:`PageManager` tracks every logical read and write so benchmarks can
report deterministic, machine-independent I/O numbers.

Resilience: every page maintains an incremental XOR checksum over its
slots (O(1) per mutation).  When a
:class:`~repro.resilience.faults.FaultInjector` is attached, reads verify
the checksum and transient faults / detected torn reads are retried with
bounded exponential backoff on the injector's virtual clock; without an
injector the read path is exactly the two-line fast path it always was.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import PageCorruptionError, PageOverflowError, TransientIOError

PAGE_SIZE = 4096
_PAGE_HEADER = 32

#: Largest row a page can hold (checked before any write is attempted).
MAX_ROW_BYTES = PAGE_SIZE - _PAGE_HEADER


def _slot_hash(slot_no: int, value: Any) -> int:
    return hash((slot_no, value))


class Page:
    """One fixed-size page holding a list of row slots.

    A slot is either a row tuple or ``None`` (a tombstone left by DELETE;
    the slot is reused by a later INSERT when the row fits).
    """

    __slots__ = ("page_id", "slots", "used_bytes", "slot_sizes", "checksum")

    def __init__(self, page_id: int) -> None:
        self.page_id = page_id
        self.slots: List[Optional[Tuple[Any, ...]]] = []
        self.slot_sizes: List[int] = []
        self.used_bytes = _PAGE_HEADER
        self.checksum = 0

    @property
    def free_bytes(self) -> int:
        return PAGE_SIZE - self.used_bytes

    @property
    def live_rows(self) -> int:
        return sum(1 for slot in self.slots if slot is not None)

    def can_fit(self, row_bytes: int) -> bool:
        """Room for a row: fresh free space or a large-enough tombstone."""
        if row_bytes <= self.free_bytes:
            return True
        return any(
            slot is None and size >= row_bytes
            for slot, size in zip(self.slots, self.slot_sizes)
        )

    def insert(self, row: Tuple[Any, ...], row_bytes: int) -> int:
        """Place a row on this page, returning the slot number.

        Reuses a tombstoned slot when one can hold the row; otherwise
        appends a new slot.
        """
        if row_bytes > MAX_ROW_BYTES:
            raise PageOverflowError(
                f"row of {row_bytes} bytes exceeds page capacity"
            )
        for slot_no, slot in enumerate(self.slots):
            if slot is None and self.slot_sizes[slot_no] >= row_bytes:
                self.checksum ^= _slot_hash(slot_no, None) ^ _slot_hash(
                    slot_no, row
                )
                self.slots[slot_no] = row
                # The slot keeps its original size: the simulated layout
                # does not compact within a page.
                return slot_no
        if not self.can_fit(row_bytes):
            raise PageOverflowError("page full")
        slot_no = len(self.slots)
        self.slots.append(row)
        self.slot_sizes.append(row_bytes)
        self.used_bytes += row_bytes
        self.checksum ^= _slot_hash(slot_no, row)
        return slot_no

    def delete(self, slot_no: int) -> None:
        """Tombstone a slot.  The space remains allocated until reuse."""
        self.checksum ^= _slot_hash(slot_no, self.slots[slot_no]) ^ _slot_hash(
            slot_no, None
        )
        self.slots[slot_no] = None

    def can_update(self, slot_no: int, row_bytes: int) -> bool:
        """Whether :meth:`update` would succeed in place for this image."""
        if row_bytes <= self.slot_sizes[slot_no]:
            return True
        return row_bytes - self.slot_sizes[slot_no] <= self.free_bytes

    def update(self, slot_no: int, row: Tuple[Any, ...], row_bytes: int) -> bool:
        """Update a slot in place if the new image fits; returns success.

        When the new image is larger than the slot, the caller must delete
        here and re-insert elsewhere (the classic forwarding case, which we
        model simply as delete+insert).
        """
        if not self.can_update(slot_no, row_bytes):
            return False
        self.checksum ^= _slot_hash(slot_no, self.slots[slot_no]) ^ _slot_hash(
            slot_no, row
        )
        if row_bytes > self.slot_sizes[slot_no]:
            self.used_bytes += row_bytes - self.slot_sizes[slot_no]
            self.slot_sizes[slot_no] = row_bytes
        self.slots[slot_no] = row
        return True

    # -- integrity ----------------------------------------------------------

    def compute_checksum(self) -> int:
        """Recompute the checksum from the slot contents."""
        checksum = 0
        for slot_no, slot in enumerate(self.slots):
            checksum ^= _slot_hash(slot_no, slot)
        return checksum

    def verify(self) -> None:
        """Raise :class:`~repro.errors.PageCorruptionError` on mismatch."""
        if self.compute_checksum() != self.checksum:
            raise PageCorruptionError(
                f"checksum mismatch on page {self.page_id}",
                page_id=self.page_id,
            )

    def __repr__(self) -> str:
        return (
            f"Page(id={self.page_id}, rows={self.live_rows}, "
            f"used={self.used_bytes}/{PAGE_SIZE})"
        )


class IOCounters:
    """Mutable counters of logical page I/O, shared via the page manager."""

    __slots__ = ("page_reads", "page_writes", "rows_read", "rows_written")

    def __init__(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.rows_read = 0
        self.rows_written = 0

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.rows_read = 0
        self.rows_written = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "rows_read": self.rows_read,
            "rows_written": self.rows_written,
        }

    def __repr__(self) -> str:
        return (
            f"IOCounters(reads={self.page_reads}, writes={self.page_writes}, "
            f"rows_read={self.rows_read}, rows_written={self.rows_written})"
        )


class PageManager:
    """Owns the pages of one table and counts every logical access.

    The manager is deliberately simple: pages are append-ordered and a
    free-space hint (the id of the last page known to have room) avoids
    quadratic insert behaviour without simulating a full FSM.

    A :class:`~repro.resilience.faults.FaultInjector` attached as
    ``fault_injector`` turns the counted read/write paths into
    verify-and-retry state machines; ``None`` (the default) keeps them on
    the original fast path.
    """

    def __init__(self, counters: Optional[IOCounters] = None) -> None:
        self.pages: List[Page] = []
        self.counters = counters if counters is not None else IOCounters()
        self.fault_injector = None
        self._insert_hint = 0

    @property
    def page_count(self) -> int:
        return len(self.pages)

    def allocate(self) -> Page:
        page = Page(len(self.pages))
        self.pages.append(page)
        return page

    def page_for_insert(self, row_bytes: int) -> Page:
        """Find (or allocate) a page with room for ``row_bytes``."""
        for page_id in range(self._insert_hint, len(self.pages)):
            if self.pages[page_id].can_fit(row_bytes):
                self._insert_hint = page_id
                return self.pages[page_id]
        page = self.allocate()
        self._insert_hint = page.page_id
        return page

    # -- counted access -----------------------------------------------------

    def read_page(self, page_id: int) -> Page:
        """Read a page, counting one logical page read.

        With a fault injector attached, the read verifies the page
        checksum and retries transient faults / torn reads with backoff;
        a persistent fault surfaces as the typed storage error.
        """
        self.counters.page_reads += 1
        page = self.pages[page_id]
        injector = self.fault_injector
        if injector is None:
            return page
        return self._read_with_retry(page, injector)

    def _read_with_retry(self, page: Page, injector) -> Page:
        """Verify + retry state machine for one faulted page read.

        read → inject? → verify checksum → (mismatch: heal the buffered
        copy, back off, re-read) / (transient: back off, re-read) →
        after ``retry.max_attempts`` attempts the last typed error
        surfaces.  Each physical re-read is charged as a page read.
        """
        last_error: Optional[Exception] = None
        for attempt in range(injector.retry.max_attempts):
            if attempt:
                injector.clock.sleep(injector.retry.delay(attempt - 1))
                self.counters.page_reads += 1
            kind = injector.decide("page_read")
            if kind == "transient":
                last_error = TransientIOError(
                    f"transient I/O error reading page {page.page_id} "
                    f"(attempt {attempt + 1})"
                )
                continue
            if kind == "corrupt":
                injector.corrupt_page(page)
            try:
                page.verify()
            except PageCorruptionError as error:
                # Treat the damage as a torn buffered copy: the simulated
                # disk image is intact, so heal and re-read.
                injector.heal_page(page)
                last_error = error
                continue
            return page
        assert last_error is not None
        raise last_error

    def touch_write(self, count: int = 1) -> None:
        """Record ``count`` logical page writes.

        With a fault injector attached each logical write may fail
        transiently; it is retried with backoff and raises
        :class:`~repro.errors.TransientIOError` when the retry budget is
        exhausted.  The storage layer orders every ``touch_write``*before*
        the page mutation it accounts for, so a surfaced write fault
        leaves the page image untouched (fail-before-mutate).
        """
        self.counters.page_writes += count
        injector = self.fault_injector
        if injector is not None:
            self._write_with_retry(injector)

    def _write_with_retry(self, injector) -> None:
        last_error: Optional[Exception] = None
        for attempt in range(injector.retry.max_attempts):
            if attempt:
                injector.clock.sleep(injector.retry.delay(attempt - 1))
            kind = injector.decide("page_write")
            if kind is None:
                return
            # A "corrupt" on the write path models a failed write-verify:
            # nothing was persisted, so it retries exactly like a
            # transient fault and never damages the page image.
            last_error = TransientIOError(
                f"I/O error writing page ({kind}, attempt {attempt + 1})"
            )
        assert last_error is not None
        raise last_error

    def read_row(self, count: int = 1) -> None:
        self.counters.rows_read += count

    def wrote_row(self, count: int = 1) -> None:
        self.counters.rows_written += count
