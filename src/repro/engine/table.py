"""Heap tables: unordered row storage over simulated pages.

A :class:`HeapTable` owns a :class:`~repro.engine.page.PageManager` and
exposes insert/delete/update by :class:`~repro.engine.row.RowId`, plus a
counted full scan.  Constraint checking and index maintenance live above
this layer (in :mod:`repro.engine.database`); the heap is purely physical.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.engine.page import MAX_ROW_BYTES, IOCounters, PageManager
from repro.engine.row import RowId
from repro.engine.schema import TableSchema
from repro.errors import PageOverflowError, StorageError


class HeapTable:
    """Unordered heap of rows with page-level I/O accounting.

    Parameters
    ----------
    schema:
        The table's schema; rows are validated against it on insert.
    counters:
        Optional shared I/O counters (the database passes one set shared by
        all tables so a query's total I/O is a single number).
    """

    def __init__(
        self, schema: TableSchema, counters: Optional[IOCounters] = None
    ) -> None:
        self.schema = schema
        self.pages = PageManager(counters)
        self._row_count = 0

    # -- size ---------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def row_count(self) -> int:
        """Number of live rows."""
        return self._row_count

    @property
    def page_count(self) -> int:
        """Number of allocated pages (the table's footprint on disk)."""
        return self.pages.page_count

    # -- DML ------------------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> RowId:
        """Validate, coerce and store one row; returns its new RowId.

        All failure modes (validation, overflow, a surfaced write fault)
        are checked *before* any page mutates, so a raising insert leaves
        the heap image untouched.
        """
        row = self.schema.validate_row(values)
        row_bytes = self.schema.row_size(row)
        if row_bytes > MAX_ROW_BYTES:
            raise PageOverflowError(
                f"row of {row_bytes} bytes exceeds page capacity"
            )
        page = self.pages.page_for_insert(row_bytes)
        self.pages.touch_write()
        slot_no = page.insert(row, row_bytes)
        self.pages.wrote_row()
        self._row_count += 1
        return RowId(page.page_id, slot_no)

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> List[RowId]:
        """Bulk insert; returns the RowIds in input order."""
        return [self.insert(row) for row in rows]

    def fetch(self, row_id: RowId) -> Tuple[Any, ...]:
        """Fetch one row by RowId, counting one page read."""
        page = self.pages.read_page(row_id.page_id)
        row = page.slots[row_id.slot_no]
        if row is None:
            raise StorageError(f"{row_id} is deleted")
        self.pages.read_row()
        return row

    def fetch_if_live(self, row_id: RowId) -> Optional[Tuple[Any, ...]]:
        """Fetch a row, or None when the slot is tombstoned (counted read)."""
        page = self.pages.read_page(row_id.page_id)
        row = page.slots[row_id.slot_no]
        if row is not None:
            self.pages.read_row()
        return row

    def delete(self, row_id: RowId) -> Tuple[Any, ...]:
        """Delete a row, returning its last image (for undo / index upkeep).

        The write is charged (and may fault) before the slot is
        tombstoned — fail-before-mutate.
        """
        page = self.pages.read_page(row_id.page_id)
        row = page.slots[row_id.slot_no]
        if row is None:
            raise StorageError(f"{row_id} already deleted")
        self.pages.touch_write()
        page.delete(row_id.slot_no)
        self._row_count -= 1
        return row

    def update(self, row_id: RowId, values: Sequence[Any]) -> Tuple[RowId, Tuple[Any, ...]]:
        """Replace a row's image.

        Returns ``(new_row_id, old_image)``.  When the new image does not
        fit in place the row moves (delete + insert), exactly as a
        disk-based heap would forward it.
        """
        new_row = self.schema.validate_row(values)
        row_bytes = self.schema.row_size(new_row)
        if row_bytes > MAX_ROW_BYTES:
            raise PageOverflowError(
                f"row of {row_bytes} bytes exceeds page capacity"
            )
        page = self.pages.read_page(row_id.page_id)
        old_row = page.slots[row_id.slot_no]
        if old_row is None:
            raise StorageError(f"{row_id} is deleted")
        if page.can_update(row_id.slot_no, row_bytes):
            self.pages.touch_write()
            page.update(row_id.slot_no, new_row, row_bytes)
            return row_id, old_row
        # Forwarding: the row moves.  Both logical writes (source page,
        # target page) are charged up front so a surfaced write fault
        # raises before either page mutates; only then are the delete and
        # the placement applied, which cannot fail.
        target = self.pages.page_for_insert(row_bytes)
        self.pages.touch_write(2)
        page.delete(row_id.slot_no)
        slot_no = target.insert(new_row, row_bytes)
        self.pages.wrote_row()
        return RowId(target.page_id, slot_no), old_row

    # -- redo replay (durability) ----------------------------------------------

    def place_at(self, row_id: RowId, values: Sequence[Any]) -> None:
        """Force one row into the exact slot a WAL record assigned it.

        Redo replay must land rows at their logged physical position —
        free placement via :meth:`insert` could diverge from the original
        run whenever the page image being recovered differs from the one
        the original chose against (e.g. after a rolled-back statement
        left tombstones that the replayed prefix does not recreate).
        Pages are allocated up to the target, slot gaps are padded with
        tombstones, and the incremental XOR checksum is maintained so
        :meth:`~repro.engine.page.Page.verify` holds afterwards.
        """
        from repro.engine.page import _slot_hash

        row = self.schema.validate_row(values)
        row_bytes = self.schema.row_size(row)
        while self.pages.page_count <= row_id.page_id:
            self.pages.allocate()
        page = self.pages.pages[row_id.page_id]
        self.pages.touch_write()
        if row_id.slot_no < len(page.slots):
            if page.slots[row_id.slot_no] is not None:
                raise StorageError(
                    f"redo replay cannot place a row at occupied {row_id}"
                )
            if page.slot_sizes[row_id.slot_no] < row_bytes:
                raise StorageError(
                    f"redo replay row does not fit the tombstone at {row_id}"
                )
            page.checksum ^= _slot_hash(row_id.slot_no, None)
            page.checksum ^= _slot_hash(row_id.slot_no, row)
            # Mirror Page.insert's tombstone reuse: the slot keeps its
            # original size (no within-page compaction), so the replayed
            # page image stays bit-identical to the original run's.
            page.slots[row_id.slot_no] = row
        else:
            while len(page.slots) < row_id.slot_no:
                gap = len(page.slots)
                page.slots.append(None)
                page.slot_sizes.append(0)
                page.checksum ^= _slot_hash(gap, None)
            page.slots.append(row)
            page.slot_sizes.append(row_bytes)
            page.used_bytes += row_bytes
            page.checksum ^= _slot_hash(row_id.slot_no, row)
        self.pages.wrote_row()
        self._row_count += 1
        # Mirror page_for_insert: the hint follows the last placement.
        if row_id.page_id > self.pages._insert_hint:
            self.pages._insert_hint = row_id.page_id

    def apply_update(
        self, old_rid: RowId, new_rid: RowId, values: Sequence[Any]
    ) -> Tuple[Any, ...]:
        """Redo one logged update, honouring its logged placement.

        Returns the pre-update image (for index maintenance).  In-place
        updates stay in place; a forwarded update (``new_rid`` differs)
        deletes the old slot and forces the new image at ``new_rid``.
        """
        row = self.schema.validate_row(values)
        row_bytes = self.schema.row_size(row)
        page = self.pages.read_page(old_rid.page_id)
        old_row = page.slots[old_rid.slot_no]
        if old_row is None:
            raise StorageError(
                f"redo replay found no row to update at {old_rid}"
            )
        if old_rid == new_rid and page.can_update(old_rid.slot_no, row_bytes):
            self.pages.touch_write()
            page.update(old_rid.slot_no, row, row_bytes)
            return old_row
        self.pages.touch_write()
        page.delete(old_rid.slot_no)
        self._row_count -= 1
        self.place_at(new_rid, row)
        return old_row

    # -- scans -----------------------------------------------------------------

    def scan(self) -> Iterator[Tuple[RowId, Tuple[Any, ...]]]:
        """Full scan in physical order, counting each page read once."""
        for page_id in range(self.pages.page_count):
            page = self.pages.read_page(page_id)
            for slot_no, row in enumerate(page.slots):
                if row is not None:
                    self.pages.read_row()
                    yield RowId(page_id, slot_no), row

    def scan_rows(self) -> Iterator[Tuple[Any, ...]]:
        """Full scan yielding just the row tuples."""
        for _, row in self.scan():
            yield row

    def scan_row_runs(self) -> Iterator[List[Tuple[Any, ...]]]:
        """Full scan yielding one list of live row tuples per page.

        Charges exactly the same I/O as :meth:`scan` — one page read per
        page, one row read per live row, in the same page order — but
        amortizes the per-row generator machinery, which is what the
        columnar scan path batches away.  Empty pages are skipped (their
        page read is still charged, as in :meth:`scan`).
        """
        for page_id in range(self.pages.page_count):
            page = self.pages.read_page(page_id)
            live = [row for row in page.slots if row is not None]
            if live:
                self.pages.read_row(len(live))
                yield live

    def truncate(self) -> None:
        """Drop all rows and pages (DDL-level operation; not undoable)."""
        counters = self.pages.counters
        self.pages = PageManager(counters)
        self._row_count = 0

    def __repr__(self) -> str:
        return (
            f"HeapTable({self.schema.name}, rows={self._row_count}, "
            f"pages={self.page_count})"
        )
