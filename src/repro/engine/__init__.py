"""Storage engine substrate: types, schemas, pages, tables, indexes,
constraints, transactions and the catalog.

The engine simulates a disk-based relational storage layer.  Rows live on
fixed-size pages, and all operators account for the pages they touch, so the
optimizer's cost model can be validated against actual execution metrics.
"""

from repro.engine.types import (
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    SqlType,
    VARCHAR,
)
from repro.engine.schema import Column, TableSchema
from repro.engine.table import HeapTable
from repro.engine.index import BTreeIndex
from repro.engine.catalog import Catalog
from repro.engine.database import Database
from repro.engine.constraints import (
    CheckConstraint,
    ConstraintMode,
    ForeignKeyConstraint,
    NotNullConstraint,
    PrimaryKeyConstraint,
    UniqueConstraint,
)

__all__ = [
    "BOOLEAN",
    "BTreeIndex",
    "Catalog",
    "CheckConstraint",
    "Column",
    "ConstraintMode",
    "DATE",
    "DOUBLE",
    "Database",
    "ForeignKeyConstraint",
    "HeapTable",
    "INTEGER",
    "NotNullConstraint",
    "PrimaryKeyConstraint",
    "SqlType",
    "TableSchema",
    "UniqueConstraint",
    "VARCHAR",
]
