"""Harvesting: turn one instrumented execution into store observations.

The executors already record ``actual_rows`` per node under
instrumentation (set only when an operator ran to completion — a
LIMIT-truncated subtree stays None, so every harvested count is a *true*
full cardinality).  Feedback collection additionally records scan input
rows (``actual_rows_scanned``) and join pair counts (``actual_pairs``);
:func:`harvest` walks the executed tree once and folds everything into
the :class:`~repro.feedback.store.FeedbackStore`.

:func:`clear_actuals` resets all runtime counters on a plan before a
collected execution, so a cached (re-executed) plan never harvests a
previous run's numbers.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.expr import analysis
from repro.feedback import signatures
from repro.feedback.qerror import q_error
from repro.feedback.store import FeedbackStore
from repro.optimizer.physical import (
    EmptyResult,
    GroupBy,
    HashJoin,
    IndexScan,
    NestedLoopJoin,
    PhysicalNode,
    PhysicalPlan,
    SeqScan,
    Sort,
)


class HarvestSummary:
    """What one harvest contributed: observation count and worst q-error."""

    __slots__ = ("observations", "max_qerror")

    def __init__(self, observations: int = 0, max_qerror: float = 1.0) -> None:
        self.observations = observations
        self.max_qerror = max_qerror

    def __repr__(self) -> str:
        return (
            f"HarvestSummary(observations={self.observations}, "
            f"max_qerror={self.max_qerror:.2f})"
        )


def clear_actuals(root: PhysicalNode) -> None:
    """Reset every runtime counter in the tree (pre-execution)."""
    stack = [root]
    while stack:
        node = stack.pop()
        node.actual_rows = None
        node.actual_batches = None
        if isinstance(node, (SeqScan, IndexScan)):
            node.actual_rows_scanned = None
        elif isinstance(node, (HashJoin, NestedLoopJoin)):
            node.actual_pairs = None
        elif isinstance(node, Sort):
            node.actual_input_rows = None
        stack.extend(node.children())


def binding_tables_of(root: PhysicalNode) -> Dict[str, str]:
    """binding → table name, from the plan's scan leaves."""
    tables: Dict[str, str] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, (SeqScan, IndexScan, EmptyResult)):
            tables[node.binding.lower()] = node.table_name
        stack.extend(node.children())
    return tables


def harvest(plan: PhysicalPlan, store: FeedbackStore) -> HarvestSummary:
    """Fold one executed (instrumented) plan into the store."""
    binding_tables = binding_tables_of(plan.root)
    summary = HarvestSummary()
    stack = [plan.root]
    while stack:
        node = stack.pop()
        stack.extend(node.children())
        if node.actual_rows is None:
            continue
        q = q_error(node.estimated_rows, node.actual_rows)
        if q > summary.max_qerror:
            summary.max_qerror = q
        if isinstance(node, SeqScan):
            _harvest_seq_scan(node, store, summary)
        elif isinstance(node, IndexScan):
            _harvest_index_scan(node, store, summary)
        elif isinstance(node, (HashJoin, NestedLoopJoin)):
            _harvest_join(node, store, binding_tables, summary)
        elif isinstance(node, GroupBy):
            _harvest_group(node, store, binding_tables, summary)
    store.harvests += 1
    return summary


def _harvest_seq_scan(
    node: SeqScan, store: FeedbackStore, summary: HarvestSummary
) -> None:
    signature = signatures.predicate_signature(node.predicate)
    store.record_scan(
        node.table_name, signature, node.estimated_rows, node.actual_rows
    )
    summary.observations += 1
    # A completed sequential scan counted the whole table in passing.
    if node.actual_rows_scanned is not None:
        store.record_base_rows(node.table_name, node.actual_rows_scanned)
        summary.observations += 1


def _harvest_index_scan(
    node: IndexScan, store: FeedbackStore, summary: HarvestSummary
) -> None:
    signature = signatures.predicate_signature(node.predicate)
    store.record_scan(
        node.table_name, signature, node.estimated_rows, node.actual_rows
    )
    summary.observations += 1
    # Rows the range actually fetched = the cost model's "matching" rows.
    if node.actual_rows_scanned is not None:
        store.record_index_range(
            node.table_name,
            node.index_name,
            signatures.index_range_signature(
                node.low, node.high, node.low_inclusive, node.high_inclusive
            ),
            node.actual_rows_scanned,
        )
        summary.observations += 1


def _join_inputs(node) -> Optional[tuple]:
    left = node.left.actual_rows
    right = node.right.actual_rows
    if not left or not right:
        return None  # an input was truncated (or empty): no selectivity
    return float(left), float(right)


def _estimated_join_selectivity(node) -> Optional[float]:
    left = node.left.estimated_rows
    right = node.right.estimated_rows
    if left <= 0 or right <= 0:
        return None
    return node.estimated_rows / (left * right)


def _harvest_join(
    node,
    store: FeedbackStore,
    binding_tables: Dict[str, str],
    summary: HarvestSummary,
) -> None:
    inputs = _join_inputs(node)
    if inputs is None:
        return
    left_rows, right_rows = inputs
    pairs = node.actual_pairs
    if isinstance(node, HashJoin):
        if len(node.left_keys) != 1 or len(node.right_keys) != 1:
            return  # multi-key edges don't map to one estimator conjunct
        left_key, right_key = node.left_keys[0], node.right_keys[0]
        from repro.sql import ast

        if not (
            isinstance(left_key, ast.ColumnRef)
            and isinstance(right_key, ast.ColumnRef)
        ):
            return
        signature = signatures.join_edge_signature(
            left_key, right_key, binding_tables
        )
        # The pre-residual pair count isolates the equi edge's own
        # selectivity from any residual conjuncts applied after it.
        matched = pairs if pairs is not None else node.actual_rows
        tables = _edge_tables(left_key, right_key, binding_tables)
    else:  # NestedLoopJoin
        condition = node.condition
        if condition is None:
            return  # cartesian product: nothing to learn
        conjuncts = analysis.split_conjuncts(condition)
        if len(conjuncts) != 1:
            return
        equijoin = analysis.match_equijoin(conjuncts[0])
        if equijoin is not None:
            signature = signatures.join_edge_signature(
                equijoin[0], equijoin[1], binding_tables
            )
            tables = _edge_tables(equijoin[0], equijoin[1], binding_tables)
        else:
            signature = signatures.theta_signature(condition, binding_tables)
            tables = tuple(
                sorted(
                    binding_tables.get(b, b)
                    for b in analysis.tables_in(condition)
                )
            )
        matched = node.actual_rows
        if pairs is None:
            pairs = left_rows * right_rows
    if signature is None:
        return
    input_pairs = left_rows * right_rows
    if input_pairs <= 0:
        return
    store.record_join(
        signature,
        _estimated_join_selectivity(node),
        float(matched) / input_pairs,
        tables=tables,
    )
    summary.observations += 1


def _edge_tables(left_key, right_key, binding_tables) -> tuple:
    return tuple(
        sorted(
            binding_tables.get((ref.table or "").lower(), ref.table or "?")
            for ref in (left_key, right_key)
        )
    )


def _harvest_group(
    node: GroupBy,
    store: FeedbackStore,
    binding_tables: Dict[str, str],
    summary: HarvestSummary,
) -> None:
    if not node.keys:
        return  # scalar aggregation always yields one row
    signature = signatures.group_signature(node.keys, binding_tables)
    store.record_group(signature, node.estimated_rows, node.actual_rows)
    summary.observations += 1
