"""The FeedbackStore: aggregated actual-cardinality observations.

One store serves one session.  Keys:

* **scans** — ``(table, predicate signature)`` → output rows a scan of
  that table under that (qualifier-stripped, order-canonical) conjunct
  set actually produced;
* **index ranges** — ``(table, index, range signature)`` → rows the
  index range actually fetched (the access-path ``matching`` quantity);
* **joins** — equi-edge or theta signature → observed edge selectivity
  (matched pairs over input-pair product);
* **groups** — grouping-key signature → observed group count;
* **base rows** — table → cardinality observed by a full sequential
  scan (a seq scan that ran to completion has, as a side effect,
  counted the whole table — fresher than stale RUNSTATS).

Values are exponentially-weighted moving averages (``alpha`` weights the
newest run) so a drifting table converges over a few executions instead
of whipsawing on one outlier, plus per-key q-error aggregates for
reporting and for the discovery miners' targeting hints.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.errors import FeedbackError
from repro.feedback.qerror import QErrorTracker

#: Weight of the newest observation in the moving average.
DEFAULT_ALPHA = 0.5

#: Guard trips on one table before it is flagged suspect (one trip could
#: be an aggressive budget; repetition means the plan is mis-costed).
GUARD_TRIP_SUSPECT_THRESHOLD = 2

#: Sentinel q-error reported for guard-tripping tables — far above any
#: realistic estimation error, so reports clearly separate the two.
GUARD_TRIP_SENTINEL_QERROR = 1e6


class Observation:
    """One feedback key's aggregated history."""

    __slots__ = ("count", "value", "last_estimated", "last_actual", "qerror")

    def __init__(self) -> None:
        self.count = 0
        self.value: Optional[float] = None  # EWMA of the observed quantity
        self.last_estimated: Optional[float] = None
        self.last_actual: Optional[float] = None
        self.qerror = QErrorTracker()

    def record(
        self,
        actual: float,
        estimated: Optional[float] = None,
        alpha: float = DEFAULT_ALPHA,
    ) -> None:
        self.count += 1
        actual = float(actual)
        if self.value is None:
            self.value = actual
        else:
            self.value = alpha * actual + (1.0 - alpha) * self.value
        self.last_actual = actual
        if estimated is not None:
            self.last_estimated = float(estimated)
            self.qerror.record(estimated, actual)

    def state_dict(self) -> dict:
        """JSON-safe full state (for durability checkpoints)."""
        return {
            "count": self.count,
            "value": self.value,
            "last_estimated": self.last_estimated,
            "last_actual": self.last_actual,
            "qerror": self.qerror.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.count = state["count"]
        self.value = state["value"]
        self.last_estimated = state["last_estimated"]
        self.last_actual = state["last_actual"]
        self.qerror = QErrorTracker()
        self.qerror.load_state(state["qerror"])

    def __repr__(self) -> str:
        return (
            f"Observation(n={self.count}, value={self.value}, "
            f"max_qerror={self.qerror.max_qerror:.2f})"
        )


class FeedbackStore:
    """Aggregates harvested actuals and answers estimator lookups."""

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha <= 1.0:
            raise FeedbackError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._scans: Dict[Tuple[str, str], Observation] = {}
        self._index_ranges: Dict[Tuple[str, str, str], Observation] = {}
        self._joins: Dict[str, Observation] = {}
        self._join_tables: Dict[str, Tuple[str, ...]] = {}
        self._groups: Dict[str, Observation] = {}
        self._base_rows: Dict[str, Observation] = {}
        # Guard breaches: per-table trip counts plus per-kind totals.  A
        # tripped budget is itself strong feedback — the plan did far more
        # work than the optimizer predicted.
        self._guard_trips: Dict[str, int] = {}
        self._guard_trip_kinds: Dict[str, int] = {}
        self.guard_trips = 0
        self.observations = 0
        self.harvests = 0
        # Concurrent sessions harvest into one shared store; recording
        # mutates multi-field Observation state, so every write path
        # (and the aggregating reports) is serialized.  Point lookups
        # stay lock-free: they read one reference, and the optimizer
        # calls them on its hot path.
        self._lock = threading.RLock()

    # ----------------------------------------------------------- recording

    def record_scan(
        self,
        table: str,
        signature: str,
        estimated: float,
        actual: float,
    ) -> None:
        key = (table.lower(), signature)
        with self._lock:
            entry = self._scans.setdefault(key, Observation())
            entry.record(actual, estimated, self.alpha)
            self.observations += 1

    def record_index_range(
        self, table: str, index_name: str, range_signature: str, fetched: float
    ) -> None:
        key = (table.lower(), index_name.lower(), range_signature)
        with self._lock:
            entry = self._index_ranges.setdefault(key, Observation())
            entry.record(fetched, None, self.alpha)
            self.observations += 1

    def record_base_rows(self, table: str, rows: float) -> None:
        with self._lock:
            entry = self._base_rows.setdefault(
                table.lower(), Observation()
            )
            entry.record(rows, None, self.alpha)
            self.observations += 1

    def record_join(
        self,
        signature: str,
        estimated_selectivity: Optional[float],
        actual_selectivity: float,
        tables: Tuple[str, ...] = (),
    ) -> None:
        with self._lock:
            entry = self._joins.setdefault(signature, Observation())
            entry.record(actual_selectivity, None, self.alpha)
            if estimated_selectivity is not None:
                # Selectivities are fractions; q-error clamps to >= 1
                # row, so track the ratio on a common scale instead.
                scale = 1e9
                entry.qerror.record(
                    estimated_selectivity * scale,
                    actual_selectivity * scale,
                )
            if tables:
                self._join_tables[signature] = tuple(
                    t.lower() for t in sorted(tables)
                )
            self.observations += 1

    def record_group(
        self, signature: str, estimated: float, actual: float
    ) -> None:
        with self._lock:
            entry = self._groups.setdefault(signature, Observation())
            entry.record(actual, estimated, self.alpha)
            self.observations += 1

    def record_guard_trip(self, kind: str, tables: Tuple[str, ...] = ()) -> None:
        """Record a resource-governance breach against a query's tables.

        ``kind`` is the breached budget (``"rows"``, ``"page_reads"``,
        ``"join_pairs"``, ``"deadline"``, ``"cancelled"``).  Tables that
        keep tripping guards surface in :meth:`tables_with_qerror` at a
        sentinel q-error, so the adjuster re-verifies their constraints
        exactly as it would after a large misestimate.
        """
        with self._lock:
            self.guard_trips += 1
            self._guard_trip_kinds[kind] = (
                self._guard_trip_kinds.get(kind, 0) + 1
            )
            for table in tables:
                name = table.lower()
                self._guard_trips[name] = self._guard_trips.get(name, 0) + 1

    # ------------------------------------------------------------- lookups

    def scan_rows(self, table: str, signature: str) -> Optional[float]:
        entry = self._scans.get((table.lower(), signature))
        return None if entry is None else entry.value

    def matching_rows(
        self, table: str, index_name: str, range_signature: str
    ) -> Optional[float]:
        entry = self._index_ranges.get(
            (table.lower(), index_name.lower(), range_signature)
        )
        return None if entry is None else entry.value

    def base_rows(self, table: str) -> Optional[float]:
        entry = self._base_rows.get(table.lower())
        return None if entry is None else entry.value

    def join_selectivity(self, signature: str) -> Optional[float]:
        entry = self._joins.get(signature)
        if entry is None or entry.value is None:
            return None
        return max(0.0, min(1.0, entry.value))

    def group_rows(self, signature: str) -> Optional[float]:
        entry = self._groups.get(signature)
        return None if entry is None else entry.value

    def __len__(self) -> int:
        return (
            len(self._scans)
            + len(self._index_ranges)
            + len(self._joins)
            + len(self._groups)
            + len(self._base_rows)
        )

    # ----------------------------------------------- targeting / reporting

    def tables_with_qerror(self, min_qerror: float = 2.0) -> Dict[str, float]:
        """table → worst scan q-error seen, for tables at/above the bar.

        The adjuster uses this to pick which tables' soft constraints are
        worth re-verifying, and the discovery engine to boost candidates.
        """
        worst: Dict[str, float] = {}
        with self._lock:
            scans = list(self._scans.items())
            guard_trips = list(self._guard_trips.items())
        for (table, _sig), entry in scans:
            q = entry.qerror.max_qerror
            if q >= min_qerror and q > worst.get(table, 0.0):
                worst[table] = q
        # A table whose queries repeatedly trip guards is suspect even
        # without a recorded misestimate (the breach usually aborted the
        # run before actuals could be harvested): surface it at a
        # sentinel q-error so the adjuster re-verifies its constraints.
        for table, trips in guard_trips:
            if trips >= GUARD_TRIP_SUSPECT_THRESHOLD:
                worst[table] = max(
                    worst.get(table, 0.0), GUARD_TRIP_SENTINEL_QERROR
                )
        return worst

    def worst_scans(
        self, limit: int = 5, min_qerror: float = 1.0
    ) -> List[Tuple[str, str, float]]:
        """(table, signature, max q-error), worst first."""
        with self._lock:
            ranked = [
                (table, sig, entry.qerror.max_qerror)
                for (table, sig), entry in self._scans.items()
                if entry.qerror.max_qerror >= min_qerror
            ]
        ranked.sort(key=lambda item: -item[2])
        return ranked[:limit]

    def worst_join_edges(
        self, limit: int = 5, min_qerror: float = 1.0
    ) -> List[Tuple[str, Tuple[str, ...], float]]:
        """(edge signature, tables, max q-error), worst first."""
        with self._lock:
            ranked = [
                (sig, self._join_tables.get(sig, ()), entry.qerror.max_qerror)
                for sig, entry in self._joins.items()
                if entry.qerror.max_qerror >= min_qerror
            ]
        ranked.sort(key=lambda item: -item[2])
        return ranked[:limit]

    def join_table_qerrors(self) -> Dict[Tuple[str, ...], float]:
        """Sorted table pair → worst join-edge q-error observed on it."""
        worst: Dict[Tuple[str, ...], float] = {}
        with self._lock:
            joins = list(self._joins.items())
        for sig, entry in joins:
            tables = self._join_tables.get(sig)
            if not tables:
                continue
            q = entry.qerror.max_qerror
            if q > worst.get(tables, 0.0):
                worst[tables] = q
        return worst

    def snapshot(self) -> dict:
        """A JSON-friendly summary for reports and debugging."""
        return {
            "observations": self.observations,
            "harvests": self.harvests,
            "keys": len(self),
            "base_rows": {
                table: round(entry.value, 1)
                for table, entry in sorted(self._base_rows.items())
                if entry.value is not None
            },
            "worst_scans": [
                {"table": t, "signature": s, "max_qerror": round(q, 2)}
                for t, s, q in self.worst_scans()
            ],
            "worst_joins": [
                {"edge": sig, "tables": list(tables), "max_qerror": round(q, 2)}
                for sig, tables, q in self.worst_join_edges()
            ],
            "guard_trips": {
                "total": self.guard_trips,
                "by_kind": dict(sorted(self._guard_trip_kinds.items())),
                "by_table": dict(sorted(self._guard_trips.items())),
            },
        }

    def state_dict(self) -> dict:
        """Full store state, JSON-safe, for durability checkpoints.

        Tuple keys become lists (JSON has no tuple); entries are sorted
        so two stores with equal content serialize byte-identically under
        canonical JSON.
        """

        def encode(entries: dict) -> list:
            return [
                [list(key) if isinstance(key, tuple) else key,
                 observation.state_dict()]
                for key, observation in sorted(entries.items())
            ]

        with self._lock:
            return {
                "alpha": self.alpha,
                "scans": encode(self._scans),
                "index_ranges": encode(self._index_ranges),
                "joins": encode(self._joins),
                "join_tables": [
                    [signature, list(tables)]
                    for signature, tables in sorted(self._join_tables.items())
                ],
                "groups": encode(self._groups),
                "base_rows": encode(self._base_rows),
                "guard_trips_by_table": dict(self._guard_trips),
                "guard_trips_by_kind": dict(self._guard_trip_kinds),
                "counters": {
                    "guard_trips": self.guard_trips,
                    "observations": self.observations,
                    "harvests": self.harvests,
                },
            }

    def load_state(self, state: dict) -> None:
        """Replace this store's content with a checkpointed state."""
        with self._lock:
            self._load_state_locked(state)

    def _load_state_locked(self, state: dict) -> None:
        self._clear_locked()
        self.alpha = state["alpha"]

        def decode(entries: list, target: dict, tuple_keys: bool) -> None:
            for key, observation_state in entries:
                observation = Observation()
                observation.load_state(observation_state)
                target[tuple(key) if tuple_keys else key] = observation

        decode(state["scans"], self._scans, True)
        decode(state["index_ranges"], self._index_ranges, True)
        decode(state["joins"], self._joins, False)
        for signature, tables in state["join_tables"]:
            self._join_tables[signature] = tuple(tables)
        decode(state["groups"], self._groups, False)
        decode(state["base_rows"], self._base_rows, False)
        self._guard_trips.update(state["guard_trips_by_table"])
        self._guard_trip_kinds.update(state["guard_trips_by_kind"])
        self.guard_trips = state["counters"]["guard_trips"]
        self.observations = state["counters"]["observations"]
        self.harvests = state["counters"]["harvests"]

    def clear(self) -> None:
        with self._lock:
            self._clear_locked()

    def _clear_locked(self) -> None:
        self._scans.clear()
        self._index_ranges.clear()
        self._joins.clear()
        self._join_tables.clear()
        self._groups.clear()
        self._base_rows.clear()
        self._guard_trips.clear()
        self._guard_trip_kinds.clear()
        self.guard_trips = 0
        self.observations = 0
        self.harvests = 0

    def __repr__(self) -> str:
        return (
            f"FeedbackStore(keys={len(self)}, "
            f"observations={self.observations})"
        )
