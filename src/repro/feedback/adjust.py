"""Loop 1: feed execution feedback into soft-constraint currency.

The paper's currency model (Section 4.3) *predicts* how stale a soft
constraint has become from update counts alone.  Execution feedback adds
the missing observational check: when a table's scans keep misestimating
(high q-error), something the optimizer believed about that table is
wrong — quite possibly one of its soft constraints.  The
:class:`FeedbackAdjuster` re-verifies exactly the constraints on those
suspect tables:

* **SSCs** get fresh measured confidence (``verify`` recomputes it from
  actual violation counts), which directly tightens or relaxes the
  twinned-predicate selectivity blend in estimation; their currency
  model is reset, zeroing the predicted margin of error.
* **ASCs** found violated are handed to their registered
  :class:`~repro.softcon.maintenance.MaintenancePolicy` — the same path
  a synchronous update-time detection would take (drop, repair, demote,
  or async-queue), so "predicted holes that turn out non-empty" trigger
  real maintenance instead of silently corrupting rewrites.

This is deliberately *targeted*: only tables (or join pairs) whose
observed q-error crossed ``suspect_qerror`` pay verification cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.errors import FeedbackError
from repro.feedback.store import FeedbackStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.softcon.registry import SoftConstraintRegistry
    from repro.storage.database import Database

#: Worst-scan q-error at which a table's constraints get re-verified.
DEFAULT_SUSPECT_QERROR = 4.0


class FeedbackAdjuster:
    """Re-verify soft constraints on tables the feedback flags as suspect."""

    def __init__(
        self,
        registry: "SoftConstraintRegistry",
        store: FeedbackStore,
        database: "Database",
        suspect_qerror: float = DEFAULT_SUSPECT_QERROR,
    ) -> None:
        if suspect_qerror < 1.0:
            raise FeedbackError(
                f"suspect_qerror must be >= 1.0, got {suspect_qerror}"
            )
        self.registry = registry
        self.store = store
        self.database = database
        self.suspect_qerror = suspect_qerror
        self.applications = 0

    def suspect_tables(self) -> Dict[str, float]:
        """table → worst observed q-error, over scans *and* join edges."""
        suspects = dict(
            self.store.tables_with_qerror(min_qerror=self.suspect_qerror)
        )
        for tables, q in self.store.join_table_qerrors().items():
            if q < self.suspect_qerror:
                continue
            for table in tables:
                if q > suspects.get(table, 0.0):
                    suspects[table] = q
        return suspects

    def apply(self) -> List[str]:
        """Run one adjustment pass; returns human-readable action lines."""
        self.applications += 1
        suspects = self.suspect_tables()
        if not suspects:
            return []
        actions: List[str] = []
        for constraint in self.registry.all():
            if not constraint.usable_in_estimation:
                continue
            tables = [t.lower() for t in constraint.table_names()]
            worst = max(
                (suspects[t] for t in tables if t in suspects), default=None
            )
            if worst is None:
                continue
            was_absolute = constraint.is_absolute
            before = constraint.confidence
            violations, total = constraint.verify(self.database)
            self.registry.refresh_currency(constraint, self.database)
            if was_absolute and violations > 0:
                # The predicted-empty hole is not empty: maintenance time.
                policy = self.registry.policy_for(constraint)
                policy.on_violation(self.registry, constraint, None)
                actions.append(
                    f"asc {constraint.name}: {violations}/{total} violations "
                    f"on suspect table (qerr~{worst:.1f}) -> "
                    f"policy[{policy.name}] applied, state={constraint.state.value}"
                )
            else:
                actions.append(
                    f"ssc {constraint.name}: confidence "
                    f"{before:.3f} -> {constraint.confidence:.3f} "
                    f"({violations}/{total} violations, qerr~{worst:.1f}), "
                    f"currency reset"
                )
        return actions
