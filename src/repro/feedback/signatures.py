"""Canonical keys for feedback observations.

An observation recorded while executing one plan must be found again when
the optimizer re-estimates the *same logical work* — possibly from a
different physical plan, with the conjuncts in a different order, or
under a different binding alias.  Signatures therefore:

* strip binding qualifiers (``e.age > 30`` and ``emp.age > 30`` key the
  same observation, with the table name carried separately);
* split conjunctions to atoms and sort their SQL texts, so conjunct
  order and ``AND`` nesting don't matter;
* round-trip through :func:`repro.sql.printer.sql_of`, the same printer
  both the estimator's conjunct lists and the physical scan predicates
  (built via :func:`repro.expr.analysis.conjoin`) flow through.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from repro.expr import analysis
from repro.sql import ast
from repro.sql.printer import sql_of

#: Signature of an unfiltered scan (no predicate at all).
FULL_SCAN = "<full-scan>"


def conjunct_signature(conjuncts: Sequence[ast.Expression]) -> str:
    """Order-insensitive, qualifier-free signature of a conjunct list."""
    parts = set()
    for conjunct in conjuncts:
        for atom in analysis.split_conjuncts(conjunct):
            parts.add(sql_of(analysis.strip_qualifiers(atom)))
    if not parts:
        return FULL_SCAN
    return " AND ".join(sorted(parts))


def predicate_signature(predicate: Optional[ast.Expression]) -> str:
    """Signature of a scan node's (possibly None) pushed-down predicate."""
    if predicate is None:
        return FULL_SCAN
    return conjunct_signature([predicate])


def join_edge_signature(
    left: ast.ColumnRef,
    right: ast.ColumnRef,
    binding_tables: Dict[str, str],
) -> Optional[str]:
    """``table.col=table.col`` (sides sorted) for one equi-join edge.

    Bindings resolve through ``binding_tables`` so the same edge keys the
    same observation across queries with different aliases; unresolvable
    bindings yield None (no observation is recorded or consulted).
    """
    left_table = binding_tables.get((left.table or "").lower())
    right_table = binding_tables.get((right.table or "").lower())
    if not left_table or not right_table:
        return None
    sides = sorted(
        (
            f"{left_table.lower()}.{left.column.lower()}",
            f"{right_table.lower()}.{right.column.lower()}",
        )
    )
    return "=".join(sides)


def theta_signature(
    condition: ast.Expression, binding_tables: Dict[str, str]
) -> str:
    """Signature for a non-equi join condition: the stripped condition
    text plus the sorted participating table names."""
    tables = sorted(
        binding_tables.get(binding, binding).lower()
        for binding in analysis.tables_in(condition)
    )
    text = sql_of(analysis.strip_qualifiers(condition))
    return f"theta[{','.join(tables)}]:{text}"


def group_signature(
    keys: Sequence[ast.ColumnRef], binding_tables: Dict[str, str]
) -> str:
    """Sorted ``table.col`` list of a GROUP BY's key columns."""
    parts = sorted(
        f"{binding_tables.get((key.table or '').lower(), key.table or '?')}"
        f".{key.column.lower()}".lower()
        for key in keys
    )
    return "group:" + ",".join(parts)


def index_range_signature(
    low: Optional[Tuple[Any, ...]],
    high: Optional[Tuple[Any, ...]],
    low_inclusive: bool,
    high_inclusive: bool,
) -> str:
    """Signature of an index scan's key range.

    Keys the *matching rows* observation (how many rows the range really
    fetched) so access-path selection can correct a stale histogram's
    ``matching`` estimate for the exact same range on reoptimization.
    """
    return "{}{}..{}{}".format(
        "[" if low_inclusive else "(",
        _render_key(low),
        _render_key(high),
        "]" if high_inclusive else ")",
    )


def _render_key(key: Optional[Tuple[Any, ...]]) -> str:
    if key is None:
        return "*"
    return ",".join(_render_part(part) for part in key)


def _render_part(part: Any) -> str:
    # Runtime parameters print their identity, not their current value:
    # the *range expression* is what's stable across executions.
    if isinstance(part, ast.RuntimeParameter):
        return sql_of(part)
    if isinstance(part, ast.Expression):
        return sql_of(part)
    return repr(part)
