"""Execution feedback: actual cardinalities close the optimizer's loop.

The optimizer in this reproduction *estimates* — nothing in the original
paper's pipeline ever checks those estimates against reality.  This
package adds the classic feedback loop (Adaptive Cardinality Estimation
lineage; see PAPERS.md):

1. the executors record per-plan-node **actual** output cardinalities
   (plus scan input rows and join pair counts) when collection is on;
2. :mod:`repro.feedback.counters` harvests an executed plan into a
   :class:`~repro.feedback.store.FeedbackStore`, keyed by
   (table, predicate-signature) for scans, join-edge signature for
   joins, and grouping-key signature for aggregations, with per-key
   q-error tracking;
3. the stored observations feed back three ways: corrected estimates in
   :class:`~repro.optimizer.cardinality.CardinalityEstimator` (its
   ``"feedback"`` combiner mode), q-error-driven
   :class:`~repro.optimizer.planner.PlanCache` invalidation, and
   :class:`~repro.feedback.adjust.FeedbackAdjuster`'s targeted
   re-verification of soft constraints on misestimated tables (the
   currency/maintenance loop of the paper's Sections 3.3 and 4.3).

Collection is **off by default** and adds no per-row work when off; turn
it on with ``OptimizerConfig(collect_feedback=True)``.
"""

from repro.feedback.adjust import FeedbackAdjuster
from repro.feedback.counters import HarvestSummary, clear_actuals, harvest
from repro.feedback.qerror import QErrorTracker, plan_max_qerror, q_error
from repro.feedback.signatures import (
    FULL_SCAN,
    conjunct_signature,
    group_signature,
    index_range_signature,
    join_edge_signature,
    predicate_signature,
    theta_signature,
)
from repro.feedback.store import FeedbackStore, Observation

__all__ = [
    "FULL_SCAN",
    "FeedbackAdjuster",
    "FeedbackStore",
    "HarvestSummary",
    "Observation",
    "QErrorTracker",
    "clear_actuals",
    "conjunct_signature",
    "group_signature",
    "harvest",
    "index_range_signature",
    "join_edge_signature",
    "plan_max_qerror",
    "predicate_signature",
    "q_error",
    "theta_signature",
]
