"""Q-error aggregation over feedback observations.

The q-error — ``max(est/actual, actual/est)``, both clamped to one row —
is the standard multiplicative metric for cardinality estimation quality
(1.0 is perfect).  The scalar metric lives in
:func:`repro.stats.errors.q_error`; this module adds the running
aggregate the store keeps per key, and a plan-tree helper the plan cache
uses to decide whether a cached plan misestimated badly enough to drop.
"""

from __future__ import annotations

from typing import Optional

from repro.stats.errors import q_error

__all__ = ["QErrorTracker", "plan_max_qerror", "q_error"]


class QErrorTracker:
    """Running max / mean q-error over a stream of (estimate, actual)."""

    __slots__ = ("count", "max_qerror", "_total")

    def __init__(self) -> None:
        self.count = 0
        self.max_qerror = 1.0
        self._total = 0.0

    def record(self, estimated: float, actual: float) -> float:
        """Fold one observation in; returns its q-error."""
        q = q_error(estimated, actual)
        self.count += 1
        self._total += q
        if q > self.max_qerror:
            self.max_qerror = q
        return q

    @property
    def mean_qerror(self) -> float:
        return self._total / self.count if self.count else 1.0

    def state_dict(self) -> dict:
        """JSON-safe full state (for durability checkpoints)."""
        return {
            "count": self.count,
            "max_qerror": self.max_qerror,
            "total": self._total,
        }

    def load_state(self, state: dict) -> None:
        self.count = state["count"]
        self.max_qerror = state["max_qerror"]
        self._total = state["total"]

    def summary(self) -> dict:
        return {
            "count": self.count,
            "max_qerror": round(self.max_qerror, 4),
            "mean_qerror": round(self.mean_qerror, 4),
        }

    def __repr__(self) -> str:
        return (
            f"QErrorTracker(count={self.count}, "
            f"max={self.max_qerror:.2f}, mean={self.mean_qerror:.2f})"
        )


def plan_max_qerror(root) -> Optional[float]:
    """Worst per-node q-error of an instrumented plan tree.

    Only nodes whose ``actual_rows`` was recorded (i.e. the operator ran
    to completion — a LIMIT-truncated subtree stays None) contribute.
    Returns None when no node was instrumented.
    """
    worst: Optional[float] = None
    stack = [root]
    while stack:
        node = stack.pop()
        actual = getattr(node, "actual_rows", None)
        if actual is not None:
            q = q_error(node.estimated_rows, actual)
            if worst is None or q > worst:
                worst = q
        stack.extend(node.children())
    return worst
