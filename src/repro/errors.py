"""Exception hierarchy for the ``repro`` engine.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  The hierarchy mirrors the layers of
the system: storage, SQL front end, catalog, constraints, optimizer, and
executor.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class StorageError(ReproError):
    """A problem in the storage layer (pages, heap tables, indexes)."""


class PageOverflowError(StorageError):
    """A row is too large to fit on a single page."""


class SchemaError(ReproError):
    """An invalid schema definition (duplicate columns, unknown types...)."""


class TypeMismatchError(SchemaError):
    """A value does not conform to its declared column type."""


class CatalogError(ReproError):
    """A catalog-level problem (duplicate table, unknown object...)."""


class DuplicateObjectError(CatalogError):
    """An object with the given name already exists in the catalog."""


class UnknownObjectError(CatalogError):
    """The named table / index / constraint does not exist."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class LexError(SqlError):
    """The SQL text could not be tokenized."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class ParseError(SqlError):
    """The token stream does not form a valid statement."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class BindError(SqlError):
    """A name in the query could not be resolved against the catalog."""


class ExpressionError(ReproError):
    """An expression could not be evaluated (bad operand types, etc.)."""


class ConstraintError(ReproError):
    """Base class for integrity-constraint problems."""


class ConstraintViolation(ConstraintError):
    """A *hard* integrity constraint was violated; the statement is rejected.

    Attributes
    ----------
    constraint_name:
        Name of the violated constraint, when known.
    """

    def __init__(self, message: str, constraint_name: str = "") -> None:
        super().__init__(message)
        self.constraint_name = constraint_name


class SoftConstraintError(ReproError):
    """Base class for problems specific to the soft-constraint facility."""


class SoftConstraintStateError(SoftConstraintError):
    """An operation is illegal for the soft constraint's lifecycle state."""


class OptimizerError(ReproError):
    """The optimizer could not produce a plan."""


class ExecutionError(ReproError):
    """A runtime failure while executing a physical plan."""


class StalePlanError(ExecutionError):
    """The plan relies on a soft constraint that has changed since compile.

    Models the paper's Section 4.1 conflict: a transaction holding a plan
    that used an ASC runs concurrently with one that overturned it.  The
    holder must re-issue with a freshly compiled plan (as the paper's
    behind-the-scenes re-issue does for deadlocks).
    """

    def __init__(self, message: str, stale_constraints: tuple = ()) -> None:
        super().__init__(message)
        self.stale_constraints = tuple(stale_constraints)


class TransactionError(ReproError):
    """Transaction misuse (commit twice, write outside a transaction...)."""
