"""Exception hierarchy for the ``repro`` engine.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  The hierarchy mirrors the layers of
the system: storage, SQL front end, catalog, constraints, optimizer, and
executor.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class StorageError(ReproError):
    """A problem in the storage layer (pages, heap tables, indexes)."""


class PageOverflowError(StorageError):
    """A row is too large to fit on a single page."""


class TransientIOError(StorageError):
    """A transient I/O failure (simulated).  Retried with backoff by the
    storage layer; surfaces only after the retry budget is exhausted."""


class PageCorruptionError(StorageError):
    """A page's checksum did not match its contents.

    Raised by :meth:`repro.engine.page.Page.verify` when a read detects
    bit-flip corruption (injected or real).  The storage layer treats the
    buffered copy as torn and re-reads; a persistent mismatch surfaces.
    """

    def __init__(self, message: str, page_id: int = -1) -> None:
        super().__init__(message)
        self.page_id = page_id


class IndexCorruptionError(StorageError):
    """An index's checksum did not match its entries, or the index is
    quarantined awaiting a rebuild from the heap.

    Attributes
    ----------
    index_name:
        The corrupted/quarantined index, when known.  Recover with
        :meth:`repro.engine.database.Database.rebuild_index`.
    """

    def __init__(self, message: str, index_name: str = "") -> None:
        super().__init__(message)
        self.index_name = index_name


class WALCorruptionError(StorageError):
    """A write-ahead-log record or checkpoint image failed its CRC.

    A *torn tail* — a truncated or CRC-mismatched final record, the
    signature of a crash mid-append — is crash-consistent and handled
    silently by recovery; this error marks corruption *before* the tail
    (or in a checkpoint body), which redo cannot repair.
    """


class RecoveryError(StorageError):
    """Crash recovery could not restore a consistent database state.

    Raised when WAL replay fails to re-apply a committed record, or when
    the post-replay integrity pass finds storage that neither matches
    its checksums nor can be rebuilt.
    """


class SchemaError(ReproError):
    """An invalid schema definition (duplicate columns, unknown types...)."""


class TypeMismatchError(SchemaError):
    """A value does not conform to its declared column type."""


class CatalogError(ReproError):
    """A catalog-level problem (duplicate table, unknown object...)."""


class DuplicateObjectError(CatalogError):
    """An object with the given name already exists in the catalog."""


class UnknownObjectError(CatalogError):
    """The named table / index / constraint does not exist."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class LexError(SqlError):
    """The SQL text could not be tokenized."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class ParseError(SqlError):
    """The token stream does not form a valid statement."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class BindError(SqlError):
    """A name in the query could not be resolved against the catalog."""


class ExpressionError(ReproError):
    """An expression could not be evaluated (bad operand types, etc.)."""


class ConstraintError(ReproError):
    """Base class for integrity-constraint problems."""


class ConstraintViolation(ConstraintError):
    """A *hard* integrity constraint was violated; the statement is rejected.

    Attributes
    ----------
    constraint_name:
        Name of the violated constraint, when known.
    """

    def __init__(self, message: str, constraint_name: str = "") -> None:
        super().__init__(message)
        self.constraint_name = constraint_name


class SoftConstraintError(ReproError):
    """Base class for problems specific to the soft-constraint facility."""


class SoftConstraintStateError(SoftConstraintError):
    """An operation is illegal for the soft constraint's lifecycle state."""


class OptimizerError(ReproError):
    """The optimizer could not produce a plan."""


class ExecutionError(ReproError):
    """A runtime failure while executing a physical plan."""


class StalePlanError(ExecutionError):
    """The plan relies on a soft constraint that has changed since compile.

    Models the paper's Section 4.1 conflict: a transaction holding a plan
    that used an ASC runs concurrently with one that overturned it.  The
    holder must re-issue with a freshly compiled plan (as the paper's
    behind-the-scenes re-issue does for deadlocks).
    """

    def __init__(self, message: str, stale_constraints: tuple = ()) -> None:
        super().__init__(message)
        self.stale_constraints = tuple(stale_constraints)


class QueryGuardError(ExecutionError):
    """Base class for resource-governance breaches (see
    :mod:`repro.resilience.guards`).

    Attributes
    ----------
    report:
        The guard's budget-consumption snapshot at trip time (dict), when
        the guard attached one.
    """

    report: dict = {}


class QueryTimeoutError(QueryGuardError):
    """The query's deadline elapsed before it finished."""


class BudgetExceededError(QueryGuardError):
    """A resource budget (rows materialized, page reads, join pairs) was
    exhausted mid-execution.

    Attributes
    ----------
    budget:
        Name of the exhausted budget (``"rows"``, ``"page_reads"``,
        ``"join_pairs"``).
    """

    def __init__(self, message: str, budget: str = "") -> None:
        super().__init__(message)
        self.budget = budget


class QueryCancelledError(QueryGuardError):
    """The query's :class:`~repro.resilience.guards.CancellationToken`
    was cancelled."""


class FeedbackError(ReproError):
    """Misconfiguration or misuse of the execution-feedback subsystem."""


class TransactionError(ReproError):
    """Transaction misuse (commit twice, write outside a transaction...)."""


class DeadlockError(TransactionError):
    """A lock wait would close a cycle in the waits-for graph.

    The requesting transaction is chosen as the victim: the lock manager
    raises before granting, the session layer rolls the victim back and
    releases its locks, and the caller may re-issue the statement — the
    paper's Section 4.1 "behind the scenes" deadlock resolution.

    Attributes
    ----------
    cycle:
        The transaction ids forming the detected cycle, victim first.
    """

    def __init__(self, message: str, cycle: tuple = ()) -> None:
        super().__init__(message)
        self.cycle = tuple(cycle)


class TransactionConflictError(TransactionError):
    """First-updater-wins: the row was changed by a transaction that
    committed after this snapshot was taken.

    Under snapshot isolation a writer that blocked on a row lock must
    re-check the row's newest stamp once granted; finding a committed
    writer its snapshot cannot see means proceeding would silently
    overwrite that update.  The statement aborts instead.
    """


class SessionError(ReproError):
    """Session misuse (statement on a closed session, nested BEGIN...)."""


class RemoteError(SessionError):
    """A server-side error arrived over the wire with a type this client
    cannot map back onto the taxonomy.

    :meth:`repro.concurrency.server.SessionClient._rehydrate` re-raises
    known :class:`ReproError` subclasses as themselves; anything else —
    an unknown name, a non-``ReproError``, a malformed error frame —
    rehydrates to this class so callers always catch ``ReproError``.

    Attributes
    ----------
    remote_type:
        The type name the server reported, verbatim.
    """

    def __init__(self, message: str, remote_type: str = "") -> None:
        super().__init__(message)
        self.remote_type = remote_type


class OverloadedError(SessionError):
    """The server shed this statement: its in-flight cap is full.

    Load shedding is graceful degradation, not failure — the statement
    was rejected *before* execution, so the client may safely retry
    after a backoff (see
    :class:`repro.concurrency.client.FailoverClient`).
    """


class ShutdownError(SessionError):
    """The server is draining for shutdown and rejected the statement.

    Raised instead of a reset socket so clients can distinguish an
    orderly shutdown (fail over to another endpoint) from a crash.
    Statements already in flight when the drain began still complete.
    """


class NetworkError(ReproError):
    """A network-level failure talking to a remote session server:
    connect/statement timeout, reset connection, or unexpected EOF.

    The request outcome is *unknown* — the statement may or may not have
    executed — so only idempotent work should be blindly retried.  The
    client closes the connection, since a response could still arrive
    for a request it has given up on.
    """


class ReplicaUnavailableError(NetworkError):
    """The replica (or its replication link) is down, severed, or closed.

    Raised by the in-process replication link when a partition or kill
    is simulated, and by the failover client when every endpoint in its
    list has been exhausted.
    """


class ReplicationError(ReproError):
    """Base class for WAL-shipping replication problems."""


class ReadOnlyReplicaError(ReplicationError):
    """A write (DML/DDL/transaction control) was routed to a replica.

    Replicas apply the primary's WAL verbatim; any local write would
    fork their state from the primary's committed prefix.  The router
    sends writes to the primary — hitting this error means a caller
    bypassed it.
    """


class FencedError(ReplicationError):
    """A write reached a node whose promotion epoch the cluster has
    moved past — a deposed primary trying to act like one.

    Fencing is what makes automatic failover split-brain-safe: the
    promotion coordinator bumps the cluster's promotion epoch before the
    new primary accepts its first write, and every durability point
    (transaction begin and commit) on a fenced node re-checks its own
    epoch against the cluster's.  A deposed primary that wakes up — or
    never died at all, just lost its lease to an asymmetric partition —
    therefore rejects **every** write with this error instead of
    diverging the cluster into two histories.  The node must rejoin as a
    replica (full resync from the new primary) to serve again.

    Attributes
    ----------
    epoch:
        The stale promotion epoch the write carried.
    cluster_epoch:
        The cluster's current promotion epoch at rejection time.
    """

    def __init__(
        self, message: str, epoch: int = -1, cluster_epoch: int = -1
    ) -> None:
        super().__init__(message)
        self.epoch = epoch
        self.cluster_epoch = cluster_epoch


class PromotionError(ReplicationError):
    """Automatic failover could not produce a writable primary.

    Raised by the promotion coordinator when no reachable, live replica
    exists to elect, when the elected replica fails to drain its
    buffered transaction tail through recovery replay, or when a
    promotion is requested while the current primary's lease is still
    live (promotion must never race a healthy primary).
    """


class ResyncRequiredError(ReplicationError):
    """The replica's shipping cursor no longer matches the primary's log.

    The signature of checkpoint-truncation (or recovery truncation)
    racing a lagging replica: the cursor points past the primary's
    durable end, or at bytes that no longer decode as a framed record.
    Incremental shipping must stop — continuing would apply a gapped or
    misaligned stream — and the shipper performs a full resync instead.
    """


class RollbackError(StorageError):
    """One or more undo entries failed while rolling a transaction back.

    Every remaining undo entry was still applied; ``failures`` carries
    the underlying exceptions in the order they occurred.
    """

    def __init__(self, message: str, failures: tuple = ()) -> None:
        super().__init__(message)
        self.failures = tuple(failures)
