"""The third expression lowering target: vectorized numpy kernels.

:func:`compile_vector` lowers an :class:`~repro.sql.ast.Expression` into
a kernel ``Callable[[ColumnarBatch], Vec]`` that evaluates the whole
column at once with numpy — comparisons, arithmetic, ``IN`` via
``np.isin``, ``LIKE`` over object arrays, and masked Kleene (3VL)
AND/OR — alongside the row and list-batch closures of
:mod:`repro.expr.compile`.

Parity contract
---------------

The interpreter in :mod:`repro.expr.eval` remains the semantic oracle.
A kernel **never approximates**: whenever full-width numpy evaluation
cannot reproduce the interpreter bit-for-bit — object-dtype columns,
type-mismatch errors, division by zero, int64 overflow risk, lossy
int64→float64 casts past ``2**53``, non-constant ``IN``/``LIKE``
operands, unknown functions — the kernel raises :class:`VectorFallback`
(at compile time when the shape is statically unsupported, at run time
when the data decides) and the caller re-evaluates the batch through the
compiled list closure, which raises the identical error at the
identical row.  Because kernels themselves never raise
``ExpressionError``, full-width evaluation of ``AND``/``OR`` operands is
safe: a side that *could* error on a row the other side's short-circuit
would have skipped always falls back instead, and the list closure's
selection-vector evaluation reproduces the skip exactly.

Like :mod:`repro.expr.compile`, kernels are shared through a
module-level cache keyed structurally by the expression node.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.executor.vecbatch import FLOAT_EXACT_INT, ColumnarBatch, Vec
from repro.expr.compile import compile_expr
from repro.expr.eval import _like_regex
from repro.sql import ast

VectorFn = Callable[[ColumnarBatch], Vec]

#: int arithmetic operands are bounded well inside int64 so that +, -,
#: and (pairwise-bounded) * can never wrap; anything bigger falls back.
_INT_SAFE = 2**62


class VectorFallback(Exception):
    """The vector kernel cannot reproduce interpreter semantics for this
    expression/batch; the caller must re-evaluate via the list closure."""


# ------------------------------------------------------------ kernel cache

_CACHE: Dict[ast.Expression, VectorFn] = {}
_STATS = {"hits": 0, "misses": 0}


def compile_vector(expression: ast.Expression) -> VectorFn:
    """Lower ``expression`` to a columnar kernel (cached structurally)."""
    try:
        cached = _CACHE.get(expression)
    except TypeError:  # unhashable custom node: compile without caching
        _STATS["misses"] += 1
        return _compile(expression)
    if cached is not None:
        _STATS["hits"] += 1
        return cached
    _STATS["misses"] += 1
    kernel = _compile(expression)
    _CACHE[expression] = kernel
    return kernel


def cache_stats() -> Tuple[int, int]:
    return _STATS["hits"], _STATS["misses"]


def clear_cache() -> None:
    _CACHE.clear()
    _STATS["hits"] = 0
    _STATS["misses"] = 0


# ------------------------------------------------------------- entry points


def filter_indices(
    kernel: VectorFn, batch: ColumnarBatch
) -> Optional[np.ndarray]:
    """Surviving row indices for a predicate kernel, or ``None`` when
    every row passes (so callers can keep the whole batch unsliced).

    Mirrors ``RowBatch.filter_true``: only a definite ``True`` keeps a
    row — NULLs drop, and (like the row pipeline) non-boolean predicate
    values drop silently rather than raising.
    """
    vector = kernel(batch)
    values = vector.values
    if values.dtype != np.bool_:
        if values.dtype.kind in ("i", "f"):
            # Numeric predicate: no value ``is True`` → no survivors.
            return np.empty(0, dtype=np.intp)
        raise VectorFallback("non-boolean predicate dtype")
    keep = values if vector.mask is None else values & ~vector.mask
    if keep.all():
        return None
    return np.flatnonzero(keep)


def vector_values(
    expression: ast.Expression, batch: ColumnarBatch
) -> List[Any]:
    """Kernel-evaluate ``expression`` and return plain Python values
    (``None`` at masked slots) — the tests' parity hook."""
    return compile_vector(expression)(batch).to_list()


# ----------------------------------------------------------------- helpers


def _static_fallback(reason: str) -> VectorFn:
    def kernel(batch: ColumnarBatch) -> Vec:
        raise VectorFallback(reason)

    return kernel


def _all_null(length: int) -> Vec:
    return Vec(np.zeros(length, dtype=bool), np.ones(length, dtype=bool))


def _fully_masked(vector: Vec) -> bool:
    return (
        vector.mask is not None
        and len(vector.mask) > 0
        and bool(vector.mask.all())
    )


def _union_mask(
    left: Optional[np.ndarray], right: Optional[np.ndarray]
) -> Optional[np.ndarray]:
    if left is None:
        return right
    if right is None:
        return left
    return left | right


def _broadcast(value: Any, length: int) -> Vec:
    """A constant as a full-width Vec; raises VectorFallback for values
    no kernel consumes (the list closure handles them)."""
    if value is None:
        return _all_null(length)
    if isinstance(value, bool):
        return Vec(np.full(length, value, dtype=bool))
    if isinstance(value, int):
        if abs(value) >= 2**63:
            raise VectorFallback("constant outside int64")
        return Vec(np.full(length, value, dtype=np.int64))
    if isinstance(value, float):
        return Vec(np.full(length, value, dtype=np.float64))
    if isinstance(value, str):
        array = np.empty(length, dtype=object)
        array[:] = value
        return Vec(array)
    raise VectorFallback(f"unsupported constant {value!r}")


def _int_bounds(values: np.ndarray) -> int:
    """max(|v|) of an int64 array as an exact Python int (0 if empty)."""
    if values.size == 0:
        return 0
    return max(abs(int(values.min())), abs(int(values.max())))


def _check_mixed_exact(left: Vec, right: Vec) -> None:
    """Mixing int64 with float64 promotes the ints through a lossy cast;
    only allow it when every int is exactly representable as a double."""
    lk, rk = left.values.dtype.kind, right.values.dtype.kind
    if lk == "i" and rk == "f" and _int_bounds(left.values) > FLOAT_EXACT_INT:
        raise VectorFallback("int64 column too wide for exact float compare")
    if rk == "i" and lk == "f" and _int_bounds(right.values) > FLOAT_EXACT_INT:
        raise VectorFallback("int64 column too wide for exact float compare")


def _require_numeric(left: Vec, right: Vec) -> None:
    if left.values.dtype.kind not in ("i", "f") or right.values.dtype.kind not in (
        "i",
        "f",
    ):
        raise VectorFallback("non-numeric operand dtype")
    _check_mixed_exact(left, right)


def _bool_flags(vector: Vec) -> Tuple[np.ndarray, np.ndarray]:
    """(definitely-True, definitely-False) flags of a boolean Vec."""
    if vector.mask is None:
        return vector.values, ~vector.values
    known = ~vector.mask
    return vector.values & known, ~vector.values & known


def _require_bool(vector: Vec) -> None:
    if vector.values.dtype != np.bool_:
        raise VectorFallback("non-boolean operand dtype")


# ------------------------------------------------------------ node kernels


def _compile(expression: ast.Expression) -> VectorFn:
    compiled = compile_expr(expression)
    if compiled.constant:
        value = compiled.value

        def constant_kernel(batch: ColumnarBatch) -> Vec:
            return _broadcast(value, batch.length)

        return constant_kernel
    handler = _DISPATCH.get(type(expression))
    if handler is None:
        return _static_fallback(
            f"no vector lowering for {type(expression).__name__}"
        )
    return handler(expression)


def _compile_column(node: ast.ColumnRef) -> VectorFn:
    if node.table is not None:
        qualified = f"{node.table}.{node.column}"
        bare = node.column

        def qualified_kernel(batch: ColumnarBatch) -> Vec:
            vector = batch.vec(qualified)
            if vector is None:
                vector = batch.vec(bare)
            if vector is None:
                raise VectorFallback(f"unknown column {qualified!r}")
            return vector

        return qualified_kernel
    bare = node.column
    suffix = f".{node.column}"

    def bare_kernel(batch: ColumnarBatch) -> Vec:
        vector = batch.vec(bare)
        if vector is not None:
            return vector
        matches = [name for name in batch.columns if name.endswith(suffix)]
        if len(matches) != 1:
            # Ambiguous / unknown: the list closure raises the exact error.
            raise VectorFallback(f"unresolvable column {bare!r}")
        return batch.vec(matches[0])

    return bare_kernel


def _compile_runtime_parameter(node: ast.RuntimeParameter) -> VectorFn:
    def parameter_kernel(batch: ColumnarBatch) -> Vec:
        # Read the live constraint value on every call: plans built on
        # runtime parameters must see value-changing repairs.
        return _broadcast(node.current_value(), batch.length)

    return parameter_kernel


def _compile_literal(node: ast.Literal) -> VectorFn:
    value = node.value

    def literal_kernel(batch: ColumnarBatch) -> Vec:
        return _broadcast(value, batch.length)

    return literal_kernel


_COMPARISON_UFUNCS = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def _comparison_kernel(
    left_fn: VectorFn, right_fn: VectorFn, ufunc: Any
) -> VectorFn:
    def kernel(batch: ColumnarBatch) -> Vec:
        left = left_fn(batch)
        right = right_fn(batch)
        if _fully_masked(left) or _fully_masked(right):
            return _all_null(batch.length)
        _require_numeric(left, right)
        return Vec(
            ufunc(left.values, right.values),
            _union_mask(left.mask, right.mask),
        )

    return kernel


def _arith_int(op: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        # SQL integer division truncates toward zero; numpy floors.
        quotient = np.floor_divide(a, b)
        remainder = a - quotient * b
        return quotient + ((remainder != 0) & ((a < 0) != (b < 0)))
    return np.mod(a, b)  # matches Python % sign-of-divisor for ints


def _arithmetic_kernel(
    op: str, left_fn: VectorFn, right_fn: VectorFn
) -> VectorFn:
    def kernel(batch: ColumnarBatch) -> Vec:
        left = left_fn(batch)
        right = right_fn(batch)
        if _fully_masked(left) or _fully_masked(right):
            return _all_null(batch.length)
        _require_numeric(left, right)
        mask = _union_mask(left.mask, right.mask)
        a, b = left.values, right.values
        both_int = a.dtype.kind == "i" and b.dtype.kind == "i"
        if both_int:
            bound_left = _int_bounds(a)
            bound_right = _int_bounds(b)
            if bound_left >= _INT_SAFE or bound_right >= _INT_SAFE:
                raise VectorFallback("int64 overflow risk")
            if op == "*" and bound_left * bound_right >= _INT_SAFE:
                raise VectorFallback("int64 overflow risk")
        elif op == "%":
            # Float modulo precision is not pinned to CPython's; fall back.
            raise VectorFallback("float modulo")
        if op in ("/", "%"):
            live = (b == 0) if mask is None else ((b == 0) & ~mask)
            if live.any():
                # The list closure raises "division by zero" at the row.
                raise VectorFallback("zero divisor")
            if mask is not None:
                # Masked filler zeros would still trip numpy warnings.
                b = np.where(mask, 1, b)
            if op == "/" and not both_int:
                return Vec(np.true_divide(a, b), mask)
        if both_int:
            return Vec(_arith_int(op, a, b), mask)
        if op == "+":
            return Vec(a + b, mask)
        if op == "-":
            return Vec(a - b, mask)
        if op == "*":
            return Vec(a * b, mask)
        return Vec(np.true_divide(a, b), mask)

    return kernel


def _kleene_and(left: Vec, right: Vec) -> Vec:
    left_true, left_false = _bool_flags(left)
    right_true, right_false = _bool_flags(right)
    false = left_false | right_false
    true = left_true & right_true
    unknown = ~(false | true)
    return Vec(true, unknown if unknown.any() else None)


def _kleene_or(left: Vec, right: Vec) -> Vec:
    left_true, left_false = _bool_flags(left)
    right_true, right_false = _bool_flags(right)
    true = left_true | right_true
    false = left_false & right_false
    unknown = ~(false | true)
    return Vec(true, unknown if unknown.any() else None)


def _logical_kernel(
    op: str, left_fn: VectorFn, right_fn: VectorFn
) -> VectorFn:
    combine = _kleene_and if op == "and" else _kleene_or

    def kernel(batch: ColumnarBatch) -> Vec:
        # Both sides full-width: legal because kernels never raise the
        # per-row errors short-circuiting would have skipped — a side
        # that could raise falls back, taking the whole expression with
        # it to the selection-vector list closure.
        left = left_fn(batch)
        right = right_fn(batch)
        _require_bool(left)
        _require_bool(right)
        return combine(left, right)

    return kernel


def _compile_binary(node: ast.BinaryOp) -> VectorFn:
    op = node.op
    if op in ("and", "or"):
        return _logical_kernel(
            op, compile_vector(node.left), compile_vector(node.right)
        )
    if op == "like":
        return _compile_like(node)
    left_fn = compile_vector(node.left)
    right_fn = compile_vector(node.right)
    ufunc = _COMPARISON_UFUNCS.get(op)
    if ufunc is not None:
        return _comparison_kernel(left_fn, right_fn, ufunc)
    if op in ("+", "-", "*", "/", "%"):
        return _arithmetic_kernel(op, left_fn, right_fn)
    return _static_fallback(f"unknown operator {op!r}")


def _compile_like(node: ast.BinaryOp) -> VectorFn:
    pattern_compiled = compile_expr(node.right)
    if not pattern_compiled.constant:
        return _static_fallback("non-constant LIKE pattern")
    pattern = pattern_compiled.value
    if pattern is not None and not isinstance(pattern, str):
        # Every non-NULL operand row raises; the list closure does that.
        return _static_fallback("non-string LIKE pattern")
    operand_fn = compile_vector(node.left)
    regex = None if pattern is None else _like_regex(pattern)

    def like_kernel(batch: ColumnarBatch) -> Vec:
        operand = operand_fn(batch)
        if regex is None or _fully_masked(operand):
            return _all_null(batch.length)
        if operand.values.dtype != object:
            # Numeric/bool operands raise "LIKE requires string operands"
            # per non-NULL row — list closure territory.
            raise VectorFallback("LIKE over non-string dtype")
        out = np.zeros(batch.length, dtype=bool)
        fullmatch = regex.fullmatch
        try:
            for i, text in enumerate(operand.values.tolist()):
                if text is None:
                    continue  # masked slot (object vecs keep None inline)
                out[i] = fullmatch(text) is not None
        except TypeError:
            raise VectorFallback("non-string LIKE operand value")
        return Vec(out, operand.mask)

    return like_kernel


def _compile_unary(node: ast.UnaryOp) -> VectorFn:
    operand_fn = compile_vector(node.operand)
    if node.op == "not":

        def not_kernel(batch: ColumnarBatch) -> Vec:
            operand = operand_fn(batch)
            _require_bool(operand)
            return Vec(~operand.values, operand.mask)

        return not_kernel

    def negate_kernel(batch: ColumnarBatch) -> Vec:
        operand = operand_fn(batch)
        if _fully_masked(operand):
            return _all_null(batch.length)
        if operand.values.dtype.kind not in ("i", "f"):
            raise VectorFallback("negating non-numeric dtype")
        if (
            operand.values.dtype.kind == "i"
            and _int_bounds(operand.values) >= _INT_SAFE
        ):
            raise VectorFallback("int64 overflow risk")
        return Vec(-operand.values, operand.mask)

    return negate_kernel


def _compile_between(node: ast.BetweenExpr) -> VectorFn:
    lower_fn = _comparison_kernel(
        compile_vector(node.operand),
        compile_vector(node.low),
        np.greater_equal,
    )
    upper_fn = _comparison_kernel(
        compile_vector(node.operand),
        compile_vector(node.high),
        np.less_equal,
    )
    negated = node.negated

    def between_kernel(batch: ColumnarBatch) -> Vec:
        verdict = _kleene_and(lower_fn(batch), upper_fn(batch))
        if negated:
            return Vec(~verdict.values, verdict.mask)
        return verdict

    return between_kernel


def _compile_in(node: ast.InExpr) -> VectorFn:
    members: List[Any] = []
    saw_null_constant = False
    for item in node.items:
        item_compiled = compile_expr(item)
        if not item_compiled.constant:
            return _static_fallback("non-constant IN list")
        if item_compiled.value is None:
            saw_null_constant = True
        else:
            members.append(item_compiled.value)
    member_types = set(map(type, members))
    if not member_types <= {int, float}:
        return _static_fallback("non-numeric IN list")
    if any(
        isinstance(member, int) and abs(member) > FLOAT_EXACT_INT
        for member in members
    ):
        return _static_fallback("IN member too wide for exact float compare")
    if member_types == {int}:
        member_array = np.asarray(members, dtype=np.int64)
    else:
        member_array = np.asarray(members, dtype=np.float64)
    operand_fn = compile_vector(node.operand)
    negated = node.negated

    def in_kernel(batch: ColumnarBatch) -> Vec:
        operand = operand_fn(batch)
        if _fully_masked(operand):
            return _all_null(batch.length)
        if operand.values.dtype.kind not in ("i", "f"):
            # String/mixed operands compare via _values_equal, which can
            # raise class-mismatch errors row by row: list closure.
            raise VectorFallback("non-numeric IN operand dtype")
        if (
            operand.values.dtype.kind == "i"
            and member_array.dtype.kind == "f"
            and _int_bounds(operand.values) > FLOAT_EXACT_INT
        ):
            raise VectorFallback("int64 column too wide for exact float compare")
        matched = np.isin(operand.values, member_array)
        out = matched != negated
        mask = operand.mask
        if saw_null_constant:
            # Unmatched rows compare against the NULL member → UNKNOWN.
            mask = ~matched if mask is None else (mask | ~matched)
            if not mask.any():
                mask = None
        return Vec(out, mask)

    return in_kernel


def _compile_is_null(node: ast.IsNullExpr) -> VectorFn:
    operand_fn = compile_vector(node.operand)
    negated = node.negated

    def is_null_kernel(batch: ColumnarBatch) -> Vec:
        operand = operand_fn(batch)
        if operand.mask is None:
            verdict = np.zeros(batch.length, dtype=bool)
        else:
            verdict = operand.mask.copy()
        if negated:
            verdict = ~verdict
        return Vec(verdict)

    return is_null_kernel


def _compile_function(node: ast.FunctionCall) -> VectorFn:
    return _static_fallback(f"no vector lowering for {node.name}()")


_DISPATCH: Dict[type, Callable[[Any], VectorFn]] = {
    ast.Literal: _compile_literal,
    ast.RuntimeParameter: _compile_runtime_parameter,
    ast.ColumnRef: _compile_column,
    ast.UnaryOp: _compile_unary,
    ast.BinaryOp: _compile_binary,
    ast.BetweenExpr: _compile_between,
    ast.InExpr: _compile_in,
    ast.IsNullExpr: _compile_is_null,
    ast.FunctionCall: _compile_function,
}
