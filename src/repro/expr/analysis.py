"""Static analysis of predicates.

Services used throughout the optimizer:

* splitting WHERE clauses into conjuncts and re-joining them;
* finding the columns / table bindings an expression mentions;
* recognizing *simple column predicates* (``col op constant``,
  ``col BETWEEN a AND b``, ``col IN (...)``) and converting them to
  :class:`~repro.expr.intervals.Interval` form;
* computing the admissible interval of a column under a conjunction —
  the core primitive behind union-all branch knockout and join-hole
  range trimming.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.expr.eval import evaluate
from repro.expr.intervals import Interval
from repro.errors import ExpressionError
from repro.sql import ast

_FLIP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
_COMPARISON_OPS = frozenset(["=", "<>", "<", "<=", ">", ">="])


def split_conjuncts(expression: Optional[ast.Expression]) -> List[ast.Expression]:
    """Flatten nested ANDs into a list of conjuncts (empty for None)."""
    if expression is None:
        return []
    if isinstance(expression, ast.BinaryOp) and expression.op == "and":
        return split_conjuncts(expression.left) + split_conjuncts(expression.right)
    return [expression]


def conjoin(conjuncts: Sequence[ast.Expression]) -> Optional[ast.Expression]:
    """AND a list of predicates back together (None for an empty list)."""
    result: Optional[ast.Expression] = None
    for conjunct in conjuncts:
        result = conjunct if result is None else ast.BinaryOp("and", result, conjunct)
    return result


def columns_in(expression: ast.Expression) -> Set[ast.ColumnRef]:
    """Every column reference occurring in the expression."""
    found: Set[ast.ColumnRef] = set()
    _walk_columns(expression, found)
    return found


def _walk_columns(node: ast.Expression, found: Set[ast.ColumnRef]) -> None:
    if isinstance(node, ast.ColumnRef):
        found.add(node)
    elif isinstance(node, ast.UnaryOp):
        _walk_columns(node.operand, found)
    elif isinstance(node, ast.BinaryOp):
        _walk_columns(node.left, found)
        _walk_columns(node.right, found)
    elif isinstance(node, ast.BetweenExpr):
        _walk_columns(node.operand, found)
        _walk_columns(node.low, found)
        _walk_columns(node.high, found)
    elif isinstance(node, ast.InExpr):
        _walk_columns(node.operand, found)
        for item in node.items:
            _walk_columns(item, found)
    elif isinstance(node, ast.IsNullExpr):
        _walk_columns(node.operand, found)
    elif isinstance(node, ast.FunctionCall):
        for arg in node.args:
            _walk_columns(arg, found)


def tables_in(expression: ast.Expression) -> Set[str]:
    """The table qualifiers mentioned (unqualified refs contribute nothing)."""
    return {
        ref.table for ref in columns_in(expression) if ref.table is not None
    }


def is_constant(expression: ast.Expression) -> bool:
    """True when the expression mentions no columns (and no aggregates)."""
    if _contains_aggregate(expression):
        return False
    return not columns_in(expression)


def _contains_aggregate(node: ast.Expression) -> bool:
    if isinstance(node, ast.FunctionCall):
        if node.is_aggregate:
            return True
        return any(_contains_aggregate(arg) for arg in node.args)
    if isinstance(node, ast.UnaryOp):
        return _contains_aggregate(node.operand)
    if isinstance(node, ast.BinaryOp):
        return _contains_aggregate(node.left) or _contains_aggregate(node.right)
    if isinstance(node, ast.BetweenExpr):
        return any(
            _contains_aggregate(part)
            for part in (node.operand, node.low, node.high)
        )
    if isinstance(node, ast.InExpr):
        return _contains_aggregate(node.operand) or any(
            _contains_aggregate(item) for item in node.items
        )
    if isinstance(node, ast.IsNullExpr):
        return _contains_aggregate(node.operand)
    return False


def contains_aggregate(expression: ast.Expression) -> bool:
    """Public wrapper: does the expression contain an aggregate call?"""
    return _contains_aggregate(expression)


def constant_value(expression: ast.Expression) -> Any:
    """Evaluate a constant expression (raises if it references columns)."""
    if not is_constant(expression):
        raise ExpressionError(f"expression is not constant: {expression!r}")
    return evaluate(expression, {})


class ColumnComparison:
    """A recognized ``column op constant`` predicate."""

    __slots__ = ("column", "op", "value")

    def __init__(self, column: ast.ColumnRef, op: str, value: Any) -> None:
        self.column = column
        self.op = op
        self.value = value

    def __repr__(self) -> str:
        return f"ColumnComparison({self.column.qualified} {self.op} {self.value!r})"


def match_column_comparison(
    expression: ast.Expression,
) -> Optional[ColumnComparison]:
    """Recognize ``col op const`` / ``const op col`` (op flipped for you)."""
    if not isinstance(expression, ast.BinaryOp):
        return None
    if expression.op not in _COMPARISON_OPS:
        return None
    left, right = expression.left, expression.right
    if isinstance(left, ast.ColumnRef) and is_constant(right):
        return ColumnComparison(left, expression.op, constant_value(right))
    if isinstance(right, ast.ColumnRef) and is_constant(left):
        return ColumnComparison(
            right, _FLIP[expression.op], constant_value(left)
        )
    return None


def match_expression_comparison(
    expression: ast.Expression,
) -> Optional[Tuple[ast.Expression, str, Any]]:
    """Recognize ``<expr> op const`` for an arbitrary non-constant LHS.

    The generalization of :func:`match_column_comparison` used for
    virtual-column statistics: the left side may be any scalar expression
    (e.g. ``end_date - start_date``).
    """
    if not isinstance(expression, ast.BinaryOp):
        return None
    if expression.op not in _COMPARISON_OPS:
        return None
    left, right = expression.left, expression.right
    if not is_constant(left) and is_constant(right):
        return left, expression.op, constant_value(right)
    if not is_constant(right) and is_constant(left):
        return right, _FLIP[expression.op], constant_value(left)
    return None


def strip_qualifiers(expression: ast.Expression) -> ast.Expression:
    """The expression with every column reference unqualified.

    Used to compare a query conjunct (bound to table bindings) against a
    catalog-stored expression written over bare column names.
    """
    mapping = {
        reference.qualified: ast.ColumnRef(reference.column)
        for reference in columns_in(expression)
        if reference.table is not None
    }
    if not mapping:
        return expression
    return substitute_columns(expression, mapping)


def match_column_between(
    expression: ast.Expression,
) -> Optional[Tuple[ast.ColumnRef, Any, Any]]:
    """Recognize ``col BETWEEN const AND const`` (non-negated)."""
    if not isinstance(expression, ast.BetweenExpr) or expression.negated:
        return None
    if not isinstance(expression.operand, ast.ColumnRef):
        return None
    if not (is_constant(expression.low) and is_constant(expression.high)):
        return None
    return (
        expression.operand,
        constant_value(expression.low),
        constant_value(expression.high),
    )


def match_column_in(
    expression: ast.Expression,
) -> Optional[Tuple[ast.ColumnRef, List[Any]]]:
    """Recognize ``col IN (const, ...)`` (non-negated)."""
    if not isinstance(expression, ast.InExpr) or expression.negated:
        return None
    if not isinstance(expression.operand, ast.ColumnRef):
        return None
    if not all(is_constant(item) for item in expression.items):
        return None
    return expression.operand, [constant_value(item) for item in expression.items]


def match_equijoin(
    expression: ast.Expression,
) -> Optional[Tuple[ast.ColumnRef, ast.ColumnRef]]:
    """Recognize ``t1.a = t2.b`` between two different table bindings."""
    if not isinstance(expression, ast.BinaryOp) or expression.op != "=":
        return None
    left, right = expression.left, expression.right
    if not (isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef)):
        return None
    if left.table is None or right.table is None or left.table == right.table:
        return None
    return left, right


def interval_of_predicate(
    expression: ast.Expression, column: ast.ColumnRef
) -> Optional[Interval]:
    """The interval a single predicate admits for ``column``.

    Returns None when the predicate does not constrain the column to an
    interval (e.g. it mentions other columns, is a disjunction, or is an
    inequality ``<>``).
    """
    comparison = match_column_comparison(expression)
    if comparison is not None and _same_column(comparison.column, column):
        op, value = comparison.op, comparison.value
        if op == "=":
            return Interval.point(value)
        if op == "<":
            return Interval.at_most(value, inclusive=False)
        if op == "<=":
            return Interval.at_most(value)
        if op == ">":
            return Interval.at_least(value, inclusive=False)
        if op == ">=":
            return Interval.at_least(value)
        return None  # <> constrains almost nothing
    between = match_column_between(expression)
    if between is not None and _same_column(between[0], column):
        return Interval(between[1], between[2])
    in_list = match_column_in(expression)
    if in_list is not None and _same_column(in_list[0], column):
        values = [v for v in in_list[1] if v is not None]
        if not values:
            return Interval.empty()
        return Interval(min(values), max(values))
    return None


def column_interval(
    conjuncts: Sequence[ast.Expression], column: ast.ColumnRef
) -> Interval:
    """The interval admitted for ``column`` under a conjunction.

    Conjuncts not recognized as constraining the column are ignored, so the
    result is an *upper bound* of the true admissible set — exactly what a
    sound branch-knockout / range-trimming rewrite needs (never drops rows
    that could qualify).
    """
    result = Interval.unbounded()
    for top in conjuncts:
        # Flatten nested ANDs so composite conjuncts (e.g. a rewritten
        # half-open range) still contribute their parts.
        for conjunct in split_conjuncts(top):
            interval = interval_of_predicate(conjunct, column)
            if interval is not None:
                result = result.intersect(interval)
    return result


def _same_column(left: ast.ColumnRef, right: ast.ColumnRef) -> bool:
    """Column identity, tolerant of missing qualifiers on either side."""
    if left.column != right.column:
        return False
    if left.table is None or right.table is None:
        return True
    return left.table == right.table


def same_column(left: ast.ColumnRef, right: ast.ColumnRef) -> bool:
    """Public wrapper for qualifier-tolerant column identity."""
    return _same_column(left, right)


def substitute_columns(
    expression: ast.Expression, mapping: Dict[str, ast.Expression]
) -> ast.Expression:
    """Replace column references by expressions.

    ``mapping`` keys are bare column names (and/or ``table.column`` forms);
    qualified references try their qualified key first.  Used to rebase a
    constraint's expression onto a query's alias and to translate AST
    definitions into query scope.
    """
    if isinstance(expression, ast.ColumnRef):
        if expression.table is not None:
            qualified = f"{expression.table}.{expression.column}"
            if qualified in mapping:
                return mapping[qualified]
        if expression.column in mapping:
            return mapping[expression.column]
        return expression
    if isinstance(expression, (ast.Literal, ast.RuntimeParameter)):
        return expression
    if isinstance(expression, ast.UnaryOp):
        return ast.UnaryOp(
            expression.op, substitute_columns(expression.operand, mapping)
        )
    if isinstance(expression, ast.BinaryOp):
        return ast.BinaryOp(
            expression.op,
            substitute_columns(expression.left, mapping),
            substitute_columns(expression.right, mapping),
        )
    if isinstance(expression, ast.BetweenExpr):
        return ast.BetweenExpr(
            substitute_columns(expression.operand, mapping),
            substitute_columns(expression.low, mapping),
            substitute_columns(expression.high, mapping),
            negated=expression.negated,
        )
    if isinstance(expression, ast.InExpr):
        return ast.InExpr(
            substitute_columns(expression.operand, mapping),
            tuple(substitute_columns(item, mapping) for item in expression.items),
            negated=expression.negated,
        )
    if isinstance(expression, ast.IsNullExpr):
        return ast.IsNullExpr(
            substitute_columns(expression.operand, mapping),
            negated=expression.negated,
        )
    if isinstance(expression, ast.FunctionCall):
        return ast.FunctionCall(
            expression.name,
            tuple(substitute_columns(arg, mapping) for arg in expression.args),
            distinct=expression.distinct,
            star=expression.star,
        )
    raise ExpressionError(f"cannot substitute in {type(expression).__name__}")
