"""Expression services: evaluation (SQL three-valued logic), predicate
analysis (conjuncts, column ranges), interval arithmetic, and
normalization.  These are shared by constraint checking, the rewrite
engine, the cardinality estimator, and the executor.
"""

from repro.expr.eval import compile_predicate, evaluate
from repro.expr.analysis import (
    columns_in,
    conjoin,
    split_conjuncts,
    tables_in,
)
from repro.expr.intervals import Interval

__all__ = [
    "Interval",
    "columns_in",
    "compile_predicate",
    "conjoin",
    "evaluate",
    "split_conjuncts",
    "tables_in",
]
