"""Expression evaluation with SQL three-valued logic.

:func:`evaluate` computes the value of a scalar or boolean expression over a
row presented as a ``{name: value}`` dict.  Column references resolve as
follows: a qualified reference ``t.a`` looks up the key ``"t.a"``; a bare
reference ``a`` looks up ``"a"``.  The executor materializes rows with both
forms of key (bare names only where unambiguous), so expressions written
either way evaluate correctly.

Boolean results use Kleene logic: ``None`` means SQL UNKNOWN.  Aggregate
function calls cannot be evaluated here (they are handled by the group-by
operator) and raise :class:`~repro.errors.ExpressionError`.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, Optional

from repro.errors import ExpressionError
from repro.sql import ast

RowDict = Dict[str, Any]


def evaluate(expression: ast.Expression, row: RowDict) -> Any:
    """Evaluate ``expression`` against ``row``; None encodes SQL NULL."""
    handler = _DISPATCH.get(type(expression))
    if handler is None:
        raise ExpressionError(
            f"cannot evaluate {type(expression).__name__}"
        )
    return handler(expression, row)


def compile_predicate(
    expression: ast.Expression,
) -> Callable[[RowDict], Optional[bool]]:
    """Wrap an expression as a reusable row predicate.

    The result returns ``True`` / ``False`` / ``None`` (UNKNOWN).  Used to
    compile CHECK constraints and soft-constraint statements.
    """

    def predicate(row: RowDict) -> Optional[bool]:
        return _as_bool(evaluate(expression, row))

    return predicate


def _as_bool(value: Any) -> Optional[bool]:
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    raise ExpressionError(f"expected a boolean, got {value!r}")


# ----------------------------------------------------------- node handlers


def _eval_literal(node: ast.Literal, row: RowDict) -> Any:
    return node.value


def _eval_column(node: ast.ColumnRef, row: RowDict) -> Any:
    if node.table is not None:
        key = f"{node.table}.{node.column}"
        if key in row:
            return row[key]
        if node.column in row:
            return row[node.column]
        raise ExpressionError(f"unknown column {key!r}")
    if node.column in row:
        return row[node.column]
    # Fall back: a unique qualified match.
    suffix = f".{node.column}"
    matches = [key for key in row if key.endswith(suffix)]
    if len(matches) == 1:
        return row[matches[0]]
    if len(matches) > 1:
        raise ExpressionError(f"ambiguous column {node.column!r}")
    raise ExpressionError(f"unknown column {node.column!r}")


def _eval_unary(node: ast.UnaryOp, row: RowDict) -> Any:
    value = evaluate(node.operand, row)
    if node.op == "not":
        truth = _as_bool(value)
        return None if truth is None else not truth
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ExpressionError(f"cannot negate {value!r}")
    return -value


def _eval_binary(node: ast.BinaryOp, row: RowDict) -> Any:
    op = node.op
    if op == "and":
        left = _as_bool(evaluate(node.left, row))
        if left is False:
            return False
        right = _as_bool(evaluate(node.right, row))
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True
    if op == "or":
        left = _as_bool(evaluate(node.left, row))
        if left is True:
            return True
        right = _as_bool(evaluate(node.right, row))
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False

    left = evaluate(node.left, row)
    right = evaluate(node.right, row)
    if left is None or right is None:
        return None
    if op == "like":
        return _like(left, right)
    if op in _COMPARATORS:
        _require_comparable(left, right)
        return _COMPARATORS[op](left, right)
    if op in _ARITHMETIC:
        _require_number(left)
        _require_number(right)
        if op in ("/", "%") and right == 0:
            raise ExpressionError("division by zero")
        result = _ARITHMETIC[op](left, right)
        return result
    raise ExpressionError(f"unknown operator {op!r}")


def _eval_between(node: ast.BetweenExpr, row: RowDict) -> Optional[bool]:
    value = evaluate(node.operand, row)
    low = evaluate(node.low, row)
    high = evaluate(node.high, row)
    if value is None:
        return None
    lower_ok = None if low is None else _compare_ge(value, low)
    upper_ok = None if high is None else _compare_le(value, high)
    # Kleene AND of the two bound checks.
    if lower_ok is False or upper_ok is False:
        verdict: Optional[bool] = False
    elif lower_ok is None or upper_ok is None:
        verdict = None
    else:
        verdict = True
    if node.negated and verdict is not None:
        return not verdict
    return verdict


def _eval_in(node: ast.InExpr, row: RowDict) -> Optional[bool]:
    value = evaluate(node.operand, row)
    if value is None:
        return None
    saw_null = False
    for item in node.items:
        candidate = evaluate(item, row)
        if candidate is None:
            saw_null = True
        elif _values_equal(value, candidate):
            return not node.negated
    if saw_null:
        return None
    return node.negated


def _eval_is_null(node: ast.IsNullExpr, row: RowDict) -> bool:
    value = evaluate(node.operand, row)
    is_null = value is None
    return not is_null if node.negated else is_null


_SCALAR_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "abs": abs,
}


def _eval_function(node: ast.FunctionCall, row: RowDict) -> Any:
    if node.is_aggregate:
        raise ExpressionError(
            f"aggregate {node.name.upper()} outside GROUP BY context"
        )
    function = _SCALAR_FUNCTIONS.get(node.name)
    if function is None:
        raise ExpressionError(f"unknown function {node.name!r}")
    args = [evaluate(arg, row) for arg in node.args]
    if any(arg is None for arg in args):
        return None
    return function(*args)


# ------------------------------------------------------------------ helpers


def _values_equal(left: Any, right: Any) -> bool:
    _require_comparable(left, right)
    return left == right


def _require_number(value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExpressionError(f"expected a number, got {value!r}")


def _require_comparable(left: Any, right: Any) -> None:
    numeric = lambda v: isinstance(v, (int, float)) and not isinstance(v, bool)
    if numeric(left) and numeric(right):
        return
    if type(left) is type(right):
        return
    raise ExpressionError(
        f"cannot compare {left!r} ({type(left).__name__}) with "
        f"{right!r} ({type(right).__name__})"
    )


def _compare_ge(left: Any, right: Any) -> bool:
    _require_comparable(left, right)
    return left >= right


def _compare_le(left: Any, right: Any) -> bool:
    _require_comparable(left, right)
    return left <= right


def _like(value: Any, pattern: Any) -> bool:
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise ExpressionError("LIKE requires string operands")
    regex = _like_regex(pattern)
    return regex.fullmatch(value) is not None


_LIKE_CACHE: Dict[str, "re.Pattern"] = {}


def _like_regex(pattern: str) -> "re.Pattern":
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        parts = []
        for ch in pattern:
            if ch == "%":
                parts.append(".*")
            elif ch == "_":
                parts.append(".")
            else:
                parts.append(re.escape(ch))
        compiled = re.compile("".join(parts), re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled


_COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITHMETIC: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if isinstance(a, float) or isinstance(b, float) else _int_div(a, b),
    "%": lambda a, b: a % b,
}


def _int_div(a: int, b: int) -> int:
    """SQL integer division truncates toward zero."""
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return quotient


def _eval_runtime_parameter(node: ast.RuntimeParameter, row: RowDict) -> Any:
    return node.current_value()


_DISPATCH = {
    ast.Literal: _eval_literal,
    ast.RuntimeParameter: _eval_runtime_parameter,
    ast.ColumnRef: _eval_column,
    ast.UnaryOp: _eval_unary,
    ast.BinaryOp: _eval_binary,
    ast.BetweenExpr: _eval_between,
    ast.InExpr: _eval_in,
    ast.IsNullExpr: _eval_is_null,
    ast.FunctionCall: _eval_function,
}
