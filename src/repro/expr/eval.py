"""Expression evaluation with SQL three-valued logic.

:func:`evaluate` computes the value of a scalar or boolean expression over a
row presented as a ``{name: value}`` dict.  Column references resolve as
follows: a qualified reference ``t.a`` looks up the key ``"t.a"``; a bare
reference ``a`` looks up ``"a"``.  The executor materializes rows with both
forms of key (bare names only where unambiguous), so expressions written
either way evaluate correctly.

Boolean results use Kleene logic: ``None`` means SQL UNKNOWN.  Aggregate
function calls cannot be evaluated here (they are handled by the group-by
operator) and raise :class:`~repro.errors.ExpressionError`.

:func:`evaluate_batch` is the vectorized twin: it computes a full column
of results over a :class:`~repro.executor.batch.RowBatch` in one call, so
the per-row cost is a tight inner loop instead of a recursive dispatch.
AND/OR use selection vectors so the short-circuited side is only evaluated
for the rows the row-at-a-time path would have reached — the two paths
raise (or don't raise) on exactly the same rows.
"""

from __future__ import annotations

import operator as _operator
import re
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ExpressionError
from repro.sql import ast

RowDict = Dict[str, Any]


def evaluate(expression: ast.Expression, row: RowDict) -> Any:
    """Evaluate ``expression`` against ``row``; None encodes SQL NULL."""
    handler = _DISPATCH.get(type(expression))
    if handler is None:
        raise ExpressionError(
            f"cannot evaluate {type(expression).__name__}"
        )
    return handler(expression, row)


def compile_predicate(
    expression: ast.Expression,
) -> Callable[[RowDict], Optional[bool]]:
    """Wrap an expression as a reusable row predicate.

    The result returns ``True`` / ``False`` / ``None`` (UNKNOWN).  Used to
    compile CHECK constraints and soft-constraint statements.
    """

    def predicate(row: RowDict) -> Optional[bool]:
        return _as_bool(evaluate(expression, row))

    return predicate


def _as_bool(value: Any) -> Optional[bool]:
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    raise ExpressionError(f"expected a boolean, got {value!r}")


# ----------------------------------------------------------- node handlers


def _eval_literal(node: ast.Literal, row: RowDict) -> Any:
    return node.value


def _eval_column(node: ast.ColumnRef, row: RowDict) -> Any:
    if node.table is not None:
        key = f"{node.table}.{node.column}"
        if key in row:
            return row[key]
        if node.column in row:
            return row[node.column]
        raise ExpressionError(f"unknown column {key!r}")
    if node.column in row:
        return row[node.column]
    # Fall back: a unique qualified match.
    suffix = f".{node.column}"
    matches = [key for key in row if key.endswith(suffix)]
    if len(matches) == 1:
        return row[matches[0]]
    if len(matches) > 1:
        raise ExpressionError(f"ambiguous column {node.column!r}")
    raise ExpressionError(f"unknown column {node.column!r}")


def _eval_unary(node: ast.UnaryOp, row: RowDict) -> Any:
    value = evaluate(node.operand, row)
    if node.op == "not":
        truth = _as_bool(value)
        return None if truth is None else not truth
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ExpressionError(f"cannot negate {value!r}")
    return -value


def _eval_binary(node: ast.BinaryOp, row: RowDict) -> Any:
    op = node.op
    if op == "and":
        left = _as_bool(evaluate(node.left, row))
        if left is False:
            return False
        right = _as_bool(evaluate(node.right, row))
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True
    if op == "or":
        left = _as_bool(evaluate(node.left, row))
        if left is True:
            return True
        right = _as_bool(evaluate(node.right, row))
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False

    left = evaluate(node.left, row)
    right = evaluate(node.right, row)
    if left is None or right is None:
        return None
    if op == "like":
        return _like(left, right)
    if op in _COMPARATORS:
        _require_comparable(left, right)
        return _COMPARATORS[op](left, right)
    if op in _ARITHMETIC:
        _require_number(left)
        _require_number(right)
        if op in ("/", "%") and right == 0:
            raise ExpressionError("division by zero")
        result = _ARITHMETIC[op](left, right)
        return result
    raise ExpressionError(f"unknown operator {op!r}")


def _eval_between(node: ast.BetweenExpr, row: RowDict) -> Optional[bool]:
    value = evaluate(node.operand, row)
    low = evaluate(node.low, row)
    high = evaluate(node.high, row)
    if value is None:
        return None
    lower_ok = None if low is None else _compare_ge(value, low)
    upper_ok = None if high is None else _compare_le(value, high)
    # Kleene AND of the two bound checks.
    if lower_ok is False or upper_ok is False:
        verdict: Optional[bool] = False
    elif lower_ok is None or upper_ok is None:
        verdict = None
    else:
        verdict = True
    if node.negated and verdict is not None:
        return not verdict
    return verdict


def _eval_in(node: ast.InExpr, row: RowDict) -> Optional[bool]:
    value = evaluate(node.operand, row)
    if value is None:
        return None
    saw_null = False
    for item in node.items:
        candidate = evaluate(item, row)
        if candidate is None:
            saw_null = True
        elif _values_equal(value, candidate):
            return not node.negated
    if saw_null:
        return None
    return node.negated


def _eval_is_null(node: ast.IsNullExpr, row: RowDict) -> bool:
    value = evaluate(node.operand, row)
    is_null = value is None
    return not is_null if node.negated else is_null


_SCALAR_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "abs": abs,
}


def _eval_function(node: ast.FunctionCall, row: RowDict) -> Any:
    if node.is_aggregate:
        raise ExpressionError(
            f"aggregate {node.name.upper()} outside GROUP BY context"
        )
    function = _SCALAR_FUNCTIONS.get(node.name)
    if function is None:
        raise ExpressionError(f"unknown function {node.name!r}")
    args = [evaluate(arg, row) for arg in node.args]
    if any(arg is None for arg in args):
        return None
    return function(*args)


# ------------------------------------------------------------------ helpers


def _values_equal(left: Any, right: Any) -> bool:
    _require_comparable(left, right)
    return left == right


def _require_number(value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExpressionError(f"expected a number, got {value!r}")


def _require_comparable(left: Any, right: Any) -> None:
    numeric = lambda v: isinstance(v, (int, float)) and not isinstance(v, bool)
    if numeric(left) and numeric(right):
        return
    if type(left) is type(right):
        return
    raise ExpressionError(
        f"cannot compare {left!r} ({type(left).__name__}) with "
        f"{right!r} ({type(right).__name__})"
    )


def _compare_ge(left: Any, right: Any) -> bool:
    _require_comparable(left, right)
    return left >= right


def _compare_le(left: Any, right: Any) -> bool:
    _require_comparable(left, right)
    return left <= right


def _like(value: Any, pattern: Any) -> bool:
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise ExpressionError("LIKE requires string operands")
    regex = _like_regex(pattern)
    return regex.fullmatch(value) is not None


_LIKE_CACHE: Dict[str, "re.Pattern"] = {}


def _like_regex(pattern: str) -> "re.Pattern":
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        parts = []
        for ch in pattern:
            if ch == "%":
                parts.append(".*")
            elif ch == "_":
                parts.append(".")
            else:
                parts.append(re.escape(ch))
        compiled = re.compile("".join(parts), re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled


_COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": _operator.eq,
    "<>": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}

_ARITHMETIC: Dict[str, Callable[[Any, Any], Any]] = {
    "+": _operator.add,
    "-": _operator.sub,
    "*": _operator.mul,
    "/": lambda a, b: a / b if isinstance(a, float) or isinstance(b, float) else _int_div(a, b),
    "%": _operator.mod,
}


def _int_div(a: int, b: int) -> int:
    """SQL integer division truncates toward zero."""
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return quotient


def _eval_runtime_parameter(node: ast.RuntimeParameter, row: RowDict) -> Any:
    return node.current_value()


_DISPATCH = {
    ast.Literal: _eval_literal,
    ast.RuntimeParameter: _eval_runtime_parameter,
    ast.ColumnRef: _eval_column,
    ast.UnaryOp: _eval_unary,
    ast.BinaryOp: _eval_binary,
    ast.BetweenExpr: _eval_between,
    ast.InExpr: _eval_in,
    ast.IsNullExpr: _eval_is_null,
    ast.FunctionCall: _eval_function,
}


# ------------------------------------------------------- batch evaluation
#
# The batch argument is a repro.executor.batch.RowBatch, duck-typed here
# (``columns``, ``data``, ``take``, ``__len__``) to keep this module free
# of executor imports.


def evaluate_batch(expression: ast.Expression, batch: Any) -> List[Any]:
    """Evaluate ``expression`` over every row of ``batch`` at once.

    Returns one value per row, in row order, with exactly the semantics
    (including which rows raise) of calling :func:`evaluate` per row.
    """
    handler = _BATCH_DISPATCH.get(type(expression))
    if handler is None:
        raise ExpressionError(
            f"cannot evaluate {type(expression).__name__}"
        )
    return handler(expression, batch)


def _batch_literal(node: ast.Literal, batch: Any) -> List[Any]:
    return [node.value] * len(batch)


def _batch_runtime_parameter(node: ast.RuntimeParameter, batch: Any) -> List[Any]:
    return [node.current_value()] * len(batch)


def _batch_column(node: ast.ColumnRef, batch: Any) -> List[Any]:
    data = batch.data
    if node.table is not None:
        key = f"{node.table}.{node.column}"
        column = data.get(key)
        if column is not None:
            return column
        column = data.get(node.column)
        if column is not None:
            return column
        raise ExpressionError(f"unknown column {key!r}")
    column = data.get(node.column)
    if column is not None:
        return column
    # Fall back: a unique qualified match (mirrors the row-dict lookup).
    suffix = f".{node.column}"
    matches = [key for key in batch.columns if key.endswith(suffix)]
    if len(matches) == 1:
        return data[matches[0]]
    if len(matches) > 1:
        raise ExpressionError(f"ambiguous column {node.column!r}")
    raise ExpressionError(f"unknown column {node.column!r}")


def _batch_unary(node: ast.UnaryOp, batch: Any) -> List[Any]:
    values = evaluate_batch(node.operand, batch)
    out: List[Any] = []
    append = out.append
    if node.op == "not":
        for value in values:
            truth = _as_bool(value)
            append(None if truth is None else not truth)
        return out
    for value in values:
        if value is None:
            append(None)
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExpressionError(f"cannot negate {value!r}")
        append(-value)
    return out


def _batch_and(node: ast.BinaryOp, batch: Any) -> List[Optional[bool]]:
    lefts = [_as_bool(value) for value in evaluate_batch(node.left, batch)]
    out: List[Optional[bool]] = [False] * len(lefts)
    # Selection vector: rows a row-at-a-time AND would evaluate the right
    # side for (everything except a definite False on the left).
    need = [i for i, value in enumerate(lefts) if value is not False]
    if not need:
        return out
    sub = batch if len(need) == len(lefts) else batch.take(need)
    rights = evaluate_batch(node.right, sub)
    for position, i in enumerate(need):
        right = _as_bool(rights[position])
        if right is False:
            continue  # already False
        out[i] = None if (lefts[i] is None or right is None) else True
    return out


def _batch_or(node: ast.BinaryOp, batch: Any) -> List[Optional[bool]]:
    lefts = [_as_bool(value) for value in evaluate_batch(node.left, batch)]
    out: List[Optional[bool]] = [True] * len(lefts)
    need = [i for i, value in enumerate(lefts) if value is not True]
    if not need:
        return out
    sub = batch if len(need) == len(lefts) else batch.take(need)
    rights = evaluate_batch(node.right, sub)
    for position, i in enumerate(need):
        right = _as_bool(rights[position])
        if right is True:
            continue  # already True
        out[i] = None if (lefts[i] is None or right is None) else False
    return out


def _batch_binary(node: ast.BinaryOp, batch: Any) -> List[Any]:
    op = node.op
    if op == "and":
        return _batch_and(node, batch)
    if op == "or":
        return _batch_or(node, batch)
    lefts = evaluate_batch(node.left, batch)
    rights = evaluate_batch(node.right, batch)
    out: List[Any] = []
    append = out.append
    if op == "like":
        for left, right in zip(lefts, rights):
            append(None if left is None or right is None else _like(left, right))
        return out
    comparator = _COMPARATORS.get(op)
    if comparator is not None:
        for left, right in zip(lefts, rights):
            if left is None or right is None:
                append(None)
            elif type(left) is type(right):
                append(comparator(left, right))
            else:
                _require_comparable(left, right)
                append(comparator(left, right))
        return out
    arithmetic = _ARITHMETIC.get(op)
    if arithmetic is not None:
        guard_zero = op in ("/", "%")
        for left, right in zip(lefts, rights):
            if left is None or right is None:
                append(None)
                continue
            _require_number(left)
            _require_number(right)
            if guard_zero and right == 0:
                raise ExpressionError("division by zero")
            append(arithmetic(left, right))
        return out
    raise ExpressionError(f"unknown operator {op!r}")


def _batch_between(node: ast.BetweenExpr, batch: Any) -> List[Optional[bool]]:
    values = evaluate_batch(node.operand, batch)
    lows = evaluate_batch(node.low, batch)
    highs = evaluate_batch(node.high, batch)
    negated = node.negated
    out: List[Optional[bool]] = []
    append = out.append
    for value, low, high in zip(values, lows, highs):
        if value is None:
            append(None)
            continue
        lower_ok = None if low is None else _compare_ge(value, low)
        upper_ok = None if high is None else _compare_le(value, high)
        if lower_ok is False or upper_ok is False:
            verdict: Optional[bool] = False
        elif lower_ok is None or upper_ok is None:
            verdict = None
        else:
            verdict = True
        if negated and verdict is not None:
            verdict = not verdict
        append(verdict)
    return out


def _batch_in(node: ast.InExpr, batch: Any) -> List[Optional[bool]]:
    values = evaluate_batch(node.operand, batch)
    item_columns = [evaluate_batch(item, batch) for item in node.items]
    negated = node.negated
    out: List[Optional[bool]] = []
    append = out.append
    for i, value in enumerate(values):
        if value is None:
            append(None)
            continue
        saw_null = False
        verdict: Optional[bool] = negated
        for column in item_columns:
            candidate = column[i]
            if candidate is None:
                saw_null = True
            elif _values_equal(value, candidate):
                verdict = not negated
                break
        else:
            if saw_null:
                verdict = None
        append(verdict)
    return out


def _batch_is_null(node: ast.IsNullExpr, batch: Any) -> List[bool]:
    values = evaluate_batch(node.operand, batch)
    if node.negated:
        return [value is not None for value in values]
    return [value is None for value in values]


def _batch_function(node: ast.FunctionCall, batch: Any) -> List[Any]:
    if node.is_aggregate:
        raise ExpressionError(
            f"aggregate {node.name.upper()} outside GROUP BY context"
        )
    function = _SCALAR_FUNCTIONS.get(node.name)
    if function is None:
        raise ExpressionError(f"unknown function {node.name!r}")
    arg_columns = [evaluate_batch(arg, batch) for arg in node.args]
    out: List[Any] = []
    append = out.append
    for args in zip(*arg_columns) if arg_columns else ((),) * len(batch):
        if any(arg is None for arg in args):
            append(None)
        else:
            append(function(*args))
    return out


_BATCH_DISPATCH = {
    ast.Literal: _batch_literal,
    ast.RuntimeParameter: _batch_runtime_parameter,
    ast.ColumnRef: _batch_column,
    ast.UnaryOp: _batch_unary,
    ast.BinaryOp: _batch_binary,
    ast.BetweenExpr: _batch_between,
    ast.InExpr: _batch_in,
    ast.IsNullExpr: _batch_is_null,
    ast.FunctionCall: _batch_function,
}
