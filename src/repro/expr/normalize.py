"""Predicate normalization.

The rewrite engine and estimator prefer predicates in a small normal form:

* ``NOT`` pushed down to the leaves (De Morgan), with negatable leaf
  predicates absorbed (``NOT a = b`` becomes ``a <> b``);
* double negation removed;
* constant sub-expressions folded;
* optionally, ``BETWEEN`` expanded into its pair of range conjuncts.

Normalization is purely syntactic and preserves SQL three-valued-logic
semantics exactly.
"""

from __future__ import annotations

from typing import Optional

from repro.expr.analysis import is_constant, constant_value
from repro.sql import ast

_NEGATED_COMPARISON = {
    "=": "<>",
    "<>": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


def normalize(
    expression: Optional[ast.Expression], expand_between: bool = False
) -> Optional[ast.Expression]:
    """Normalize a predicate (None passes through)."""
    if expression is None:
        return None
    node = _push_not(expression, negate=False)
    node = _fold_constants(node)
    if expand_between:
        node = _expand_between(node)
    return node


def _push_not(node: ast.Expression, negate: bool) -> ast.Expression:
    if isinstance(node, ast.UnaryOp) and node.op == "not":
        return _push_not(node.operand, not negate)
    if isinstance(node, ast.BinaryOp):
        if node.op == "and":
            op = "or" if negate else "and"
            return ast.BinaryOp(
                op, _push_not(node.left, negate), _push_not(node.right, negate)
            )
        if node.op == "or":
            op = "and" if negate else "or"
            return ast.BinaryOp(
                op, _push_not(node.left, negate), _push_not(node.right, negate)
            )
        if negate and node.op in _NEGATED_COMPARISON:
            return ast.BinaryOp(
                _NEGATED_COMPARISON[node.op], node.left, node.right
            )
        return ast.UnaryOp("not", node) if negate else node
    if isinstance(node, ast.BetweenExpr):
        if negate:
            return ast.BetweenExpr(
                node.operand, node.low, node.high, negated=not node.negated
            )
        return node
    if isinstance(node, ast.InExpr):
        if negate:
            return ast.InExpr(node.operand, node.items, negated=not node.negated)
        return node
    if isinstance(node, ast.IsNullExpr):
        if negate:
            return ast.IsNullExpr(node.operand, negated=not node.negated)
        return node
    return ast.UnaryOp("not", node) if negate else node


def _fold_constants(node: ast.Expression) -> ast.Expression:
    if isinstance(node, (ast.Literal, ast.ColumnRef)):
        return node
    if isinstance(node, ast.UnaryOp):
        operand = _fold_constants(node.operand)
        folded = ast.UnaryOp(node.op, operand)
        return _try_fold(folded)
    if isinstance(node, ast.BinaryOp):
        left = _fold_constants(node.left)
        right = _fold_constants(node.right)
        folded = ast.BinaryOp(node.op, left, right)
        if node.op in ("and", "or"):
            return _simplify_logic(folded)
        return _try_fold(folded)
    if isinstance(node, ast.BetweenExpr):
        return ast.BetweenExpr(
            _fold_constants(node.operand),
            _fold_constants(node.low),
            _fold_constants(node.high),
            negated=node.negated,
        )
    if isinstance(node, ast.InExpr):
        return ast.InExpr(
            _fold_constants(node.operand),
            tuple(_fold_constants(item) for item in node.items),
            negated=node.negated,
        )
    if isinstance(node, ast.IsNullExpr):
        return ast.IsNullExpr(_fold_constants(node.operand), negated=node.negated)
    if isinstance(node, ast.FunctionCall):
        return ast.FunctionCall(
            node.name,
            tuple(_fold_constants(arg) for arg in node.args),
            distinct=node.distinct,
            star=node.star,
        )
    return node


def _try_fold(node: ast.Expression) -> ast.Expression:
    """Fold a column-free arithmetic/comparison node into a Literal."""
    if is_constant(node):
        try:
            return ast.Literal(constant_value(node))
        except Exception:  # noqa: BLE001 - e.g. division by zero stays symbolic
            return node
    return node


def _simplify_logic(node: ast.BinaryOp) -> ast.Expression:
    """Shorten AND/OR with boolean literal operands (3VL-safe identities).

    Only identities that hold under three-valued logic are applied:
    ``TRUE AND x = x``, ``FALSE AND x = FALSE``, ``TRUE OR x = TRUE``,
    ``FALSE OR x = x``.  NULL operands are left alone.
    """
    left, right = node.left, node.right
    left_bool = left.value if isinstance(left, ast.Literal) and isinstance(left.value, bool) else None
    right_bool = right.value if isinstance(right, ast.Literal) and isinstance(right.value, bool) else None
    if node.op == "and":
        if left_bool is True:
            return right
        if right_bool is True:
            return left
        if left_bool is False or right_bool is False:
            return ast.Literal(False)
    else:  # or
        if left_bool is False:
            return right
        if right_bool is False:
            return left
        if left_bool is True or right_bool is True:
            return ast.Literal(True)
    return node


def _expand_between(node: ast.Expression) -> ast.Expression:
    if isinstance(node, ast.BetweenExpr) and not node.negated:
        return ast.BinaryOp(
            "and",
            ast.BinaryOp(">=", node.operand, node.low),
            ast.BinaryOp("<=", node.operand, node.high),
        )
    if isinstance(node, ast.BinaryOp) and node.op in ("and", "or"):
        return ast.BinaryOp(
            node.op, _expand_between(node.left), _expand_between(node.right)
        )
    if isinstance(node, ast.UnaryOp):
        return ast.UnaryOp(node.op, _expand_between(node.operand))
    return node
