"""Closed/open interval arithmetic over ordered SQL values.

Intervals describe the value range a predicate admits for one column.  The
rewrite engine uses them to knock out union-all branches (paper Section 5),
to trim ranges against join holes (Section 2, [8]), and the cardinality
estimator uses them to measure predicate ranges against histograms.

``None`` bounds mean unbounded.  An interval is *empty* when its bounds
cross (or meet with an open end).
"""

from __future__ import annotations

from typing import Any, Optional


class Interval:
    """A (possibly unbounded, possibly empty) interval of ordered values."""

    __slots__ = ("low", "high", "low_inclusive", "high_inclusive")

    def __init__(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> None:
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive if low is not None else True
        self.high_inclusive = high_inclusive if high is not None else True

    # -- constructors -------------------------------------------------------

    @classmethod
    def unbounded(cls) -> "Interval":
        return cls()

    @classmethod
    def point(cls, value: Any) -> "Interval":
        return cls(value, value)

    @classmethod
    def at_least(cls, low: Any, inclusive: bool = True) -> "Interval":
        return cls(low=low, low_inclusive=inclusive)

    @classmethod
    def at_most(cls, high: Any, inclusive: bool = True) -> "Interval":
        return cls(high=high, high_inclusive=inclusive)

    @classmethod
    def empty(cls) -> "Interval":
        interval = cls(low=1, high=0)
        return interval

    # -- predicates ------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        if self.low is None or self.high is None:
            return False
        if self.low > self.high:
            return True
        if self.low == self.high:
            return not (self.low_inclusive and self.high_inclusive)
        return False

    @property
    def is_unbounded(self) -> bool:
        return self.low is None and self.high is None

    @property
    def is_point(self) -> bool:
        return (
            self.low is not None
            and self.low == self.high
            and self.low_inclusive
            and self.high_inclusive
        )

    def contains(self, value: Any) -> bool:
        """Whether a non-NULL value falls inside the interval."""
        if value is None:
            return False
        if self.low is not None:
            if value < self.low:
                return False
            if value == self.low and not self.low_inclusive:
                return False
        if self.high is not None:
            if value > self.high:
                return False
            if value == self.high and not self.high_inclusive:
                return False
        return True

    def contains_interval(self, other: "Interval") -> bool:
        """Whether ``other`` lies entirely within this interval."""
        if other.is_empty:
            return True
        if self.low is not None:
            if other.low is None:
                return False
            if other.low < self.low:
                return False
            if (
                other.low == self.low
                and other.low_inclusive
                and not self.low_inclusive
            ):
                return False
        if self.high is not None:
            if other.high is None:
                return False
            if other.high > self.high:
                return False
            if (
                other.high == self.high
                and other.high_inclusive
                and not self.high_inclusive
            ):
                return False
        return True

    # -- combination ------------------------------------------------------------

    def intersect(self, other: "Interval") -> "Interval":
        """The intersection of two intervals."""
        low, low_inclusive = self.low, self.low_inclusive
        if other.low is not None:
            if low is None or other.low > low:
                low, low_inclusive = other.low, other.low_inclusive
            elif other.low == low:
                low_inclusive = low_inclusive and other.low_inclusive
        high, high_inclusive = self.high, self.high_inclusive
        if other.high is not None:
            if high is None or other.high < high:
                high, high_inclusive = other.high, other.high_inclusive
            elif other.high == high:
                high_inclusive = high_inclusive and other.high_inclusive
        return Interval(low, high, low_inclusive, high_inclusive)

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one value."""
        return not self.intersect(other).is_empty

    def width(self) -> Optional[float]:
        """Numeric width (high - low); None when unbounded or non-numeric."""
        if self.low is None or self.high is None:
            return None
        if self.is_empty:
            return 0.0
        try:
            return float(self.high) - float(self.low)
        except (TypeError, ValueError):
            return None

    # -- identity -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        if self.is_empty and other.is_empty:
            return True
        return (
            self.low == other.low
            and self.high == other.high
            and self.low_inclusive == other.low_inclusive
            and self.high_inclusive == other.high_inclusive
        )

    def __hash__(self) -> int:
        if self.is_empty:
            return hash("empty-interval")
        return hash(
            (self.low, self.high, self.low_inclusive, self.high_inclusive)
        )

    def __repr__(self) -> str:
        if self.is_empty:
            return "Interval(empty)"
        left = "[" if self.low_inclusive else "("
        right = "]" if self.high_inclusive else ")"
        low = "-inf" if self.low is None else repr(self.low)
        high = "+inf" if self.high is None else repr(self.high)
        return f"Interval{left}{low}, {high}{right}"
