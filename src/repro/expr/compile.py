"""Plan-time expression compilation to specialized closures.

:func:`compile_row` and :func:`compile_batch` lower an
:class:`~repro.sql.ast.Expression` *once* into a plain Python closure —
``Callable[[RowDict], Any]`` and ``Callable[[RowBatch], List[Any]]``
respectively — so that repeated executions of a cached plan pay no
per-evaluation AST dispatch.  Work that the interpreter in
:mod:`repro.expr.eval` redoes on every row (or batch) is hoisted to
compile time:

* operator callables, column key strings and LIKE regexes are resolved
  and bound as closure locals;
* ``IN`` lists of same-class constants become frozen membership sets;
* comparisons/arithmetic against a constant skip the per-row operand
  materialization the batch interpreter pays for literal columns;
* constant subexpressions are folded (with SQL three-valued logic: the
  fold *evaluates* the subtree, so short-circuit AND/OR semantics and
  Kleene NULL propagation are preserved exactly), and a constant
  subtree that would raise at evaluation time compiles to a closure
  raising the identical :class:`~repro.errors.ExpressionError` at call
  time — never at plan time.

Semantics are pinned to the interpreter: for every expression and every
row/batch, the compiled closure returns the same value — or raises the
same error, at the same call — as :func:`~repro.expr.eval.evaluate` /
:func:`~repro.expr.eval.evaluate_batch`.  The differential suites in
``tests/executor/test_batched_differential.py`` and the unit oracle in
``tests/expr/test_compile.py`` hold the two paths together.

Compiled closures are shared through a module-level cache keyed by the
expression node itself (expression dataclasses hash structurally;
:class:`~repro.sql.ast.RuntimeParameter` compares by identity, so plans
parameterized on different soft constraints never alias).  Identical
predicates across plans — the common case under
:class:`~repro.optimizer.planner.PlanCache` recompiles — therefore reuse
one closure; :func:`cache_stats` exposes the hit/miss counters EXPLAIN
reports.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ExpressionError
from repro.expr.eval import (  # noqa: F401 - shared semantics helpers
    _ARITHMETIC,
    _COMPARATORS,
    _SCALAR_FUNCTIONS,
    _compare_ge,
    _compare_le,
    _like,
    _like_regex,
    _require_comparable,
    _require_number,
    _values_equal,
    RowDict,
    evaluate,
    evaluate_batch,
)
from repro.sql import ast

RowFn = Callable[[RowDict], Any]
BatchFn = Callable[[Any], List[Any]]


class CompiledExpr:
    """A lowered expression: one row closure, one batch closure.

    ``constant`` marks closures produced by constant folding; ``value``
    is only meaningful when ``constant`` is true.
    """

    __slots__ = ("expression", "row", "batch", "constant", "value")

    def __init__(
        self,
        expression: ast.Expression,
        row: RowFn,
        batch: BatchFn,
        constant: bool = False,
        value: Any = None,
    ) -> None:
        self.expression = expression
        self.row = row
        self.batch = batch
        self.constant = constant
        self.value = value

    def __repr__(self) -> str:
        kind = f"const {self.value!r}" if self.constant else "closure"
        return f"CompiledExpr({type(self.expression).__name__}, {kind})"


# ------------------------------------------------------------ compile cache

_CACHE: Dict[ast.Expression, CompiledExpr] = {}
_STATS = {"hits": 0, "misses": 0}


def compile_expr(expression: ast.Expression) -> CompiledExpr:
    """Compile through the shared cache (structural expression keying)."""
    try:
        cached = _CACHE.get(expression)
    except TypeError:  # unhashable custom node: compile without caching
        _STATS["misses"] += 1
        return _compile(expression)
    if cached is not None:
        _STATS["hits"] += 1
        return cached
    _STATS["misses"] += 1
    compiled = _compile(expression)
    _CACHE[expression] = compiled
    return compiled


def compile_row(expression: ast.Expression) -> RowFn:
    """Lower ``expression`` to a ``row -> value`` closure (cached)."""
    return compile_expr(expression).row


def compile_batch(expression: ast.Expression) -> BatchFn:
    """Lower ``expression`` to a ``batch -> [value]`` closure (cached)."""
    return compile_expr(expression).batch


def cache_stats() -> Tuple[int, int]:
    """``(hits, misses)`` of the process-wide compile cache."""
    return _STATS["hits"], _STATS["misses"]


def clear_cache() -> None:
    """Drop every cached closure and reset the counters (tests/benchmarks)."""
    _CACHE.clear()
    _STATS["hits"] = 0
    _STATS["misses"] = 0


# --------------------------------------------------------- constant folding


def _is_constant(expression: ast.Expression) -> bool:
    """True when the subtree evaluates row-independently and repeatably.

    ``ColumnRef`` and ``RuntimeParameter`` (whose value tracks the live
    soft constraint) are never constant; neither are aggregate or unknown
    function calls, whose interpreter behaviour is an eval-time raise.
    """
    t = type(expression)
    if t is ast.Literal:
        return True
    if t is ast.UnaryOp:
        return _is_constant(expression.operand)
    if t is ast.BinaryOp:
        return _is_constant(expression.left) and _is_constant(expression.right)
    if t is ast.BetweenExpr:
        return (
            _is_constant(expression.operand)
            and _is_constant(expression.low)
            and _is_constant(expression.high)
        )
    if t is ast.InExpr:
        return _is_constant(expression.operand) and all(
            _is_constant(item) for item in expression.items
        )
    if t is ast.IsNullExpr:
        return _is_constant(expression.operand)
    if t is ast.FunctionCall:
        return (
            not expression.is_aggregate
            and expression.name in _SCALAR_FUNCTIONS
            and all(_is_constant(arg) for arg in expression.args)
        )
    return False


def _constant(expression: ast.Expression, value: Any) -> CompiledExpr:
    def row_fn(row: RowDict, _v: Any = value) -> Any:
        return _v

    def batch_fn(batch: Any, _v: Any = value) -> List[Any]:
        return [_v] * len(batch)

    return CompiledExpr(expression, row_fn, batch_fn, constant=True, value=value)


def _raising(expression: ast.Expression, message: str) -> CompiledExpr:
    """A constant subtree whose evaluation raises.

    The row form raises on every call (as the interpreter would per row);
    the batch form mirrors the interpreter's per-row loops, which never
    reach the raise over an empty batch.
    """

    def row_fn(row: RowDict, _m: str = message) -> Any:
        raise ExpressionError(_m)

    def batch_fn(batch: Any, _m: str = message) -> List[Any]:
        if len(batch) == 0:
            return []
        raise ExpressionError(_m)

    return CompiledExpr(expression, row_fn, batch_fn)


def _try_fold(expression: ast.Expression) -> Optional[CompiledExpr]:
    try:
        value = evaluate(expression, {})
    except ExpressionError as error:
        return _raising(expression, str(error))
    except Exception:  # noqa: BLE001 - e.g. arity TypeError: keep eval-time
        return None
    return _constant(expression, value)


# ------------------------------------------------------------- node lowering


def _compile(expression: ast.Expression) -> CompiledExpr:
    if _is_constant(expression):
        folded = _try_fold(expression)
        if folded is not None:
            return folded
    compiler = _COMPILERS.get(type(expression))
    if compiler is None:
        # Unknown node type: defer to the interpreter so semantics (the
        # "cannot evaluate" eval-time raise included) stay identical.
        return CompiledExpr(
            expression,
            lambda row, _e=expression: evaluate(_e, row),
            lambda batch, _e=expression: evaluate_batch(_e, batch),
        )
    return compiler(expression)


def _compile_literal(node: ast.Literal) -> CompiledExpr:
    return _constant(node, node.value)


def _compile_runtime_parameter(node: ast.RuntimeParameter) -> CompiledExpr:
    current = node.current_value

    def row_fn(row: RowDict) -> Any:
        return current()

    def batch_fn(batch: Any) -> List[Any]:
        # One read per batch, as in the interpreter's batch form.
        return [current()] * len(batch)

    return CompiledExpr(node, row_fn, batch_fn)


def _compile_column(node: ast.ColumnRef) -> CompiledExpr:
    bare = node.column
    if node.table is not None:
        key = f"{node.table}.{bare}"

        def row_fn(row: RowDict) -> Any:
            if key in row:
                return row[key]
            if bare in row:
                return row[bare]
            raise ExpressionError(f"unknown column {key!r}")

        def batch_fn(batch: Any) -> List[Any]:
            data = batch.data
            column = data.get(key)
            if column is not None:
                return column
            column = data.get(bare)
            if column is not None:
                return column
            raise ExpressionError(f"unknown column {key!r}")

        return CompiledExpr(node, row_fn, batch_fn)

    suffix = f".{bare}"

    def row_fn(row: RowDict) -> Any:
        if bare in row:
            return row[bare]
        matches = [k for k in row if k.endswith(suffix)]
        if len(matches) == 1:
            return row[matches[0]]
        if len(matches) > 1:
            raise ExpressionError(f"ambiguous column {bare!r}")
        raise ExpressionError(f"unknown column {bare!r}")

    def batch_fn(batch: Any) -> List[Any]:
        column = batch.data.get(bare)
        if column is not None:
            return column
        matches = [k for k in batch.columns if k.endswith(suffix)]
        if len(matches) == 1:
            return batch.data[matches[0]]
        if len(matches) > 1:
            raise ExpressionError(f"ambiguous column {bare!r}")
        raise ExpressionError(f"unknown column {bare!r}")

    return CompiledExpr(node, row_fn, batch_fn)


def _bool_error(value: Any) -> ExpressionError:
    return ExpressionError(f"expected a boolean, got {value!r}")


def _compile_unary(node: ast.UnaryOp) -> CompiledExpr:
    child = compile_expr(node.operand)
    child_row, child_batch = child.row, child.batch
    if node.op == "not":

        def row_fn(row: RowDict) -> Any:
            value = child_row(row)
            if value is True:
                return False
            if value is False:
                return True
            if value is None:
                return None
            raise _bool_error(value)

        def batch_fn(batch: Any) -> List[Any]:
            out: List[Any] = []
            append = out.append
            for value in child_batch(batch):
                if value is True:
                    append(False)
                elif value is False:
                    append(True)
                elif value is None:
                    append(None)
                else:
                    raise _bool_error(value)
            return out

        return CompiledExpr(node, row_fn, batch_fn)

    def row_fn(row: RowDict) -> Any:
        value = child_row(row)
        if value is None:
            return None
        if type(value) is int or type(value) is float:
            return -value
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExpressionError(f"cannot negate {value!r}")
        return -value

    def batch_fn(batch: Any) -> List[Any]:
        out: List[Any] = []
        append = out.append
        for value in child_batch(batch):
            if value is None:
                append(None)
            elif type(value) is int or type(value) is float:
                append(-value)
            elif not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ExpressionError(f"cannot negate {value!r}")
            else:
                append(-value)
        return out

    return CompiledExpr(node, row_fn, batch_fn)


def _compile_and(node: ast.BinaryOp) -> CompiledExpr:
    left = compile_expr(node.left)
    right = compile_expr(node.right)
    left_row, right_row = left.row, right.row
    left_batch, right_batch = left.batch, right.batch

    def row_fn(row: RowDict) -> Any:
        lv = left_row(row)
        if lv is False:
            return False
        if lv is not True and lv is not None:
            raise _bool_error(lv)
        rv = right_row(row)
        if rv is False:
            return False
        if rv is not True and rv is not None:
            raise _bool_error(rv)
        if lv is None or rv is None:
            return None
        return True

    def batch_fn(batch: Any) -> List[Any]:
        lefts: List[Any] = []
        append_left = lefts.append
        for value in left_batch(batch):
            if value is True or value is False or value is None:
                append_left(value)
            else:
                raise _bool_error(value)
        out: List[Any] = [False] * len(lefts)
        # Selection vector: the rows a row-at-a-time AND would evaluate
        # the right side for (everything but a definite False).
        need = [i for i, value in enumerate(lefts) if value is not False]
        if not need:
            return out
        sub = batch if len(need) == len(lefts) else batch.take(need)
        rights = right_batch(sub)
        for position, i in enumerate(need):
            rv = rights[position]
            if rv is False:
                continue
            if rv is not True and rv is not None:
                raise _bool_error(rv)
            out[i] = None if (lefts[i] is None or rv is None) else True
        return out

    return CompiledExpr(node, row_fn, batch_fn)


def _compile_or(node: ast.BinaryOp) -> CompiledExpr:
    left = compile_expr(node.left)
    right = compile_expr(node.right)
    left_row, right_row = left.row, right.row
    left_batch, right_batch = left.batch, right.batch

    def row_fn(row: RowDict) -> Any:
        lv = left_row(row)
        if lv is True:
            return True
        if lv is not False and lv is not None:
            raise _bool_error(lv)
        rv = right_row(row)
        if rv is True:
            return True
        if rv is not False and rv is not None:
            raise _bool_error(rv)
        if lv is None or rv is None:
            return None
        return False

    def batch_fn(batch: Any) -> List[Any]:
        lefts: List[Any] = []
        append_left = lefts.append
        for value in left_batch(batch):
            if value is True or value is False or value is None:
                append_left(value)
            else:
                raise _bool_error(value)
        out: List[Any] = [True] * len(lefts)
        need = [i for i, value in enumerate(lefts) if value is not True]
        if not need:
            return out
        sub = batch if len(need) == len(lefts) else batch.take(need)
        rights = right_batch(sub)
        for position, i in enumerate(need):
            rv = rights[position]
            if rv is True:
                continue
            if rv is not False and rv is not None:
                raise _bool_error(rv)
            out[i] = None if (lefts[i] is None or rv is None) else False
        return out

    return CompiledExpr(node, row_fn, batch_fn)


def _class_check(constant: Any) -> Optional[Callable[[Any], bool]]:
    """A fast exact-class test for values comparable with ``constant``.

    Values failing the test are routed through
    :func:`~repro.expr.eval._require_comparable`, which raises exactly
    where the interpreter would (and passes for exotic-but-comparable
    values like int subclasses, which then take the slow path).
    """
    if isinstance(constant, bool):
        return lambda v: type(v) is bool
    if isinstance(constant, (int, float)):
        return lambda v: type(v) is int or type(v) is float
    cls = type(constant)
    return lambda v: type(v) is cls


def _compile_comparison(node: ast.BinaryOp) -> CompiledExpr:
    op = _COMPARATORS[node.op]
    left = compile_expr(node.left)
    right = compile_expr(node.right)
    left_row, right_row = left.row, right.row
    left_batch, right_batch = left.batch, right.batch

    if right.constant and not left.constant:
        constant = right.value
        if constant is None:
            # NULL comparand: the left side is still evaluated (it may
            # raise), then the comparison is UNKNOWN.
            def row_fn(row: RowDict) -> Any:
                left_row(row)
                return None

            def batch_fn(batch: Any) -> List[Any]:
                return [None] * len(left_batch(batch))

            return CompiledExpr(node, row_fn, batch_fn)

        check = _class_check(constant)
        if isinstance(constant, (int, float)) and not isinstance(
            constant, bool
        ):
            # The hot numeric case, inlined as a comprehension.
            def batch_fn(batch: Any) -> List[Any]:
                return [
                    None
                    if v is None
                    else op(v, constant)
                    if type(v) is int or type(v) is float
                    else _compare_slow(v, constant, op)
                    for v in left_batch(batch)
                ]

        else:

            def batch_fn(batch: Any) -> List[Any]:
                return [
                    None
                    if v is None
                    else op(v, constant)
                    if check(v)
                    else _compare_slow(v, constant, op)
                    for v in left_batch(batch)
                ]

        def row_fn(row: RowDict) -> Any:
            v = left_row(row)
            if v is None:
                return None
            if check(v):
                return op(v, constant)
            return _compare_slow(v, constant, op)

        return CompiledExpr(node, row_fn, batch_fn)

    def row_fn(row: RowDict) -> Any:
        lv = left_row(row)
        rv = right_row(row)
        if lv is None or rv is None:
            return None
        if type(lv) is type(rv):
            return op(lv, rv)
        return _compare_slow(lv, rv, op)

    def batch_fn(batch: Any) -> List[Any]:
        lefts = left_batch(batch)
        rights = right_batch(batch)
        out: List[Any] = []
        append = out.append
        for lv, rv in zip(lefts, rights):
            if lv is None or rv is None:
                append(None)
            elif type(lv) is type(rv):
                append(op(lv, rv))
            else:
                append(_compare_slow(lv, rv, op))
        return out

    return CompiledExpr(node, row_fn, batch_fn)


def _compare_slow(left: Any, right: Any, op: Callable[[Any, Any], Any]) -> Any:
    _require_comparable(left, right)
    return op(left, right)


def _compile_arithmetic(node: ast.BinaryOp) -> CompiledExpr:
    op = _ARITHMETIC[node.op]
    guard_zero = node.op in ("/", "%")
    left = compile_expr(node.left)
    right = compile_expr(node.right)
    left_row, right_row = left.row, right.row
    left_batch, right_batch = left.batch, right.batch

    if (
        right.constant
        and not left.constant
        and isinstance(right.value, (int, float))
        and not isinstance(right.value, bool)
        and not (guard_zero and right.value == 0)
    ):
        constant = right.value

        def row_fn(row: RowDict) -> Any:
            v = left_row(row)
            if v is None:
                return None
            if type(v) is int or type(v) is float:
                return op(v, constant)
            _require_number(v)
            return op(v, constant)

        def batch_fn(batch: Any) -> List[Any]:
            return [
                None
                if v is None
                else op(v, constant)
                if type(v) is int or type(v) is float
                else _arith_slow(v, constant, op)
                for v in left_batch(batch)
            ]

        return CompiledExpr(node, row_fn, batch_fn)

    def row_fn(row: RowDict) -> Any:
        lv = left_row(row)
        rv = right_row(row)
        if lv is None or rv is None:
            return None
        if not (
            (type(lv) is int or type(lv) is float)
            and (type(rv) is int or type(rv) is float)
        ):
            _require_number(lv)
            _require_number(rv)
        if guard_zero and rv == 0:
            raise ExpressionError("division by zero")
        return op(lv, rv)

    def batch_fn(batch: Any) -> List[Any]:
        lefts = left_batch(batch)
        rights = right_batch(batch)
        out: List[Any] = []
        append = out.append
        for lv, rv in zip(lefts, rights):
            if lv is None or rv is None:
                append(None)
                continue
            if not (
                (type(lv) is int or type(lv) is float)
                and (type(rv) is int or type(rv) is float)
            ):
                _require_number(lv)
                _require_number(rv)
            if guard_zero and rv == 0:
                raise ExpressionError("division by zero")
            append(op(lv, rv))
        return out

    return CompiledExpr(node, row_fn, batch_fn)


def _arith_slow(left: Any, right: Any, op: Callable[[Any, Any], Any]) -> Any:
    _require_number(left)
    return op(left, right)


def _compile_like(node: ast.BinaryOp) -> CompiledExpr:
    left = compile_expr(node.left)
    right = compile_expr(node.right)
    left_row, right_row = left.row, right.row
    left_batch, right_batch = left.batch, right.batch

    if right.constant and not left.constant:
        pattern = right.value
        if pattern is None:

            def row_fn(row: RowDict) -> Any:
                left_row(row)
                return None

            def batch_fn(batch: Any) -> List[Any]:
                return [None] * len(left_batch(batch))

            return CompiledExpr(node, row_fn, batch_fn)
        if not isinstance(pattern, str):

            def row_fn(row: RowDict) -> Any:
                value = left_row(row)
                if value is None:
                    return None
                raise ExpressionError("LIKE requires string operands")

            def batch_fn(batch: Any) -> List[Any]:
                out: List[Any] = []
                append = out.append
                for value in left_batch(batch):
                    if value is None:
                        append(None)
                    else:
                        raise ExpressionError("LIKE requires string operands")
                return out

            return CompiledExpr(node, row_fn, batch_fn)

        regex = _like_regex(pattern)
        fullmatch = regex.fullmatch

        def row_fn(row: RowDict) -> Any:
            value = left_row(row)
            if value is None:
                return None
            if type(value) is str:
                return fullmatch(value) is not None
            return _like(value, pattern)

        def batch_fn(batch: Any) -> List[Any]:
            return [
                None
                if v is None
                else (fullmatch(v) is not None)
                if type(v) is str
                else _like(v, pattern)
                for v in left_batch(batch)
            ]

        return CompiledExpr(node, row_fn, batch_fn)

    def row_fn(row: RowDict) -> Any:
        lv = left_row(row)
        rv = right_row(row)
        if lv is None or rv is None:
            return None
        return _like(lv, rv)

    def batch_fn(batch: Any) -> List[Any]:
        lefts = left_batch(batch)
        rights = right_batch(batch)
        return [
            None if lv is None or rv is None else _like(lv, rv)
            for lv, rv in zip(lefts, rights)
        ]

    return CompiledExpr(node, row_fn, batch_fn)


def _compile_binary(node: ast.BinaryOp) -> CompiledExpr:
    op = node.op
    if op == "and":
        return _compile_and(node)
    if op == "or":
        return _compile_or(node)
    if op == "like":
        return _compile_like(node)
    if op in _COMPARATORS:
        return _compile_comparison(node)
    if op in _ARITHMETIC:
        return _compile_arithmetic(node)
    return _raising(node, f"unknown operator {op!r}")


def _compile_between(node: ast.BetweenExpr) -> CompiledExpr:
    operand = compile_expr(node.operand)
    low = compile_expr(node.low)
    high = compile_expr(node.high)
    operand_row, operand_batch = operand.row, operand.batch
    low_row, low_batch = low.row, low.batch
    high_row, high_batch = high.row, high.batch
    negated = node.negated

    if (
        low.constant
        and high.constant
        and low.value is not None
        and high.value is not None
        and _class_of(low.value) is not None
        and _class_of(low.value) == _class_of(high.value)
    ):
        lo, hi = low.value, high.value
        check = _class_check(lo)

        def row_fn(row: RowDict) -> Any:
            v = operand_row(row)
            if v is None:
                return None
            if check(v):
                verdict = lo <= v <= hi
            else:
                verdict = _compare_ge(v, lo) and _compare_le(v, hi)
            return (not verdict) if negated else verdict

        def batch_fn(batch: Any) -> List[Any]:
            out: List[Any] = []
            append = out.append
            for v in operand_batch(batch):
                if v is None:
                    append(None)
                elif check(v):
                    verdict = lo <= v <= hi
                    append((not verdict) if negated else verdict)
                else:
                    verdict = _compare_ge(v, lo) and _compare_le(v, hi)
                    append((not verdict) if negated else verdict)
            return out

        return CompiledExpr(node, row_fn, batch_fn)

    def row_fn(row: RowDict) -> Any:
        value = operand_row(row)
        lo = low_row(row)
        hi = high_row(row)
        if value is None:
            return None
        lower_ok = None if lo is None else _compare_ge(value, lo)
        upper_ok = None if hi is None else _compare_le(value, hi)
        if lower_ok is False or upper_ok is False:
            verdict: Optional[bool] = False
        elif lower_ok is None or upper_ok is None:
            verdict = None
        else:
            verdict = True
        if negated and verdict is not None:
            return not verdict
        return verdict

    def batch_fn(batch: Any) -> List[Any]:
        values = operand_batch(batch)
        lows = low_batch(batch)
        highs = high_batch(batch)
        out: List[Any] = []
        append = out.append
        for value, lo, hi in zip(values, lows, highs):
            if value is None:
                append(None)
                continue
            lower_ok = None if lo is None else _compare_ge(value, lo)
            upper_ok = None if hi is None else _compare_le(value, hi)
            if lower_ok is False or upper_ok is False:
                verdict: Optional[bool] = False
            elif lower_ok is None or upper_ok is None:
                verdict = None
            else:
                verdict = True
            if negated and verdict is not None:
                verdict = not verdict
            append(verdict)
        return out

    return CompiledExpr(node, row_fn, batch_fn)


def _class_of(value: Any) -> Optional[str]:
    """Comparability class of a constant: all members mutually comparable."""
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "numeric"
    if isinstance(value, str):
        return "str"
    return None


def _compile_in(node: ast.InExpr) -> CompiledExpr:
    operand = compile_expr(node.operand)
    items = [compile_expr(item) for item in node.items]
    operand_row, operand_batch = operand.row, operand.batch
    negated = node.negated

    if all(item.constant for item in items):
        values = [item.value for item in items]
        non_null = [v for v in values if v is not None]
        saw_null = len(non_null) < len(values)
        classes = {_class_of(v) for v in non_null}
        if not non_null:
            # Every item is NULL: any non-NULL operand compares UNKNOWN.
            def row_fn(row: RowDict) -> Any:
                operand_row(row)
                return None

            def batch_fn(batch: Any) -> List[Any]:
                return [None] * len(operand_batch(batch))

            return CompiledExpr(node, row_fn, batch_fn)
        if len(classes) == 1 and None not in classes:
            members = frozenset(non_null)
            representative = non_null[0]
            check = _class_check(representative)
            hit = not negated

            def row_fn(row: RowDict) -> Any:
                v = operand_row(row)
                if v is None:
                    return None
                if not check(v):
                    # Raises for incomparable operands exactly where the
                    # interpreter's first candidate comparison would;
                    # passes for comparable oddballs (int subclasses).
                    _require_comparable(v, representative)
                if v in members:
                    return hit
                if saw_null:
                    return None
                return negated

            def batch_fn(batch: Any) -> List[Any]:
                out: List[Any] = []
                append = out.append
                for v in operand_batch(batch):
                    if v is None:
                        append(None)
                        continue
                    if not check(v):
                        _require_comparable(v, representative)
                    if v in members:
                        append(hit)
                    elif saw_null:
                        append(None)
                    else:
                        append(negated)
                return out

            return CompiledExpr(node, row_fn, batch_fn)

    item_rows = [item.row for item in items]
    item_batches = [item.batch for item in items]

    def row_fn(row: RowDict) -> Any:
        value = operand_row(row)
        if value is None:
            return None
        saw_null = False
        for item_row in item_rows:
            candidate = item_row(row)
            if candidate is None:
                saw_null = True
            elif _values_equal(value, candidate):
                return not negated
        if saw_null:
            return None
        return negated

    def batch_fn(batch: Any) -> List[Any]:
        values = operand_batch(batch)
        item_columns = [item_batch(batch) for item_batch in item_batches]
        out: List[Any] = []
        append = out.append
        for i, value in enumerate(values):
            if value is None:
                append(None)
                continue
            saw_null = False
            verdict: Optional[bool] = negated
            for column in item_columns:
                candidate = column[i]
                if candidate is None:
                    saw_null = True
                elif _values_equal(value, candidate):
                    verdict = not negated
                    break
            else:
                if saw_null:
                    verdict = None
            append(verdict)
        return out

    return CompiledExpr(node, row_fn, batch_fn)


def _compile_is_null(node: ast.IsNullExpr) -> CompiledExpr:
    child = compile_expr(node.operand)
    child_row, child_batch = child.row, child.batch
    if node.negated:
        return CompiledExpr(
            node,
            lambda row: child_row(row) is not None,
            lambda batch: [v is not None for v in child_batch(batch)],
        )
    return CompiledExpr(
        node,
        lambda row: child_row(row) is None,
        lambda batch: [v is None for v in child_batch(batch)],
    )


def _compile_function(node: ast.FunctionCall) -> CompiledExpr:
    if node.is_aggregate:
        message = f"aggregate {node.name.upper()} outside GROUP BY context"

        def row_fn(row: RowDict) -> Any:
            raise ExpressionError(message)

        def batch_fn(batch: Any) -> List[Any]:
            # The batch interpreter raises before looking at the rows.
            raise ExpressionError(message)

        return CompiledExpr(node, row_fn, batch_fn)
    function = _SCALAR_FUNCTIONS.get(node.name)
    if function is None:
        message = f"unknown function {node.name!r}"

        def row_fn(row: RowDict) -> Any:
            raise ExpressionError(message)

        def batch_fn(batch: Any) -> List[Any]:
            raise ExpressionError(message)

        return CompiledExpr(node, row_fn, batch_fn)

    args = [compile_expr(arg) for arg in node.args]
    arg_rows = [arg.row for arg in args]
    arg_batches = [arg.batch for arg in args]

    if len(args) == 1:
        only_row = arg_rows[0]
        only_batch = arg_batches[0]

        def row_fn(row: RowDict) -> Any:
            value = only_row(row)
            if value is None:
                return None
            return function(value)

        def batch_fn(batch: Any) -> List[Any]:
            return [
                None if v is None else function(v) for v in only_batch(batch)
            ]

        return CompiledExpr(node, row_fn, batch_fn)

    def row_fn(row: RowDict) -> Any:
        values = [arg_row(row) for arg_row in arg_rows]
        if any(value is None for value in values):
            return None
        return function(*values)

    def batch_fn(batch: Any) -> List[Any]:
        arg_columns = [arg_batch(batch) for arg_batch in arg_batches]
        out: List[Any] = []
        append = out.append
        rows = zip(*arg_columns) if arg_columns else ((),) * len(batch)
        for values in rows:
            if any(value is None for value in values):
                append(None)
            else:
                append(function(*values))
        return out

    return CompiledExpr(node, row_fn, batch_fn)


_COMPILERS: Dict[type, Callable[[Any], CompiledExpr]] = {
    ast.Literal: _compile_literal,
    ast.RuntimeParameter: _compile_runtime_parameter,
    ast.ColumnRef: _compile_column,
    ast.UnaryOp: _compile_unary,
    ast.BinaryOp: _compile_binary,
    ast.BetweenExpr: _compile_between,
    ast.InExpr: _compile_in,
    ast.IsNullExpr: _compile_is_null,
    ast.FunctionCall: _compile_function,
}
