"""EXPLAIN: render a physical plan with estimates and provenance."""

from __future__ import annotations

from typing import List

from repro.optimizer.physical import PhysicalNode, PhysicalPlan


def explain(plan: PhysicalPlan) -> str:
    """A multi-line EXPLAIN rendering of the plan.

    Shows the operator tree with per-node row/cost estimates, then the
    rewrites that fired, the soft constraints the plan depends on, and the
    estimation-only twinned predicates the estimator consulted.
    """
    lines: List[str] = []
    _render(plan.root, 0, lines)
    if plan.compiled:
        lines.append(
            f"expressions: compiled=yes (compile cache: "
            f"{plan.compile_cache_hits} hits, "
            f"{plan.compile_cache_misses} misses)"
        )
    else:
        lines.append("expressions: compiled=no (interpreted)")
    if plan.rewrites_applied:
        lines.append("rewrites:")
        for entry in plan.rewrites_applied:
            lines.append(f"  - {entry}")
    if plan.sc_dependencies:
        lines.append(
            "depends on soft constraints: "
            + ", ".join(sorted(plan.sc_dependencies))
        )
    if plan.estimation_notes:
        lines.append("estimation-only predicates:")
        for note in plan.estimation_notes:
            lines.append(f"  - {note}")
    return "\n".join(lines)


def _render(node: PhysicalNode, depth: int, lines: List[str]) -> None:
    indent = "  " * depth
    lines.append(
        f"{indent}{node.describe()}  "
        f"[rows~{node.estimated_rows:.1f} cost~{node.estimated_cost:.1f}"
        f"{_actuals(node)}]"
    )
    for child in node.children():
        _render(child, depth + 1, lines)


def _actuals(node: PhysicalNode) -> str:
    """The instrumented columns: ``est=…`` / ``act=…`` / ``qerr=…``.

    Present only after an instrumented execution; the extra feedback
    counters (scan input rows, join pairs, sort input) appear when
    feedback collection recorded them.
    """
    if node.actual_rows is None:
        return ""
    from repro.stats.errors import q_error

    q = q_error(node.estimated_rows, node.actual_rows)
    text = (
        f" est={node.estimated_rows:.0f} act={node.actual_rows}"
        f" qerr={q:.2f}"
    )
    if node.actual_batches is not None:
        text += f" batches={node.actual_batches}"
    scanned = getattr(node, "actual_rows_scanned", None)
    if scanned is not None:
        text += f" scanned={scanned}"
    pairs = getattr(node, "actual_pairs", None)
    if pairs is not None:
        text += f" pairs={pairs}"
    sort_input = getattr(node, "actual_input_rows", None)
    if sort_input is not None:
        text += f" input={sort_input}"
    return text
