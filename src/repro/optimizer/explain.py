"""EXPLAIN: render a physical plan with estimates and provenance."""

from __future__ import annotations

from typing import List

from repro.optimizer.physical import PhysicalNode, PhysicalPlan


def explain(plan: PhysicalPlan) -> str:
    """A multi-line EXPLAIN rendering of the plan.

    Shows the operator tree with per-node row/cost estimates, then the
    rewrites that fired, the soft constraints the plan depends on, and the
    estimation-only twinned predicates the estimator consulted.
    """
    lines: List[str] = []
    _render(plan.root, 0, lines)
    if plan.compiled:
        lines.append(
            f"expressions: compiled=yes (compile cache: "
            f"{plan.compile_cache_hits} hits, "
            f"{plan.compile_cache_misses} misses)"
        )
    else:
        lines.append("expressions: compiled=no (interpreted)")
    if plan.rewrites_applied:
        lines.append("rewrites:")
        for entry in plan.rewrites_applied:
            lines.append(f"  - {entry}")
    if plan.sc_dependencies:
        lines.append(
            "depends on soft constraints: "
            + ", ".join(sorted(plan.sc_dependencies))
        )
    if plan.estimation_notes:
        lines.append("estimation-only predicates:")
        for note in plan.estimation_notes:
            lines.append(f"  - {note}")
    return "\n".join(lines)


def _render(node: PhysicalNode, depth: int, lines: List[str]) -> None:
    indent = "  " * depth
    actual = (
        "" if node.actual_rows is None else f" actual={node.actual_rows}"
    )
    if actual and node.actual_batches is not None:
        actual += f" batches={node.actual_batches}"
    lines.append(
        f"{indent}{node.describe()}  "
        f"[rows~{node.estimated_rows:.1f} cost~{node.estimated_cost:.1f}"
        f"{actual}]"
    )
    for child in node.children():
        _render(child, depth + 1, lines)
