"""The query optimizer: rewrite engine + cost-based plan selection.

Pipeline (mirroring the DB2 architecture the paper describes):

1. the SQL statement is *bound* against the catalog into a logical
   **query block** form (:mod:`repro.optimizer.builder`);
2. the heuristic **rewrite engine** (:mod:`repro.optimizer.rewrite`)
   applies semantics-preserving transformations driven by integrity
   constraints, informational constraints, and *absolute* soft
   constraints — plus estimation-only *twinned predicates* from
   statistical soft constraints;
3. the **cost-based optimizer** picks access paths and a join order using
   the cardinality model (:mod:`repro.optimizer.cardinality`) and cost
   model (:mod:`repro.optimizer.costmodel`), emitting a physical plan for
   the executor.

The :class:`~repro.optimizer.planner.Optimizer` facade runs all three and
returns a :class:`~repro.optimizer.physical.PhysicalPlan` that records the
rewrites applied and the soft constraints it depends on (for plan-cache
invalidation, Section 4.1).
"""

from repro.optimizer.planner import Optimizer, OptimizerConfig, PlanCache
from repro.optimizer.logical import QueryBlock, UnionPlan
from repro.optimizer.explain import explain

__all__ = [
    "Optimizer",
    "OptimizerConfig",
    "PlanCache",
    "QueryBlock",
    "UnionPlan",
    "explain",
]
