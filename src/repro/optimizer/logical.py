"""The logical representation: query blocks.

A :class:`QueryBlock` is the bound, normalized form of one SELECT block:

* ``tables`` — the base tables in scope, each under a *binding* (alias);
* ``predicates`` — the WHERE clause and all JOIN ... ON conditions,
  flattened into one conjunct pool with every column reference qualified
  by its binding;
* ``estimation_predicates`` — *twinned* predicates (paper Section 5.1):
  marked for use by the optimizer's cardinality estimation ONLY and never
  evaluated at runtime; each carries the confidence of the SSC that
  produced it;
* projection, grouping, ordering and limit clauses.

This conjunct-pool form is what makes the paper's rewrites natural: join
elimination removes a table and its join conjuncts, predicate introduction
appends a conjunct, branch knockout drops a whole block from a
:class:`UnionPlan`, and twinning appends to ``estimation_predicates``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.sql import ast


@dataclass(eq=True)
class BoundTable:
    """A base table in a block's scope, under a binding name."""

    table_name: str
    binding: str

    def __post_init__(self) -> None:
        self.table_name = self.table_name.lower()
        self.binding = self.binding.lower()


@dataclass(eq=True)
class EstimationPredicate:
    """A twinned predicate: estimation-only, with its SSC's confidence.

    ``source`` names the soft constraint (or rule) that introduced it, so
    EXPLAIN can show where an estimate came from and E5 can toggle it.

    ``linked_columns`` are the (bare) column names the source SC ties
    together.  The estimator treats predicates over linked columns as
    *perfectly correlated* rather than independent — the paper's
    "reducing the range predicates on two columns to a pair of range
    predicates on a single column".

    ``fraction_override``, when set, makes the predicate a *selectivity
    hint*: ``expression`` is one of the query's own conjuncts (typically a
    difference predicate like ``end_date - start_date <= 5``) and the
    estimator uses this fraction for it instead of a default constant —
    the paper's closing Section 5.1 example, computed from the SC's
    confidence points.
    """

    expression: ast.Expression
    confidence: float
    source: str = ""
    linked_columns: Tuple[str, ...] = ()
    fraction_override: Optional[float] = None


@dataclass(eq=True)
class OutputColumn:
    """One projected output column: an expression and its output name."""

    expression: ast.Expression
    name: str


@dataclass(eq=True)
class Aggregate:
    """One aggregate computation within a grouped block."""

    function: str  # count | sum | avg | min | max
    argument: Optional[ast.Expression]  # None for COUNT(*)
    distinct: bool
    output_name: str


@dataclass
class QueryBlock:
    """A bound single-SELECT query block (inner joins only)."""

    tables: List[BoundTable] = field(default_factory=list)
    predicates: List[ast.Expression] = field(default_factory=list)
    estimation_predicates: List[EstimationPredicate] = field(default_factory=list)
    output: List[OutputColumn] = field(default_factory=list)
    group_by: List[ast.Expression] = field(default_factory=list)
    # Columns removed from GROUP BY by FD simplification: constant within
    # each group, carried through by the group operator (first row wins).
    group_carried: List[ast.ColumnRef] = field(default_factory=list)
    aggregates: List[Aggregate] = field(default_factory=list)
    having: Optional[ast.Expression] = None
    order_by: List[Tuple[ast.Expression, bool]] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False

    # -- convenience -------------------------------------------------------

    @property
    def is_grouped(self) -> bool:
        return bool(self.group_by) or bool(self.aggregates)

    def binding_of(self, table_name: str) -> Optional[str]:
        """The (first) binding under which a base table appears."""
        for bound in self.tables:
            if bound.table_name == table_name.lower():
                return bound.binding
        return None

    def bindings(self) -> List[str]:
        return [bound.binding for bound in self.tables]

    def table_for_binding(self, binding: str) -> Optional[str]:
        for bound in self.tables:
            if bound.binding == binding.lower():
                return bound.table_name
        return None

    def copy(self) -> "QueryBlock":
        """A structural copy safe for destructive rewrites."""
        return QueryBlock(
            tables=list(self.tables),
            predicates=list(self.predicates),
            estimation_predicates=list(self.estimation_predicates),
            output=list(self.output),
            group_by=list(self.group_by),
            group_carried=list(self.group_carried),
            aggregates=list(self.aggregates),
            having=self.having,
            order_by=list(self.order_by),
            limit=self.limit,
            distinct=self.distinct,
        )


@dataclass
class UnionPlan:
    """UNION ALL of query blocks, with optional outer ORDER BY / LIMIT."""

    blocks: List[QueryBlock] = field(default_factory=list)
    order_by: List[Tuple[ast.Expression, bool]] = field(default_factory=list)
    limit: Optional[int] = None

    def copy(self) -> "UnionPlan":
        return UnionPlan(
            blocks=[block.copy() for block in self.blocks],
            order_by=list(self.order_by),
            limit=self.limit,
        )


LogicalPlan = Union[QueryBlock, UnionPlan]
