"""Predicate introduction and range trimming (paper Section 2, [10], [8]).

Three rewrites live here, all driven by ACTIVE *absolute* soft
constraints:

* **linear-correlation introduction** — an ASC ``a ~= k*b + c ± eps``
  plus a query interval on ``b`` introduces
  ``a BETWEEN ...`` which may open an index on ``a``;
* **difference-bound introduction** — check-style ASCs like
  ``ship_date <= order_date + 21`` introduce the implied range on the
  other column (the paper's Section 4.4 example);
* **join-hole range trimming** — for a query over a hole SC's join path,
  the query's (a, b) rectangle is trimmed against the holes, shrinking
  the ranges to scan;
* **min/max abbreviation** — Sybase-style: query ranges are intersected
  with the known min/max; an empty intersection turns the whole block
  into a constant-FALSE scan.

Every introduced conjunct is real (executed), so these fire only from
constraints with ``usable_in_rewrite`` (ACTIVE and absolute).
"""

from __future__ import annotations

from repro.expr import analysis
from repro.expr.intervals import Interval
from repro.optimizer.logical import LogicalPlan, QueryBlock
from repro.optimizer.rewrite import derive
from repro.optimizer.rewrite.engine import RewriteContext, map_blocks
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.holes import JoinHolesSC
from repro.softcon.linear import LinearCorrelationSC
from repro.softcon.minmax import MinMaxSC
from repro.sql import ast


def introduce_predicates(
    plan: LogicalPlan, context: RewriteContext
) -> LogicalPlan:
    if not context.config.enable_predicate_introduction:
        return plan
    return map_blocks(plan, lambda block: _introduce_in_block(block, context))


def _introduce_in_block(
    block: QueryBlock, context: RewriteContext
) -> QueryBlock:
    if context.registry is None:
        return block
    for bound in block.tables:
        for constraint in context.registry.rewrite_usable(bound.table_name):
            if isinstance(constraint, LinearCorrelationSC):
                _introduce_linear(block, bound.binding, constraint, context)
            elif isinstance(constraint, CheckSoftConstraint):
                _introduce_difference(block, bound.binding, constraint, context)
            elif isinstance(constraint, MinMaxSC):
                _abbreviate_minmax(block, bound.binding, constraint, context)
    _trim_against_holes(block, context)
    _introduce_join_linear(block, context)
    return block


def _worth_introducing(
    context: RewriteContext,
    table_name: str,
    binding: str,
    target_column: str,
    block: QueryBlock,
) -> bool:
    """The DB2 heuristic: introduce only when it can open an access path.

    The rewrite engine passes a single query to the cost-based optimizer,
    so an introduced predicate must "virtually always" pay off ([6]).  We
    require an index led by the target column, and that the query does
    not already have an indexable interval on some indexed column of the
    same binding.
    """
    if not context.config.introduce_only_with_index:
        return True
    catalog = context.database.catalog
    target_index = catalog.find_index(table_name, [target_column])
    if target_index is None:
        return False
    for index in catalog.indexes_on(table_name):
        lead = index.column_names[0]
        interval = analysis.column_interval(
            block.predicates, ast.ColumnRef(lead, binding)
        )
        if not interval.is_unbounded:
            return False  # an index path already exists
    return True


def _already_implied(
    block: QueryBlock, binding: str, column: str, interval: Interval
) -> bool:
    existing = analysis.column_interval(
        block.predicates, ast.ColumnRef(column, binding)
    )
    return interval.contains_interval(existing)


def _append_interval_predicate(
    block: QueryBlock,
    binding: str,
    column: str,
    interval: Interval,
    context: RewriteContext,
    constraint_name: str,
    rule_detail: str,
) -> bool:
    if interval.is_unbounded:
        return False
    if _already_implied(block, binding, column, interval):
        return False
    predicate = derive.interval_to_predicate(column, binding, interval)
    if predicate is None:
        return False
    # Append as individual conjuncts so downstream interval extraction and
    # access-path selection see each bound.
    block.predicates.extend(analysis.split_conjuncts(predicate))
    context.depend_on(constraint_name)
    context.record("predicate_introduction", rule_detail)
    return True


def _introduce_linear(
    block: QueryBlock,
    binding: str,
    constraint: LinearCorrelationSC,
    context: RewriteContext,
) -> None:
    known = derive.known_intervals_for_binding(
        block.predicates, binding, [constraint.column_b]
    )
    if constraint.column_b not in known:
        return
    if not _worth_introducing(
        context, constraint.table_name, binding, constraint.column_a, block
    ):
        return
    interval = constraint.predict_interval_for_b_range(
        known[constraint.column_b]
    )
    _append_interval_predicate(
        block,
        binding,
        constraint.column_a,
        interval,
        context,
        constraint.name,
        f"{constraint.name}: introduced range on "
        f"{binding}.{constraint.column_a} from {binding}.{constraint.column_b}",
    )


def _introduce_difference(
    block: QueryBlock,
    binding: str,
    constraint: CheckSoftConstraint,
    context: RewriteContext,
) -> None:
    bounds = derive.difference_bounds(constraint.expression)
    if not bounds:
        return
    columns = {bound.x for bound in bounds} | {bound.y for bound in bounds}
    known = derive.known_intervals_for_binding(
        block.predicates, binding, sorted(columns)
    )
    if not known:
        return
    for target in sorted(columns - set(known)):
        if not _worth_introducing(
            context, constraint.table_name, binding, target, block
        ):
            continue
        interval = derive.derive_interval_from_bounds(bounds, target, known)
        _append_interval_predicate(
            block,
            binding,
            target,
            interval,
            context,
            constraint.name,
            f"{constraint.name}: introduced range on {binding}.{target}",
        )


def _abbreviate_minmax(
    block: QueryBlock,
    binding: str,
    constraint: MinMaxSC,
    context: RewriteContext,
) -> None:
    query_interval = analysis.column_interval(
        block.predicates, ast.ColumnRef(constraint.column_name, binding)
    )
    if query_interval.is_unbounded:
        return
    intersected = query_interval.intersect(constraint.interval)
    if intersected.is_empty:
        block.predicates.append(ast.Literal(False))
        context.depend_on(constraint.name)
        context.record(
            "predicate_introduction",
            f"{constraint.name}: query range outside known min/max "
            f"of {binding}.{constraint.column_name} — block is empty",
        )
        return
    # Tighten a half-open query range using the known bounds (this is the
    # Sybase-style abbreviation: a bounded range can use an index range
    # scan on both ends).
    if intersected != query_interval and (
        query_interval.low is None or query_interval.high is None
    ):
        if context.config.enable_runtime_parameters:
            # Section 4.2: parameterize the SC-contributed bound(s) so the
            # plan reads the *current* min/max at execution time and
            # survives widening repairs without invalidation.
            reference = ast.ColumnRef(constraint.column_name, binding)
            if query_interval.low is None and constraint.low is not None:
                block.predicates.append(
                    ast.BinaryOp(
                        ">=",
                        reference,
                        ast.RuntimeParameter(constraint, "low"),
                    )
                )
            if query_interval.high is None and constraint.high is not None:
                block.predicates.append(
                    ast.BinaryOp(
                        "<=",
                        reference,
                        ast.RuntimeParameter(constraint, "high"),
                    )
                )
            context.depend_on_validity(constraint.name)
            context.record(
                "predicate_introduction",
                f"{constraint.name}: abbreviated range on "
                f"{binding}.{constraint.column_name} (runtime parameters)",
            )
            return
        _append_interval_predicate(
            block,
            binding,
            constraint.column_name,
            intersected,
            context,
            constraint.name,
            f"{constraint.name}: abbreviated range on "
            f"{binding}.{constraint.column_name}",
        )


def _trim_against_holes(block: QueryBlock, context: RewriteContext) -> None:
    if context.registry is None or not context.config.enable_hole_trimming:
        return
    seen = set()
    for constraint in context.registry.rewrite_usable():
        if not isinstance(constraint, JoinHolesSC) or constraint.name in seen:
            continue
        seen.add(constraint.name)
        one_binding = block.binding_of(constraint.table_one)
        two_binding = block.binding_of(constraint.table_two)
        if one_binding is None or two_binding is None:
            continue
        if not _join_path_present(block, constraint, one_binding, two_binding):
            continue
        a_reference = ast.ColumnRef(constraint.column_a, one_binding)
        b_reference = ast.ColumnRef(constraint.column_b, two_binding)
        a_range = analysis.column_interval(block.predicates, a_reference)
        b_range = analysis.column_interval(block.predicates, b_reference)
        if a_range.is_unbounded and b_range.is_unbounded:
            continue
        trimmed_a, trimmed_b = constraint.trim(a_range, b_range)
        if trimmed_a != a_range:
            _append_interval_predicate(
                block,
                one_binding,
                constraint.column_a,
                trimmed_a,
                context,
                constraint.name,
                f"{constraint.name}: trimmed range on "
                f"{one_binding}.{constraint.column_a}",
            )
        if trimmed_b != b_range:
            _append_interval_predicate(
                block,
                two_binding,
                constraint.column_b,
                trimmed_b,
                context,
                constraint.name,
                f"{constraint.name}: trimmed range on "
                f"{two_binding}.{constraint.column_b}",
            )


def _introduce_join_linear(block: QueryBlock, context: RewriteContext) -> None:
    """Introduce bands from inter-table linear correlations (Section 2:
    correlations "across common join paths").

    For a query over the SC's join path, a range on one side's column
    implies the model's band on the other side's column — a predicate on
    the *join result*, pushable to the other table's scan.
    """
    if context.registry is None:
        return
    from repro.softcon.joinlinear import JoinLinearSC

    seen = set()
    for constraint in context.registry.rewrite_usable():
        if not isinstance(constraint, JoinLinearSC) or constraint.name in seen:
            continue
        seen.add(constraint.name)
        one_binding = block.binding_of(constraint.table_one)
        two_binding = block.binding_of(constraint.table_two)
        if one_binding is None or two_binding is None:
            continue
        if not _join_path_present(block, constraint, one_binding, two_binding):
            continue
        b_range = analysis.column_interval(
            block.predicates, ast.ColumnRef(constraint.column_b, two_binding)
        )
        if not b_range.is_unbounded:
            _append_interval_predicate(
                block,
                one_binding,
                constraint.column_a,
                constraint.predict_a_interval(b_range),
                context,
                constraint.name,
                f"{constraint.name}: introduced join-path band on "
                f"{one_binding}.{constraint.column_a}",
            )
        a_range = analysis.column_interval(
            block.predicates, ast.ColumnRef(constraint.column_a, one_binding)
        )
        if not a_range.is_unbounded:
            _append_interval_predicate(
                block,
                two_binding,
                constraint.column_b,
                constraint.predict_b_interval(a_range),
                context,
                constraint.name,
                f"{constraint.name}: introduced join-path band on "
                f"{two_binding}.{constraint.column_b}",
            )


def _join_path_present(
    block: QueryBlock,
    constraint,
    one_binding: str,
    two_binding: str,
) -> bool:
    for conjunct in block.predicates:
        pair = analysis.match_equijoin(conjunct)
        if pair is None:
            continue
        left, right = pair
        if (
            left.table == one_binding
            and left.column == constraint.join_column_one
            and right.table == two_binding
            and right.column == constraint.join_column_two
        ) or (
            right.table == one_binding
            and right.column == constraint.join_column_one
            and left.table == two_binding
            and left.column == constraint.join_column_two
        ):
            return True
    return False
