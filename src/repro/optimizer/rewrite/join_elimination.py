"""Join elimination over referential integrity ([6], Section 2).

A join ``child ⋈ parent`` over a foreign key can be removed when:

* the join condition is exactly the FK's column pairing;
* the parent's referenced columns are a PRIMARY KEY / UNIQUE constraint
  (each child row matches at most one parent row — no duplication);
* every child FK column is NOT NULL (each child row matches at least one
  parent row — no row loss);
* nothing else in the query references the parent binding.

Informational (NOT ENFORCED) foreign keys qualify too — that is the point
of informational constraints: the promise substitutes for checking.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.constraints import (
    ForeignKeyConstraint,
    NotNullConstraint,
    UniqueConstraint,
)
from repro.expr import analysis
from repro.optimizer.logical import LogicalPlan, QueryBlock
from repro.optimizer.rewrite.engine import RewriteContext, map_blocks
from repro.sql import ast


def eliminate_joins(plan: LogicalPlan, context: RewriteContext) -> LogicalPlan:
    if not context.config.enable_join_elimination:
        return plan
    return map_blocks(plan, lambda block: _eliminate_in_block(block, context))


def _eliminate_in_block(
    block: QueryBlock, context: RewriteContext
) -> QueryBlock:
    changed = True
    while changed:
        changed = False
        for bound in list(block.tables):
            if _try_eliminate_parent(block, bound.binding, context):
                changed = True
                break
    return block


def _try_eliminate_parent(
    block: QueryBlock, parent_binding: str, context: RewriteContext
) -> bool:
    parent_table = block.table_for_binding(parent_binding)
    if parent_table is None or len(block.tables) < 2:
        return False
    catalog = context.database.catalog
    for fk in catalog.foreign_keys_referencing(parent_table):
        child_binding = block.binding_of(fk.table_name)
        if child_binding is None or child_binding == parent_binding:
            continue
        join_conjuncts = _fk_join_conjuncts(
            block, fk, child_binding, parent_binding
        )
        if join_conjuncts is None:
            continue
        if not _parent_key_unique(catalog, fk):
            continue
        if not _child_columns_not_null(context, fk):
            continue
        if _binding_used_elsewhere(block, parent_binding, join_conjuncts):
            continue
        block.tables = [
            bound for bound in block.tables if bound.binding != parent_binding
        ]
        block.predicates = [
            conjunct
            for conjunct in block.predicates
            if conjunct not in join_conjuncts
        ]
        context.record(
            "join_elimination",
            f"removed {parent_table} AS {parent_binding} via FK {fk.name}",
        )
        return True
    return False


def _fk_join_conjuncts(
    block: QueryBlock,
    fk: ForeignKeyConstraint,
    child_binding: str,
    parent_binding: str,
) -> Optional[List[ast.Expression]]:
    """The block conjuncts realizing the FK join, or None if incomplete."""
    found: List[ast.Expression] = []
    for child_column, parent_column in zip(fk.column_names, fk.parent_columns):
        match = None
        for conjunct in block.predicates:
            pair = analysis.match_equijoin(conjunct)
            if pair is None:
                continue
            left, right = pair
            if (
                left.table == child_binding
                and left.column == child_column
                and right.table == parent_binding
                and right.column == parent_column
            ) or (
                right.table == child_binding
                and right.column == child_column
                and left.table == parent_binding
                and left.column == parent_column
            ):
                match = conjunct
                break
        if match is None:
            return None
        found.append(match)
    return found


def _parent_key_unique(catalog, fk: ForeignKeyConstraint) -> bool:
    for constraint in catalog.constraints_on(fk.parent_table):
        if isinstance(constraint, UniqueConstraint) and (
            constraint.column_names == fk.parent_columns
        ):
            return True
    return False


def _child_columns_not_null(
    context: RewriteContext, fk: ForeignKeyConstraint
) -> bool:
    schema = context.database.table(fk.table_name).schema
    declared_not_null = {
        constraint.column_name
        for constraint in context.database.catalog.constraints_on(fk.table_name)
        if isinstance(constraint, NotNullConstraint)
    }
    for column_name in fk.column_names:
        column = schema.column(column_name)
        if not column.nullable:
            continue
        if column_name in declared_not_null:
            continue
        return False
    return True


def _binding_used_elsewhere(
    block: QueryBlock,
    binding: str,
    join_conjuncts: List[ast.Expression],
) -> bool:
    """Is the parent binding referenced outside the FK join conjuncts?"""

    def mentions(expression: ast.Expression) -> bool:
        return binding in analysis.tables_in(expression)

    for conjunct in block.predicates:
        if conjunct in join_conjuncts:
            continue
        if mentions(conjunct):
            return True
    for output in block.output:
        if mentions(output.expression):
            return True
    for key in block.group_by + block.group_carried:
        if mentions(key):
            return True
    for aggregate in block.aggregates:
        if aggregate.argument is not None and mentions(aggregate.argument):
            return True
    if block.having is not None and mentions(block.having):
        return True
    for expression, _ in block.order_by:
        if mentions(expression):
            return True
    for estimation in block.estimation_predicates:
        if mentions(estimation.expression):
            return True
    return False
