"""UNION ALL branch knockout (paper Section 5).

Each branch of a UNION ALL view typically carries a range constraint on
some column ("the first branch contains data corresponding to January...").
Matching the query's predicates against each branch's constraints lets the
optimizer "knock off the branches of the union view that we know will not
contain any data that will satisfy the query".

Constraint sources, per branch table:

* hard and informational CHECK constraints from the catalog;
* ACTIVE *absolute* check-style soft constraints (SSCs cannot knock out a
  branch — some rows may disagree with the statement).

A branch is eliminated when, for some column, the interval implied by the
branch's constraints does not overlap the interval demanded by the query.
"""

from __future__ import annotations

from typing import List

from repro.engine.constraints import CheckConstraint
from repro.expr import analysis
from repro.optimizer.logical import LogicalPlan, QueryBlock, UnionPlan
from repro.optimizer.rewrite.engine import RewriteContext
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.minmax import MinMaxSC
from repro.sql import ast


def eliminate_branches(
    plan: LogicalPlan, context: RewriteContext
) -> LogicalPlan:
    if not isinstance(plan, UnionPlan) or not context.config.enable_branch_elimination:
        return plan
    surviving: List[QueryBlock] = []
    for number, block in enumerate(plan.blocks):
        if _block_is_empty(block, context):
            context.record(
                "branch_elimination",
                f"knocked out branch {number + 1} "
                f"({', '.join(b.table_name for b in block.tables)})",
            )
            continue
        surviving.append(block)
    if not surviving:
        # Keep one branch with a FALSE predicate so the plan retains its
        # output shape while returning no rows.
        kept = plan.blocks[0].copy()
        kept.predicates.append(ast.Literal(False))
        surviving = [kept]
    return UnionPlan(blocks=surviving, order_by=plan.order_by, limit=plan.limit)


def _block_is_empty(block: QueryBlock, context: RewriteContext) -> bool:
    """Whether some table's constraints contradict the block's predicates."""
    for bound in block.tables:
        constraint_conjuncts: List[ast.Expression] = []
        sc_names: List[str] = []
        for constraint in context.database.catalog.constraints_on(
            bound.table_name
        ):
            if isinstance(constraint, CheckConstraint) and constraint.expression is not None:
                constraint_conjuncts.extend(
                    analysis.split_conjuncts(constraint.expression)
                )
        if context.registry is not None:
            for soft in context.registry.rewrite_usable(bound.table_name):
                if isinstance(soft, CheckSoftConstraint):
                    constraint_conjuncts.extend(
                        analysis.split_conjuncts(soft.expression)
                    )
                    sc_names.append(soft.name)
                elif isinstance(soft, MinMaxSC):
                    constraint_conjuncts.append(
                        ast.BetweenExpr(
                            ast.ColumnRef(soft.column_name),
                            ast.Literal(soft.low),
                            ast.Literal(soft.high),
                        )
                    )
                    sc_names.append(soft.name)
        if not constraint_conjuncts:
            continue
        if _contradicts(block, bound.binding, constraint_conjuncts):
            for name in sc_names:
                context.depend_on(name)
            return True
    return False


def _contradicts(
    block: QueryBlock,
    binding: str,
    constraint_conjuncts: List[ast.Expression],
) -> bool:
    """Does any column's constraint interval miss the query interval?"""
    columns = {
        reference.column
        for conjunct in constraint_conjuncts
        for reference in analysis.columns_in(conjunct)
    }
    for column in columns:
        constraint_interval = analysis.column_interval(
            constraint_conjuncts, ast.ColumnRef(column)
        )
        if constraint_interval.is_unbounded:
            continue
        query_interval = analysis.column_interval(
            block.predicates, ast.ColumnRef(column, binding)
        )
        if query_interval.is_unbounded:
            continue
        if not constraint_interval.overlaps(query_interval):
            return True
    return False
