"""Rewrite-engine driver and shared context."""

from __future__ import annotations

from typing import Callable, List, Optional, Set, TYPE_CHECKING, Union

from repro.engine.database import Database
from repro.optimizer.logical import LogicalPlan, QueryBlock, UnionPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.optimizer.planner import OptimizerConfig
    from repro.softcon.registry import SoftConstraintRegistry


class RewriteContext:
    """State shared by all rules during one rewrite pass."""

    def __init__(
        self,
        database: Database,
        registry: Optional["SoftConstraintRegistry"],
        config: "OptimizerConfig",
    ) -> None:
        self.database = database
        self.registry = registry
        self.config = config
        self.applied: List[str] = []
        self.sc_dependencies: Set[str] = set()
        self.sc_value_dependencies: Set[str] = set()
        self.estimation_notes: List[str] = []

    def record(self, rule: str, detail: str) -> None:
        self.applied.append(f"{rule}: {detail}")

    def depend_on(self, constraint_name: str) -> None:
        """Record that the plan inlined the constraint's *values*.

        The plan becomes invalid both when the constraint is overturned
        and when a repair changes its statement (e.g. min/max widening) —
        the inlined constants would silently drop rows otherwise.
        """
        self.sc_dependencies.add(constraint_name.lower())
        self.sc_value_dependencies.add(constraint_name.lower())

    def depend_on_validity(self, constraint_name: str) -> None:
        """Record a dependency on the constraint *holding*, not its values.

        Used by rules whose rewrite survives value repairs (FD-based
        simplification, runtime-parameterized ranges): only an overturn or
        demotion invalidates the plan.
        """
        self.sc_dependencies.add(constraint_name.lower())


RewriteRule = Callable[[LogicalPlan, RewriteContext], LogicalPlan]


class RewriteEngine:
    """Applies the rule pipeline to a logical plan.

    The rule list is configurable so experiments can ablate individual
    rewrites (every benchmark's baseline is "same optimizer, rule off").
    """

    def __init__(self, rules: Optional[List[RewriteRule]] = None) -> None:
        if rules is None:
            rules = default_rules()
        self.rules = rules

    def rewrite(
        self, plan: LogicalPlan, context: RewriteContext
    ) -> LogicalPlan:
        for rule in self.rules:
            plan = rule(plan, context)
        return plan


def default_rules() -> List[RewriteRule]:
    """The full pipeline in canonical order."""
    from repro.optimizer.rewrite.branch_elimination import eliminate_branches
    from repro.optimizer.rewrite.join_elimination import eliminate_joins
    from repro.optimizer.rewrite.groupby_simplification import simplify_grouping
    from repro.optimizer.rewrite.ast_routing import route_through_exceptions
    from repro.optimizer.rewrite.predicate_introduction import introduce_predicates
    from repro.optimizer.rewrite.twinning import add_twinned_predicates

    return [
        eliminate_branches,
        eliminate_joins,
        simplify_grouping,
        route_through_exceptions,
        introduce_predicates,
        add_twinned_predicates,
    ]


def map_blocks(
    plan: LogicalPlan,
    transform: Callable[[QueryBlock], QueryBlock],
) -> LogicalPlan:
    """Apply a per-block transform across a block or union plan."""
    if isinstance(plan, QueryBlock):
        return transform(plan)
    return UnionPlan(
        blocks=[transform(block) for block in plan.blocks],
        order_by=plan.order_by,
        limit=plan.limit,
    )
