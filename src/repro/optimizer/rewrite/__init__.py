"""The heuristic query-rewrite engine.

Rules (each in its own module), in application order:

1. :mod:`branch_elimination` — knock out UNION ALL branches whose range
   constraints contradict the query predicates (Section 5);
2. :mod:`join_elimination` — drop joins over referential-integrity
   constraints when the parent contributes nothing ([6], Section 2);
3. :mod:`groupby_simplification` — shrink GROUP BY / ORDER BY keys using
   keys and FD soft constraints ([29], Section 2);
4. :mod:`ast_routing` — route through exception tables: ASC-as-AST
   union-all plans (Section 4.4);
5. :mod:`predicate_introduction` — introduce predicates from linear
   correlation ASCs and min/max ASCs, and trim ranges against join holes
   ([10], [8], Section 2);
6. :mod:`twinning` — add estimation-only twinned predicates from SSCs for
   the cardinality estimator (Section 5.1).

All rules preserve query semantics; only rule 6 produces artifacts that
are never executed.  Rules record which soft constraints they relied on so
the resulting plan can be invalidated if one is overturned (Section 4.1).
"""

from repro.optimizer.rewrite.engine import RewriteContext, RewriteEngine

__all__ = ["RewriteContext", "RewriteEngine"]
