"""GROUP BY / ORDER BY simplification via functional dependencies.

Paper (Section 2, citing [29]): FDs beyond key information "are most
effective to optimize group by and order by queries when it can be
inferred that some of the group by / order by attributes are superfluous.
This can save on sorting costs and sometimes eliminate sorting from the
query plan completely."

FD sources:

* PRIMARY KEY / UNIQUE constraints (hard or informational): the key
  columns determine every column of their table;
* ACTIVE *absolute* FD soft constraints (typically discovered by
  :mod:`repro.discovery.fd_miner` over denormalized tables).

A GROUP BY key is removed when the remaining keys (on the same binding)
functionally determine it; it moves to ``group_carried`` so the group
operator still emits its (group-constant) value.  Trailing ORDER BY keys
determined by the keys before them are dropped outright.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.engine.constraints import UniqueConstraint
from repro.optimizer.logical import LogicalPlan, QueryBlock
from repro.optimizer.rewrite.engine import RewriteContext, map_blocks
from repro.softcon.fd import FunctionalDependencySC
from repro.sql import ast


def simplify_grouping(plan: LogicalPlan, context: RewriteContext) -> LogicalPlan:
    if not context.config.enable_groupby_simplification:
        return plan
    return map_blocks(plan, lambda block: _simplify_block(block, context))


def _simplify_block(block: QueryBlock, context: RewriteContext) -> QueryBlock:
    if block.group_by:
        _simplify_group_by(block, context)
    if block.order_by:
        _simplify_order_by(block, context)
    return block


def _fds_for_table(
    context: RewriteContext, table_name: str
) -> List[Tuple[Set[str], Set[str], str]]:
    """(determinants, dependents, source) triples for one table."""
    fds: List[Tuple[Set[str], Set[str], str]] = []
    schema = context.database.table(table_name).schema
    all_columns = set(schema.column_names())
    for constraint in context.database.catalog.constraints_on(table_name):
        if isinstance(constraint, UniqueConstraint):
            key = set(constraint.column_names)
            fds.append((key, all_columns - key, f"key:{constraint.name}"))
    if context.registry is not None:
        for soft in context.registry.rewrite_usable(table_name):
            if isinstance(soft, FunctionalDependencySC):
                fds.append(
                    (
                        set(soft.determinants),
                        set(soft.dependents),
                        f"sc:{soft.name}",
                    )
                )
    return fds


def _determined(
    context: RewriteContext,
    target: ast.ColumnRef,
    available: List[ast.ColumnRef],
    block: QueryBlock,
) -> Tuple[bool, str]:
    """Is ``target`` functionally determined by ``available`` columns?

    Only same-binding determination is used (an FD speaks about one
    table's rows).  Returns (yes/no, source description).
    """
    table_name = block.table_for_binding(target.table or "")
    if table_name is None:
        return False, ""
    same_binding = {
        ref.column for ref in available if ref.table == target.table
    }
    for determinants, dependents, source in _fds_for_table(context, table_name):
        if determinants <= same_binding and target.column in dependents:
            return True, source
    return False, ""


def _simplify_group_by(block: QueryBlock, context: RewriteContext) -> None:
    keys: List[ast.ColumnRef] = [
        key for key in block.group_by if isinstance(key, ast.ColumnRef)
    ]
    if len(keys) != len(block.group_by):
        return  # non-column keys: leave untouched
    kept = list(keys)
    for key in keys:
        others = [other for other in kept if other != key]
        if not others:
            continue
        determined, source = _determined(context, key, others, block)
        if determined:
            kept = others
            block.group_carried.append(key)
            if source.startswith("sc:"):
                context.depend_on(source[3:])
            context.record(
                "groupby_simplification",
                f"dropped {key.qualified} from GROUP BY ({source})",
            )
    block.group_by = list(kept)


def _simplify_order_by(block: QueryBlock, context: RewriteContext) -> None:
    """Drop trailing ORDER BY keys determined by the preceding keys."""
    kept: List[Tuple[ast.Expression, bool]] = []
    prefix: List[ast.ColumnRef] = []
    for expression, ascending in block.order_by:
        if isinstance(expression, ast.ColumnRef) and expression.table is not None and prefix:
            determined, source = _determined(context, expression, prefix, block)
            if determined:
                if source.startswith("sc:"):
                    context.depend_on(source[3:])
                context.record(
                    "groupby_simplification",
                    f"dropped {expression.qualified} from ORDER BY ({source})",
                )
                continue
        kept.append((expression, ascending))
        if isinstance(expression, ast.ColumnRef):
            prefix.append(expression)
    block.order_by = kept
