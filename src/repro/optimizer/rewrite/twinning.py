"""Twinned predicates for cardinality estimation (paper Section 5.1).

"The main difference is that unlike with the exploitation in the query
rewrite engine, the generated predicates are not actually applied.  We
mark these predicates as special predicates for use in the optimizer
only.  This allows us to make use of constraints that are not necessarily
valid for all the data."

For every ACTIVE soft constraint (absolute or statistical) relating two
columns of a bound table, if the query constrains one column, the implied
interval on the other is attached to the block as an
:class:`~repro.optimizer.logical.EstimationPredicate` carrying the SC's
*effective* confidence (stated confidence degraded by the currency model's
staleness margin, Section 3.3).  The cardinality estimator consolidates
these with the query's own predicates; the executor never sees them.
"""

from __future__ import annotations

from typing import Dict, List

from repro.optimizer.logical import EstimationPredicate, LogicalPlan, QueryBlock
from repro.optimizer.rewrite import derive
from repro.optimizer.rewrite.engine import RewriteContext, map_blocks
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.linear import LinearCorrelationSC
from repro.sql import ast
from repro.sql.printer import sql_of


def add_twinned_predicates(
    plan: LogicalPlan, context: RewriteContext
) -> LogicalPlan:
    if not context.config.enable_twinning:
        return plan
    return map_blocks(plan, lambda block: _twin_in_block(block, context))


def _twin_in_block(block: QueryBlock, context: RewriteContext) -> QueryBlock:
    if context.registry is None:
        return block
    for bound in block.tables:
        for constraint in context.registry.estimation_usable(bound.table_name):
            if isinstance(constraint, LinearCorrelationSC):
                _twin_linear(block, bound.binding, constraint, context)
            elif isinstance(constraint, CheckSoftConstraint):
                _twin_difference(block, bound.binding, constraint, context)
        _hint_difference_predicates(block, bound.binding, bound.table_name, context)
    _twin_join_linear(block, context)
    return block


def _hint_difference_predicates(
    block: QueryBlock,
    binding: str,
    table_name: str,
    context: RewriteContext,
) -> None:
    """Selectivity hints for difference predicates (paper §5.1, closing
    example: "finding the number of projects completed in 5 days.  The
    predicate used in the query could be end_date - start_date <= 5").

    Check SCs held at several confidence levels give points of the
    difference's distribution: P(x - y <= bound_i) ~= confidence_i — the
    concrete answer to the paper's "should the database also keep eps_70
    and eps_80?".  Interpolating through the points estimates the query's
    own bound; without any SC the estimator would fall back to a blind
    default constant.
    """
    assert context.registry is not None
    points: Dict[tuple, List[tuple]] = {}
    for constraint in context.registry.estimation_usable(table_name):
        if not isinstance(constraint, CheckSoftConstraint):
            continue
        confidence = _effective_confidence(context, constraint)
        for bound in derive.difference_bounds(constraint.expression):
            points.setdefault((bound.x, bound.y), []).append(
                (bound.bound, confidence, constraint.name)
            )
    if not points:
        return
    from repro.expr import analysis

    existing = {p.expression for p in block.estimation_predicates}
    for conjunct in block.predicates:
        if analysis.tables_in(conjunct) != {binding}:
            continue
        query_bounds = derive.difference_bounds(conjunct)
        if len(query_bounds) != 1:
            continue
        query_bound = query_bounds[0]
        confidence_points = points.get((query_bound.x, query_bound.y))
        if not confidence_points or conjunct in existing:
            continue
        fraction = _interpolate_fraction(
            query_bound.bound,
            [(b, c) for b, c, _ in confidence_points],
        )
        sources = sorted({name for _, _, name in confidence_points})
        block.estimation_predicates.append(
            EstimationPredicate(
                expression=conjunct,
                confidence=1.0,
                source=",".join(sources),
                fraction_override=fraction,
            )
        )
        context.estimation_notes.append(
            f"difference hint: P({query_bound.x} - {query_bound.y} <= "
            f"{query_bound.bound:g}) ~= {fraction:.3f} "
            f"[from {', '.join(sources)}]"
        )


def _interpolate_fraction(bound: float, points: List[tuple]) -> float:
    """Estimate P(difference <= bound) from (bound_i, confidence_i) points.

    Piecewise-linear through the sorted points; below the smallest point
    the curve runs linearly through the origin (differences are bounded
    below by the SC family's structure); above the largest it clamps to
    that point's confidence (a sound lower estimate).
    """
    ordered = sorted(points)
    smallest_bound, smallest_conf = ordered[0]
    largest_bound, largest_conf = ordered[-1]
    if bound >= largest_bound:
        return min(1.0, largest_conf)
    if bound <= smallest_bound:
        if smallest_bound <= 0:
            return max(0.0, min(1.0, smallest_conf))
        return max(0.0, min(1.0, smallest_conf * bound / smallest_bound))
    for (b_low, c_low), (b_high, c_high) in zip(ordered, ordered[1:]):
        if b_low <= bound <= b_high:
            if b_high == b_low:
                return max(0.0, min(1.0, c_high))
            weight = (bound - b_low) / (b_high - b_low)
            return max(0.0, min(1.0, c_low + weight * (c_high - c_low)))
    return max(0.0, min(1.0, largest_conf))


def _twin_join_linear(block: QueryBlock, context: RewriteContext) -> None:
    """Estimation-only bands from inter-table correlations (any confidence)."""
    from repro.expr import analysis
    from repro.optimizer.rewrite.predicate_introduction import (
        _join_path_present,
    )
    from repro.softcon.joinlinear import JoinLinearSC

    assert context.registry is not None
    seen = set()
    for constraint in context.registry.estimation_usable():
        if not isinstance(constraint, JoinLinearSC) or constraint.name in seen:
            continue
        seen.add(constraint.name)
        one_binding = block.binding_of(constraint.table_one)
        two_binding = block.binding_of(constraint.table_two)
        if one_binding is None or two_binding is None:
            continue
        if not _join_path_present(block, constraint, one_binding, two_binding):
            continue
        confidence = _effective_confidence(context, constraint)
        b_range = analysis.column_interval(
            block.predicates, ast.ColumnRef(constraint.column_b, two_binding)
        )
        if not b_range.is_unbounded:
            _attach(
                block,
                one_binding,
                constraint.column_a,
                constraint.predict_a_interval(b_range),
                confidence,
                constraint.name,
                context,
            )
        a_range = analysis.column_interval(
            block.predicates, ast.ColumnRef(constraint.column_a, one_binding)
        )
        if not a_range.is_unbounded:
            _attach(
                block,
                two_binding,
                constraint.column_b,
                constraint.predict_b_interval(a_range),
                confidence,
                constraint.name,
                context,
            )


def _effective_confidence(context: RewriteContext, constraint) -> float:
    assert context.registry is not None
    return context.registry.effective_confidence(constraint)


def _attach(
    block: QueryBlock,
    binding: str,
    column: str,
    interval,
    confidence: float,
    constraint_name: str,
    context: RewriteContext,
    linked_columns: tuple = (),
) -> None:
    if interval.is_unbounded or interval.is_empty:
        return
    from repro.expr import analysis

    existing = analysis.column_interval(
        block.predicates, ast.ColumnRef(column, binding)
    )
    if existing.is_unbounded:
        # DB2 twinning pairs the generated predicate with an *existing*
        # predicate on the target column (the paper: "we now have two
        # predicates on the start_date column").  A twin on an otherwise
        # unconstrained column would be multiplied as if independent of
        # the predicate that implied it — an unsound double count.
        return
    if interval.contains_interval(existing):
        return  # the query already implies the twin — nothing to gain
    predicate = derive.interval_to_predicate(column, binding, interval)
    if predicate is None:
        return
    existing = {e.expression for e in block.estimation_predicates}
    if predicate in existing:
        return
    block.estimation_predicates.append(
        EstimationPredicate(
            expression=predicate,
            confidence=confidence,
            source=constraint_name,
            linked_columns=linked_columns,
        )
    )
    context.estimation_notes.append(
        f"twinned ({confidence * 100:.0f}%): {sql_of(predicate)} "
        f"[from {constraint_name}]"
    )


def _twin_linear(
    block: QueryBlock,
    binding: str,
    constraint: LinearCorrelationSC,
    context: RewriteContext,
) -> None:
    columns = [constraint.column_a, constraint.column_b]
    known = derive.known_intervals_for_binding(
        block.predicates, binding, columns
    )
    confidence = _effective_confidence(context, constraint)
    linked = (constraint.column_a, constraint.column_b)
    for target in columns:
        interval = derive.derive_for_linear_sc(constraint, target, known)
        _attach(
            block, binding, target, interval, confidence, constraint.name,
            context, linked_columns=linked,
        )


def _twin_difference(
    block: QueryBlock,
    binding: str,
    constraint: CheckSoftConstraint,
    context: RewriteContext,
) -> None:
    bounds = derive.difference_bounds(constraint.expression)
    if not bounds:
        return
    columns = sorted({b.x for b in bounds} | {b.y for b in bounds})
    known = derive.known_intervals_for_binding(
        block.predicates, binding, columns
    )
    if not known:
        return
    confidence = _effective_confidence(context, constraint)
    linked = tuple(columns)
    for target in columns:
        interval = derive.derive_interval_from_bounds(bounds, target, known)
        _attach(
            block, binding, target, interval, confidence, constraint.name,
            context, linked_columns=linked,
        )
