"""ASC-as-AST routing: exception-table union plans (paper Section 4.4).

Given a query over a base table that carries an exception table (the
materialized violations of a soft constraint), the query can be answered
as

    (SELECT ... FROM base WHERE query-preds AND introduced-pred)
    UNION ALL
    (SELECT ... FROM exceptions WHERE query-preds)

The introduced predicate is implied *for conforming rows* by the SC and
the query's own predicates; rows where it fails are — by construction —
in the exception table, so the union is exact regardless of the SC's
confidence.  ``UNION ALL`` is safe because the branches are disjoint
("we know that the two sub-queries must return mutually distinct tuples").

The rewrite fires only when the introduced predicate would actually open
an index path on the base table (the cost-based justification), and only
for plain blocks (no grouping/distinct — aggregation does not distribute
over UNION ALL).
"""

from __future__ import annotations

from typing import Optional

from repro.expr import analysis
from repro.optimizer.logical import LogicalPlan, QueryBlock, UnionPlan
from repro.optimizer.rewrite import derive
from repro.optimizer.rewrite.engine import RewriteContext
from repro.softcon.base import SCState
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.exceptions_ast import ExceptionTable
from repro.softcon.linear import LinearCorrelationSC
from repro.sql import ast


def route_through_exceptions(
    plan: LogicalPlan, context: RewriteContext
) -> LogicalPlan:
    if not context.config.enable_ast_routing:
        return plan
    if isinstance(plan, UnionPlan):
        # Routing inside an existing union is possible but the nesting buys
        # nothing extra for the paper's experiments; keep it simple.
        return plan
    routed = _route_block(plan, context)
    return routed if routed is not None else plan


def _route_block(
    block: QueryBlock, context: RewriteContext
) -> Optional[UnionPlan]:
    if len(block.tables) != 1 or block.is_grouped or block.distinct:
        return None
    bound = block.tables[0]
    for name, definition in context.database.catalog.summary_tables().items():
        if not isinstance(definition, ExceptionTable):
            continue
        if definition.base_table != bound.table_name:
            continue
        constraint = definition.constraint
        if constraint.state is not SCState.ACTIVE:
            continue
        introduced = _derive_introduced(block, bound.binding, constraint)
        if introduced is None:
            continue
        column, interval = introduced
        if not _opens_index_path(context, bound.table_name, column):
            continue
        predicate = derive.interval_to_predicate(
            column, bound.binding, interval
        )
        if predicate is None:
            continue
        conforming = block.copy()
        conforming.order_by = []
        conforming.limit = None
        # The conforming branch carries the SC's own condition — that is
        # what makes it exactly disjoint from the exception table (which
        # holds the NOT-condition rows).  The derived range is *implied*
        # by (condition AND query predicates); it is added purely to open
        # the index access path.
        condition = _condition_expression(constraint, bound.binding)
        conforming.predicates = list(block.predicates) + [condition, predicate]
        exceptions = block.copy()
        exceptions.order_by = []
        exceptions.limit = None
        exceptions.tables = [
            type(bound)(definition.name, bound.binding)
        ]
        context.depend_on(constraint.name)
        context.record(
            "ast_routing",
            f"routed {bound.table_name} through exception AST "
            f"{definition.name} (introduced range on "
            f"{bound.binding}.{column})",
        )
        return UnionPlan(
            blocks=[conforming, exceptions],
            order_by=block.order_by,
            limit=block.limit,
        )
    return None


def _condition_expression(constraint, binding: str) -> ast.Expression:
    """The SC's defining condition, qualified to the query's binding."""
    from repro.expr import analysis

    if isinstance(constraint, LinearCorrelationSC):
        expression = constraint.introduced_predicate(
            ast.ColumnRef(constraint.column_b), qualifier=None
        )
    else:
        expression = constraint.expression
    mapping = {
        reference.column: ast.ColumnRef(reference.column, binding)
        for reference in analysis.columns_in(expression)
    }
    qualified = analysis.substitute_columns(expression, mapping)
    # The exception table holds rows where the condition is *False*;
    # UNKNOWN rows (NULLs) satisfy a CHECK, so the conforming branch must
    # accept them too: condition IS NOT FALSE, spelled in 3VL as
    # ``condition OR (condition IS NULL)``.
    return ast.BinaryOp("or", qualified, ast.IsNullExpr(qualified))


def _derive_introduced(
    block: QueryBlock, binding: str, constraint
) -> Optional[tuple]:
    """(column, interval) the SC implies for conforming rows, if any."""
    if isinstance(constraint, LinearCorrelationSC):
        columns = [constraint.column_a, constraint.column_b]
        known = derive.known_intervals_for_binding(
            block.predicates, binding, columns
        )
        for target in columns:
            if target in known:
                continue
            interval = derive.derive_for_linear_sc(constraint, target, known)
            if not interval.is_unbounded:
                return target, interval
        return None
    if isinstance(constraint, CheckSoftConstraint):
        bounds = derive.difference_bounds(constraint.expression)
        if not bounds:
            return None
        columns = sorted({b.x for b in bounds} | {b.y for b in bounds})
        known = derive.known_intervals_for_binding(
            block.predicates, binding, columns
        )
        for target in columns:
            if target in known:
                continue
            interval = derive.derive_interval_from_bounds(bounds, target, known)
            if not interval.is_unbounded:
                return target, interval
    return None


def _opens_index_path(
    context: RewriteContext, table_name: str, column: str
) -> bool:
    if not context.config.introduce_only_with_index:
        return True
    return (
        context.database.catalog.find_index(table_name, [column]) is not None
    )
