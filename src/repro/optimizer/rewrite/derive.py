"""Deriving implied predicates from constraint statements.

Shared by predicate introduction, AST routing, and twinning.  Two
derivation sources:

* **linear correlation SCs** — ``a ~= k*b + c ± eps`` maps an interval on
  ``b`` to an interval on ``a`` (and, for ``k != 0``, back again);
* **difference bounds** — CHECK-style statements whose expression is a
  conjunction of forms like ``x <= y + c``, ``x - y <= c`` or
  ``x BETWEEN y + c1 AND y + c2`` (the paper's ``ship_date`` /
  ``order_date`` and ``start_date`` / ``end_date`` examples).  Each is
  normalized to ``x - y <= c``; an interval on one column then implies an
  interval on the other.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.expr import analysis
from repro.expr.intervals import Interval
from repro.sql import ast
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.linear import LinearCorrelationSC


class DifferenceBound:
    """``x - y <= bound`` between two columns of one table."""

    __slots__ = ("x", "y", "bound")

    def __init__(self, x: str, y: str, bound: float) -> None:
        self.x = x
        self.y = y
        self.bound = bound

    def __repr__(self) -> str:
        return f"DifferenceBound({self.x} - {self.y} <= {self.bound})"


def difference_bounds(expression: ast.Expression) -> List[DifferenceBound]:
    """Extract every ``x - y <= c`` bound implied by the expression.

    Recognizes conjunctions of:

    * ``x <= y + c`` / ``x <= y - c`` / ``x <= y``  (and ``<``, ``>=``,
      ``>`` flipped forms),
    * ``x - y <= c`` and variants,
    * ``x BETWEEN y + c1 AND y + c2``.

    Unrecognized conjuncts contribute nothing (sound: fewer bounds).
    The expression is normalized first, so negated forms like
    ``NOT (x > y + c)`` are recognized as ``x <= y + c``.
    """
    from repro.expr.normalize import normalize

    bounds: List[DifferenceBound] = []
    for conjunct in analysis.split_conjuncts(normalize(expression)):
        bounds.extend(_bounds_of_conjunct(conjunct))
    return bounds


def _bounds_of_conjunct(node: ast.Expression) -> List[DifferenceBound]:
    if isinstance(node, ast.BetweenExpr) and not node.negated:
        low = _column_plus_constant(node.low)
        high = _column_plus_constant(node.high)
        operand = node.operand
        if not isinstance(operand, ast.ColumnRef):
            return []
        results = []
        if low is not None:
            # operand >= y + c_low  ==>  y - operand <= -c_low
            results.append(
                DifferenceBound(low[0], operand.column, -low[1])
            )
        if high is not None:
            # operand <= y + c_high  ==>  operand - y <= c_high
            results.append(
                DifferenceBound(operand.column, high[0], high[1])
            )
        return results
    if not isinstance(node, ast.BinaryOp):
        return []
    if node.op not in ("<=", "<", ">=", ">"):
        return []
    # Normalize to left <= right (strictness folded into the bound for
    # integer-like domains is skipped; <= of the same bound stays sound).
    if node.op in ("<=", "<"):
        left, right = node.left, node.right
    else:
        left, right = node.right, node.left
    left_difference = _column_minus_column(left)
    if left_difference is not None and analysis.is_constant(right):
        x, y, shift = left_difference
        constant = _as_number(analysis.constant_value(right))
        if constant is None:
            return []
        # (x - y + shift) <= c  ==>  x - y <= c - shift
        return [DifferenceBound(x, y, constant - shift)]
    left_term = _column_plus_constant(left)
    right_term = _column_plus_constant(right)
    if left_term is not None and right_term is not None:
        x, x_shift = left_term
        y, y_shift = right_term
        # x + x_shift <= y + y_shift  ==>  x - y <= y_shift - x_shift
        return [DifferenceBound(x, y, y_shift - x_shift)]
    return []


def _column_plus_constant(
    node: ast.Expression,
) -> Optional[Tuple[str, float]]:
    """Match ``column``, ``column + c`` or ``column - c``."""
    if isinstance(node, ast.ColumnRef):
        return node.column, 0.0
    if isinstance(node, ast.BinaryOp) and node.op in ("+", "-"):
        if isinstance(node.left, ast.ColumnRef) and analysis.is_constant(node.right):
            constant = _as_number(analysis.constant_value(node.right))
            if constant is None:
                return None
            sign = 1.0 if node.op == "+" else -1.0
            return node.left.column, sign * constant
        if (
            node.op == "+"
            and isinstance(node.right, ast.ColumnRef)
            and analysis.is_constant(node.left)
        ):
            constant = _as_number(analysis.constant_value(node.left))
            if constant is None:
                return None
            return node.right.column, constant
    return None


def _column_minus_column(
    node: ast.Expression,
) -> Optional[Tuple[str, str, float]]:
    """Match ``x - y`` (optionally ± constant); returns (x, y, shift)."""
    if (
        isinstance(node, ast.BinaryOp)
        and node.op == "-"
        and isinstance(node.left, ast.ColumnRef)
        and isinstance(node.right, ast.ColumnRef)
    ):
        return node.left.column, node.right.column, 0.0
    return None


def _as_number(value: object) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


# ---------------------------------------------------------------------------
# Interval derivation
# ---------------------------------------------------------------------------


def derive_interval_from_bounds(
    bounds: List[DifferenceBound],
    target_column: str,
    known: Dict[str, Interval],
) -> Interval:
    """The interval implied for ``target_column`` by difference bounds.

    For each bound ``x - y <= c``:

    * with ``x == target``: ``x <= y + c`` so ``x_high <= known[y].high + c``;
    * with ``y == target``: ``y >= x - c`` so ``y_low >= known[x].low - c``.
    """
    result = Interval.unbounded()
    for bound in bounds:
        if bound.x == target_column and bound.y in known:
            other = known[bound.y]
            if other.high is not None:
                result = result.intersect(
                    Interval.at_most(float(other.high) + bound.bound)
                )
        if bound.y == target_column and bound.x in known:
            other = known[bound.x]
            if other.low is not None:
                result = result.intersect(
                    Interval.at_least(float(other.low) - bound.bound)
                )
    return result


def derive_for_check_sc(
    constraint: CheckSoftConstraint,
    target_column: str,
    known: Dict[str, Interval],
) -> Interval:
    """Interval for a column implied by a check SC and known intervals."""
    bounds = difference_bounds(constraint.expression)
    return derive_interval_from_bounds(bounds, target_column, known)


def derive_for_linear_sc(
    constraint: LinearCorrelationSC,
    target_column: str,
    known: Dict[str, Interval],
) -> Interval:
    """Interval for a column implied by a linear SC and known intervals.

    Works in both directions: B bounded implies A bounded via the model;
    A bounded implies B bounded via the inverted model (slope != 0).
    """
    if target_column == constraint.column_a and constraint.column_b in known:
        return constraint.predict_interval_for_b_range(
            known[constraint.column_b]
        )
    if (
        target_column == constraint.column_b
        and constraint.column_a in known
        and constraint.slope != 0.0
    ):
        inverted = LinearCorrelationSC(
            name=f"{constraint.name}__inv",
            table_name=constraint.table_name,
            column_a=constraint.column_b,
            column_b=constraint.column_a,
            slope=1.0 / constraint.slope,
            intercept=-constraint.intercept / constraint.slope,
            epsilon=constraint.epsilon / abs(constraint.slope),
            confidence=constraint.confidence,
        )
        return inverted.predict_interval_for_b_range(known[constraint.column_a])
    return Interval.unbounded()


def interval_to_predicate(
    column: str, binding: Optional[str], interval: Interval
) -> Optional[ast.Expression]:
    """Render an interval as a predicate on a (qualified) column."""
    if interval.is_unbounded:
        return None
    reference = ast.ColumnRef(column, binding)
    if interval.is_empty:
        return ast.Literal(False)
    if interval.low is not None and interval.high is not None:
        if interval.low_inclusive and interval.high_inclusive:
            return ast.BetweenExpr(
                reference, ast.Literal(interval.low), ast.Literal(interval.high)
            )
        conjuncts = []
        low_op = ">=" if interval.low_inclusive else ">"
        high_op = "<=" if interval.high_inclusive else "<"
        conjuncts.append(
            ast.BinaryOp(low_op, reference, ast.Literal(interval.low))
        )
        conjuncts.append(
            ast.BinaryOp(high_op, reference, ast.Literal(interval.high))
        )
        return analysis.conjoin(conjuncts)
    if interval.low is not None:
        op = ">=" if interval.low_inclusive else ">"
        return ast.BinaryOp(op, reference, ast.Literal(interval.low))
    op = "<=" if interval.high_inclusive else "<"
    return ast.BinaryOp(op, reference, ast.Literal(interval.high))


def known_intervals_for_binding(
    predicates: List[ast.Expression], binding: str, columns: List[str]
) -> Dict[str, Interval]:
    """Per-column intervals the query already implies for one binding."""
    known: Dict[str, Interval] = {}
    for column in columns:
        interval = analysis.column_interval(
            predicates, ast.ColumnRef(column, binding)
        )
        if not interval.is_unbounded:
            known[column] = interval
    return known
