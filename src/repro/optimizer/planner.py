"""The optimizer facade: parse → bind → rewrite → cost-based compile.

:class:`Optimizer` produces :class:`~repro.optimizer.physical.PhysicalPlan`
objects; :class:`PlanCache` caches them by SQL text and registers
invalidation on the soft constraints each plan depends on, reproducing the
paper's plan-invalidation story (Section 4.1: when an ASC is overturned,
"every pre-compiled query plan that employs a violated ASC in its plan
must be dropped").
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.engine.database import Database
from repro.errors import OptimizerError
from repro.expr import analysis
from repro.optimizer.access import AccessPathSelector
from repro.optimizer.builder import build_logical_plan
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.compilation import attach_compiled_expressions
from repro.optimizer.costmodel import CostModel
from repro.optimizer.joinorder import JoinOrderOptimizer
from repro.optimizer.logical import QueryBlock, UnionPlan
from repro.optimizer.physical import (
    Distinct,
    Extend,
    GroupBy,
    Limit,
    PhysicalNode,
    PhysicalPlan,
    Project,
    Sort,
    UnionAll,
)
from repro.optimizer.rewrite.engine import RewriteContext, RewriteEngine
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.sql.printer import sql_of


@dataclass
class OptimizerConfig:
    """Feature switches for the rewrite rules and estimator.

    Every experiment's baseline is the same optimizer with the relevant
    switch off, so the benchmarks measure exactly one mechanism at a time.
    """

    enable_branch_elimination: bool = True
    enable_join_elimination: bool = True
    enable_groupby_simplification: bool = True
    enable_ast_routing: bool = True
    enable_predicate_introduction: bool = True
    enable_hole_trimming: bool = True
    enable_twinning: bool = True
    introduce_only_with_index: bool = True
    use_twinning_in_estimation: bool = True
    # Section 4.2: min/max abbreviation reads the SC's *current* bounds at
    # execution time instead of inlining them into the plan.
    enable_runtime_parameters: bool = True
    # Section 3.2: assess PROBATION constraints in a shadow rewrite pass,
    # counting the queries each would have helped.
    track_probation_usage: bool = True
    # Rows per executor batch (the vectorized pipeline's unit of work).
    # 0 selects the row-at-a-time interpreter.  Mirrors
    # repro.executor.batch.DEFAULT_BATCH_SIZE, kept literal here so the
    # optimizer package never imports the executor.
    batch_size: int = 1024
    # Columnar execution: batched operators promote columns to numpy
    # vectors with explicit null masks and evaluate predicates through
    # the vector kernels (repro.expr.vector), materializing only
    # surviving rows.  False keeps the list-based batch closures.
    columnar: bool = True
    # Morsel-parallel seq scans: >1 dispatches scan morsels to a worker
    # pool (observation-free scans only — guarded/LIMIT scans stay
    # sequential so accounting is bit-identical).  0/None here means
    # "use the REPRO_WORKERS environment default" at executor
    # construction time; kept as a plain int so the optimizer package
    # never imports the executor.
    workers: int = 0
    # Lower plan expressions to specialized closures at optimize time
    # (repro.expr.compile).  False runs the interpreted evaluate /
    # evaluate_batch oracle path unchanged — the differential escape
    # hatch.
    compile_expressions: bool = True
    # Execution feedback (repro.feedback): instrument every execution,
    # harvest actual cardinalities into a FeedbackStore, estimate in the
    # estimator's "feedback" mode, and let the plan cache drop plans whose
    # observed max q-error exceeds the threshold.  Off by default: the
    # default path does no per-row counting at all.
    collect_feedback: bool = False
    # Plan-cache invalidation bar: a cached plan whose execution shows a
    # node misestimated by at least this factor is evicted and recompiled
    # with feedback-corrected estimates.
    feedback_qerror_threshold: float = 4.0


class Optimizer:
    """Compiles SQL (or parsed statements) into physical plans."""

    def __init__(
        self,
        database: Database,
        registry: Optional[object] = None,
        config: Optional[OptimizerConfig] = None,
        feedback: Optional[object] = None,
    ) -> None:
        self.database = database
        self.registry = registry
        self.config = config or OptimizerConfig()
        self.rewrite_engine = RewriteEngine()
        # A repro.feedback.store.FeedbackStore; when present, estimation
        # runs in the estimator's "feedback" mode.
        self.feedback = feedback

    # -- public API ----------------------------------------------------------

    def optimize(
        self, query: Union[str, ast.SelectStatement, ast.UnionAll]
    ) -> PhysicalPlan:
        if isinstance(query, str):
            sql = query
            statement = parse_statement(query)
        else:
            statement = query
            sql = sql_of(statement)
        if not isinstance(statement, (ast.SelectStatement, ast.UnionAll)):
            raise OptimizerError("only SELECT statements can be optimized")
        logical = build_logical_plan(self.database, statement)
        context = RewriteContext(self.database, self.registry, self.config)
        logical = self.rewrite_engine.rewrite(logical, context)

        estimator = CardinalityEstimator(
            self.database,
            use_twinning=self.config.use_twinning_in_estimation,
            combiner="feedback" if self.feedback is not None else "independence",
            feedback=self.feedback,
        )
        cost_model = CostModel(self.database)
        if isinstance(logical, UnionPlan):
            root, names = self._compile_union(logical, estimator, cost_model)
        else:
            root, names = self._compile_block(
                logical, estimator, cost_model, with_tail=True
            )
        plan = PhysicalPlan(root, names, sql)
        plan.sc_dependencies = context.sc_dependencies
        plan.sc_value_dependencies = context.sc_value_dependencies
        plan.rewrites_applied = context.applied
        plan.estimation_notes = context.estimation_notes
        self._snapshot_versions(plan)
        if self.config.compile_expressions:
            attach_compiled_expressions(plan)
        if self.config.track_probation_usage:
            self._assess_probation(statement, context)
        return plan

    def _snapshot_versions(self, plan: PhysicalPlan) -> None:
        """Record the used constraints' versions for stale-plan detection."""
        registry = self.registry
        if registry is None or not hasattr(registry, "get"):
            return
        for name in plan.sc_dependencies:
            plan.sc_validity_snapshot[name] = registry.get(
                name
            ).validity_version
        for name in plan.sc_value_dependencies:
            plan.sc_value_snapshot[name] = registry.get(name).values_version

    def _assess_probation(
        self, statement: Union[ast.SelectStatement, ast.UnionAll],
        real_context: RewriteContext,
    ) -> None:
        """Shadow rewrite pass crediting PROBATION SCs (Section 3.2).

        Re-runs the rewrite pipeline with probation constraints treated as
        active; any probation constraint the shadow pass depends on (but
        the real pass did not) would have helped this query, so its usage
        counter is bumped.  Nothing from the shadow pass reaches the real
        plan.
        """
        registry = self.registry
        if registry is None or not hasattr(registry, "probation_names"):
            return
        probation = set(registry.probation_names())
        if not probation:
            return
        shadow_context = RewriteContext(
            self.database, registry.probation_shadow(), self.config
        )
        shadow_logical = build_logical_plan(self.database, statement)
        self.rewrite_engine.rewrite(shadow_logical, shadow_context)
        would_have_used = (
            shadow_context.sc_dependencies - real_context.sc_dependencies
        ) & probation
        for name in would_have_used:
            registry.record_probation_use(name)

    # -- compilation ------------------------------------------------------------

    def _compile_union(
        self,
        union: UnionPlan,
        estimator: CardinalityEstimator,
        cost_model: CostModel,
    ) -> tuple:
        if not union.blocks:
            raise OptimizerError("empty UNION plan")
        names = [output.name for output in union.blocks[0].output]
        inputs: List[PhysicalNode] = []
        for block in union.blocks:
            node, _ = self._compile_block(
                block,
                estimator,
                cost_model,
                with_tail=False,
                project_names=names,
            )
            inputs.append(node)
        root: PhysicalNode = UnionAll(inputs)
        root.estimated_rows = sum(n.estimated_rows for n in inputs)
        root.estimated_cost = sum(n.estimated_cost for n in inputs)
        if union.order_by:
            sort = Sort(root, list(union.order_by))
            sort.estimated_rows = root.estimated_rows
            sort.estimated_cost = cost_model.sort_cost(
                root.estimated_cost, root.estimated_rows, len(union.order_by)
            )
            root = sort
        if union.limit is not None:
            limit = Limit(root, union.limit)
            limit.estimated_rows = min(root.estimated_rows, union.limit)
            limit.estimated_cost = root.estimated_cost
            root = limit
        return root, names

    def _compile_block(
        self,
        block: QueryBlock,
        estimator: CardinalityEstimator,
        cost_model: CostModel,
        with_tail: bool,
        project_names: Optional[List[str]] = None,
    ) -> tuple:
        selector = AccessPathSelector(self.database, estimator, cost_model)
        join_enum = JoinOrderOptimizer(estimator, cost_model)

        scans: Dict[str, PhysicalNode] = {}
        for bound in block.tables:
            conjuncts = estimator.single_binding_conjuncts(block, bound.binding)
            estimation = [
                predicate
                for predicate in block.estimation_predicates
                if analysis.tables_in(predicate.expression) == {bound.binding}
            ]
            scans[bound.binding] = selector.best_scan(
                bound.table_name, bound.binding, conjuncts, estimation
            )
        node = join_enum.best_join_tree(block, scans)

        binding_tables = estimator.block_binding_tables(block)
        if block.is_grouped:
            keys = [key for key in block.group_by if isinstance(key, ast.ColumnRef)]
            group = GroupBy(
                node,
                keys,
                block.aggregates,
                block.having,
                carried=list(block.group_carried),
            )
            group.estimated_rows = estimator.group_output_rows(
                node.estimated_rows, keys, binding_tables
            )
            group.estimated_cost = cost_model.group_by_cost(
                node.estimated_cost, node.estimated_rows
            )
            node = group

        extend = Extend(node, list(block.output))
        extend.estimated_rows = node.estimated_rows
        extend.estimated_cost = cost_model.project_cost(
            node.estimated_cost, node.estimated_rows
        )
        node = extend

        if with_tail and block.order_by:
            sort = Sort(node, list(block.order_by))
            sort.estimated_rows = node.estimated_rows
            sort.estimated_cost = cost_model.sort_cost(
                node.estimated_cost, node.estimated_rows, len(block.order_by)
            )
            node = sort

        names = project_names or [output.name for output in block.output]
        source_names = [output.name for output in block.output]
        project = Project(node, names, source_names=source_names)
        project.estimated_rows = node.estimated_rows
        project.estimated_cost = cost_model.project_cost(
            node.estimated_cost, node.estimated_rows
        )
        node = project

        if block.distinct:
            distinct = Distinct(node)
            distinct.estimated_rows = max(1.0, node.estimated_rows * 0.9)
            distinct.estimated_cost = cost_model.distinct_cost(
                node.estimated_cost, node.estimated_rows
            )
            node = distinct

        if with_tail and block.limit is not None:
            limit = Limit(node, block.limit)
            limit.estimated_rows = min(node.estimated_rows, block.limit)
            limit.estimated_cost = node.estimated_cost
            node = limit
        return node, names


class PlanCache:
    """Caches compiled plans and drops them when a dependency overturns.

    Reproduces the package/plan invalidation of Section 4.1: each cached
    plan registers invalidation hooks for every soft constraint it used —
    on the *validity* channel (overturn/demotion/drop) and, for plans that
    inlined SC values, on the *values* channel (a repair changed the
    statement).  ``invalidations`` counts evictions so E8 can report the
    cost of ASC violations on a precompiled workload.

    With ``backup_plans=True`` the cache also keeps Section 4.1's
    suggested "backup plan which is ASC-free" per SC-dependent entry:
    when a dependency fires, the entry *reverts to the backup* instead of
    being evicted, so the workload keeps running without a recompile
    (``fallbacks`` counts these reversions).

    With a ``qerror_threshold``, execution feedback also invalidates:
    :meth:`note_execution` drops a cached plan whose run showed a node
    misestimated by at least the threshold factor, so the next
    ``get_plan`` recompiles it against feedback-corrected estimates.
    Unlike a constraint overturn this is a *full* eviction — reverting to
    a backup would keep the very estimates that just proved wrong.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        backup_plans: bool = False,
        qerror_threshold: Optional[float] = None,
    ) -> None:
        if qerror_threshold is not None and qerror_threshold < 1.0:
            raise OptimizerError(
                f"qerror_threshold must be >= 1.0, got {qerror_threshold}"
            )
        self.optimizer = optimizer
        self.backup_plans = backup_plans
        self.qerror_threshold = qerror_threshold
        # Sessions share one optimizer but may share a cache too; every
        # public entry point (and the invalidation hooks, which fire on
        # whichever thread committed the overturning change) takes this
        # re-entrant lock, so concurrent lookups never observe a plan
        # mid-eviction.
        self._lock = threading.RLock()
        self._plans: Dict[str, PhysicalPlan] = {}
        self._backups: Dict[str, PhysicalPlan] = {}
        self._reverted: set = set()
        # (channel, sql) pairs with a live hook in the catalog.  Catalog
        # hooks fire once (fire_invalidation pops them), so each entry is
        # discarded when its hook runs; get_plan only registers when the
        # pair is absent, preventing duplicate hooks from piling up
        # across invalidate/recompile cycles for the same SQL.
        self._hooked: set = set()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.fallbacks = 0
        self.feedback_invalidations = 0
        self.guard_invalidations = 0

    def get_plan(self, sql: str) -> PhysicalPlan:
        with self._lock:
            cached = self._plans.get(sql)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
            plan = self.optimizer.optimize(sql)
            self._plans[sql] = plan
            self._reverted.discard(sql)
            if self.backup_plans and plan.sc_dependencies:
                self._backups[sql] = self._compile_backup(sql)
            for dependency in plan.sc_dependencies:
                self._register_hook(f"softconstraint:{dependency}", sql)
            for dependency in plan.sc_value_dependencies:
                self._register_hook(
                    f"softconstraint-values:{dependency}", sql
                )
            return plan

    def _register_hook(self, channel: str, sql: str) -> None:
        key = (channel, sql)
        if key in self._hooked:
            return
        self._hooked.add(key)

        def hook(_dep: str) -> None:
            # The catalog popped this hook to fire it; the pair must be
            # re-registered on the next compile of this SQL.
            with self._lock:
                self._hooked.discard(key)
                self._invalidate(sql)

        self.optimizer.database.catalog.on_invalidate(channel, hook)

    def _compile_backup(self, sql: str) -> PhysicalPlan:
        """An equivalent plan that uses no soft constraints at all."""
        backup_optimizer = Optimizer(
            self.optimizer.database, registry=None, config=self.optimizer.config
        )
        return backup_optimizer.optimize(sql)

    def _invalidate(self, sql: str) -> None:
        with self._lock:
            self._invalidate_locked(sql)

    def _invalidate_locked(self, sql: str) -> None:
        if sql in self._reverted or sql not in self._plans:
            return
        backup = self._backups.pop(sql, None)
        if backup is not None:
            # Section 4.1: "a flag is raised and packages revert to the
            # alternative plans."
            self._plans[sql] = backup
            self._reverted.add(sql)
            self.fallbacks += 1
        else:
            del self._plans[sql]
        self.invalidations += 1

    def note_execution(self, sql: str, max_qerror: Optional[float]) -> bool:
        """Feedback-driven invalidation: drop the cached plan for ``sql``
        if its execution's worst per-node q-error crossed the threshold.

        Returns True when a plan was evicted.  The eviction is full (no
        backup reversion) so the next ``get_plan`` recompiles with the
        feedback store's corrected estimates; the reverted marker is also
        cleared so a reverted backup plan can be replaced too.
        """
        with self._lock:
            if (
                self.qerror_threshold is None
                or max_qerror is None
                or max_qerror < self.qerror_threshold
                or sql not in self._plans
            ):
                return False
            del self._plans[sql]
            self._backups.pop(sql, None)
            self._reverted.discard(sql)
            self.invalidations += 1
            self.feedback_invalidations += 1
            return True

    def note_guard_breach(self, sql: str) -> bool:
        """A guarded execution of ``sql`` breached its resource budget:
        evict the cached plan unconditionally.

        A breach is stronger evidence than any q-error — the plan did so
        much more work than predicted that governance had to stop it — so
        no threshold applies and the eviction is full (no backup
        reversion, same reasoning as :meth:`note_execution`).  Returns
        True when a plan was evicted.
        """
        with self._lock:
            if sql not in self._plans:
                return False
            del self._plans[sql]
            self._backups.pop(sql, None)
            self._reverted.discard(sql)
            self.invalidations += 1
            self.guard_invalidations += 1
            return True

    def invalidate_table(self, table_name: str) -> int:
        """Fully evict every cached plan that touches ``table_name``.

        Used when a table's physical access paths change under the cache
        (e.g. an index was rebuilt after corruption): cached plans may
        carry the old index object or estimates keyed to it.  Full
        eviction (no backup reversion — the backup reads the same table)
        so the next ``get_plan`` recompiles.  Returns the eviction count.
        """
        name = table_name.lower()
        evicted = 0
        with self._lock:
            for sql, plan in list(self._plans.items()):
                if name not in self._tables_of(plan):
                    continue
                del self._plans[sql]
                self._backups.pop(sql, None)
                self._reverted.discard(sql)
                self.invalidations += 1
                evicted += 1
        return evicted

    @staticmethod
    def _tables_of(plan: PhysicalPlan) -> set:
        tables = set()
        stack = [plan.root]
        while stack:
            node = stack.pop()
            name = getattr(node, "table_name", None)
            if name:
                tables.add(name.lower())
            stack.extend(node.children())
        return tables

    # Kept as the historical name for direct eviction in tests/tools.
    def _evict(self, sql: str) -> None:
        self._invalidate(sql)

    def __len__(self) -> int:
        return len(self._plans)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self._backups.clear()
            self._reverted.clear()
