"""Access-path selection: sequential scan vs. index scan per table.

For each base table in a block, the selector costs a sequential scan and
one index-scan candidate per index whose leading column is constrained to
an interval by the block's conjuncts (including any conjunct *introduced*
by the rewrite engine — which is exactly how a linear-correlation ASC
opens an index path, Section 2/[10]).  The cheapest wins.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.engine.database import Database
from repro.expr import analysis
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.costmodel import CostModel
from repro.optimizer.logical import EstimationPredicate
from repro.optimizer.physical import (
    EmptyResult,
    IndexScan,
    PhysicalNode,
    SeqScan,
)
from repro.sql import ast
from repro.stats.selectivity import SelectivityEstimator


class AccessPathSelector:
    """Chooses the cheapest access path for one bound table."""

    def __init__(
        self,
        database: Database,
        estimator: CardinalityEstimator,
        cost_model: CostModel,
    ) -> None:
        self.database = database
        self.estimator = estimator
        self.cost_model = cost_model

    def best_scan(
        self,
        table_name: str,
        binding: str,
        conjuncts: Sequence[ast.Expression],
        estimation_predicates: Sequence[EstimationPredicate] = (),
    ) -> PhysicalNode:
        """The cheapest scan producing this table's qualifying rows."""
        if any(_is_constant_false(conjunct) for conjunct in conjuncts):
            empty = EmptyResult(table_name, binding)
            empty.estimated_rows = 0.0
            empty.estimated_cost = 0.0
            return empty
        output_rows = self.estimator.scan_rows(
            table_name, conjuncts, estimation_predicates
        )
        predicate = analysis.conjoin(list(conjuncts))
        best: PhysicalNode = SeqScan(table_name, binding, predicate)
        best.estimated_rows = output_rows
        best.estimated_cost = self.cost_model.seq_scan_cost(
            table_name, output_rows
        )
        for candidate in self._index_candidates(
            table_name, binding, conjuncts, output_rows
        ):
            if candidate.estimated_cost < best.estimated_cost:
                best = candidate
        return best

    def _index_candidates(
        self,
        table_name: str,
        binding: str,
        conjuncts: Sequence[ast.Expression],
        output_rows: float,
    ) -> List[IndexScan]:
        candidates: List[IndexScan] = []
        table_stats = self.estimator.table_stats(table_name)
        selectivity = SelectivityEstimator(table_stats)
        base_rows = self.estimator.base_rows(table_name)
        for index in self.database.catalog.indexes_on(table_name):
            if index.quarantined:
                # A corrupted index awaiting rebuild must not be planned
                # against; the query degrades to a (correct) seq scan.
                continue
            lead_column = index.column_names[0]
            interval = analysis.column_interval(
                list(conjuncts), ast.ColumnRef(lead_column, binding)
            )
            if interval.is_unbounded:
                continue
            matching = base_rows * selectivity.interval_fraction(
                lead_column, interval
            )
            # When a bound came from a runtime parameter (Section 4.2),
            # put the parameter itself into the index key so the scan
            # reads the constraint's current value at execution time.
            low_parameter, high_parameter = _parameter_bounds(
                conjuncts, lead_column, binding, interval
            )
            low_key = low_parameter if low_parameter is not None else interval.low
            high_key = (
                high_parameter if high_parameter is not None else interval.high
            )
            node = IndexScan(
                table_name=table_name,
                binding=binding,
                index_name=index.name,
                low=None if low_key is None else (low_key,),
                high=None if high_key is None else (high_key,),
                low_inclusive=interval.low_inclusive,
                high_inclusive=interval.high_inclusive,
                predicate=analysis.conjoin(list(conjuncts)),
            )
            if self.estimator.uses_feedback:
                matching = self._corrected_matching(node, matching)
            node.estimated_rows = output_rows
            node.estimated_cost = self.cost_model.index_scan_cost(
                table_name, index.name, matching
            )
            candidates.append(node)
        return candidates

    def _corrected_matching(
        self, node: IndexScan, matching: float
    ) -> float:
        """Replace the histogram's ``matching`` estimate with the number of
        rows this exact index range was *observed* to fetch, if known.

        This is the lever that flips a wrong index choice: a stale
        histogram can claim a range is empty when drifted data made it the
        whole table (or vice versa), and only the observed fetch count —
        not any output-row correction — exposes that, because the residual
        filter hides it from the scan's output cardinality.
        """
        from repro.feedback.signatures import index_range_signature

        observed = self.estimator.feedback.matching_rows(
            node.table_name,
            node.index_name,
            index_range_signature(
                node.low, node.high, node.low_inclusive, node.high_inclusive
            ),
        )
        return matching if observed is None else max(0.0, observed)


def _is_constant_false(conjunct: ast.Expression) -> bool:
    """A conjunct the rewriter proved FALSE (or a constant that is)."""
    if isinstance(conjunct, ast.Literal):
        return conjunct.value is False
    if analysis.is_constant(conjunct):
        try:
            return analysis.constant_value(conjunct) is False
        except Exception:  # noqa: BLE001 - unevaluable constants stay live
            return False
    return False


def _parameter_bounds(conjuncts, column: str, binding: str, interval):
    """Runtime-parameter bounds on ``column`` matching the interval edges.

    Finds conjuncts of the form ``col >= PARAM`` / ``col <= PARAM`` whose
    parameter currently evaluates to the interval's corresponding bound —
    i.e., the parameter is what produced that edge — and returns
    (low_parameter, high_parameter), either possibly None.
    """
    low_parameter = None
    high_parameter = None
    wanted = ast.ColumnRef(column, binding)
    for top in conjuncts:
        for conjunct in analysis.split_conjuncts(top):
            if not isinstance(conjunct, ast.BinaryOp):
                continue
            if not (
                isinstance(conjunct.left, ast.ColumnRef)
                and analysis.same_column(conjunct.left, wanted)
                and isinstance(conjunct.right, ast.RuntimeParameter)
            ):
                continue
            value = conjunct.right.current_value()
            if conjunct.op == ">=" and value == interval.low:
                low_parameter = conjunct.right
            elif conjunct.op == "<=" and value == interval.high:
                high_parameter = conjunct.right
    return low_parameter, high_parameter
