"""Physical plan nodes.

Physical nodes are an executable tree interpreted by
:mod:`repro.executor.runtime`.  Every node carries the optimizer's
``estimated_rows`` and cumulative ``estimated_cost`` so EXPLAIN can show
estimates next to actuals and the cost model can be validated against the
executor's I/O counters.
"""

from __future__ import annotations

from typing import Any, List, Optional, Set, Tuple

from repro.optimizer.logical import Aggregate, OutputColumn
from repro.sql import ast
from repro.sql.printer import sql_of


class PhysicalNode:
    """Base class for physical operators."""

    def __init__(self) -> None:
        self.estimated_rows: float = 0.0
        self.estimated_cost: float = 0.0
        # Filled by an instrumented execution (EXPLAIN ANALYZE).
        self.actual_rows: Optional[int] = None
        # Batches this operator emitted; set only by an instrumented
        # *batched* execution (stays None row-at-a-time).
        self.actual_batches: Optional[int] = None

    def children(self) -> List["PhysicalNode"]:
        return []

    def describe(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return (
            f"<{self.describe()} rows~{self.estimated_rows:.0f} "
            f"cost~{self.estimated_cost:.0f}>"
        )


class EmptyResult(PhysicalNode):
    """A scan proven empty at optimization time (constant-FALSE predicate
    from min/max abbreviation, branch knockout, or hole trimming)."""

    def __init__(self, table_name: str, binding: str) -> None:
        super().__init__()
        self.table_name = table_name
        self.binding = binding

    def describe(self) -> str:
        return f"EmptyResult({self.table_name} AS {self.binding})"


class SeqScan(PhysicalNode):
    """Full scan of a base table with an optional pushed-down filter."""

    def __init__(
        self,
        table_name: str,
        binding: str,
        predicate: Optional[ast.Expression] = None,
    ) -> None:
        super().__init__()
        self.table_name = table_name
        self.binding = binding
        self.predicate = predicate
        # (row_fn, batch_fn) closures attached by the optimizer when
        # OptimizerConfig.compile_expressions is on; None = interpret.
        self.compiled_predicate = None
        # Input rows examined before the filter; set only when feedback
        # collection is on (may reflect a partial scan under LIMIT —
        # harvesting consults it only when ``actual_rows`` is also set).
        self.actual_rows_scanned: Optional[int] = None

    def describe(self) -> str:
        text = f"SeqScan({self.table_name} AS {self.binding}"
        if self.predicate is not None:
            text += f", filter: {sql_of(self.predicate)}"
        return text + ")"


class IndexScan(PhysicalNode):
    """B-tree range/point scan with RID fetches and a residual filter."""

    def __init__(
        self,
        table_name: str,
        binding: str,
        index_name: str,
        low: Optional[Tuple[Any, ...]] = None,
        high: Optional[Tuple[Any, ...]] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        predicate: Optional[ast.Expression] = None,
    ) -> None:
        super().__init__()
        self.table_name = table_name
        self.binding = binding
        self.index_name = index_name
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.predicate = predicate
        self.compiled_predicate = None
        # Rows the index range fetched (pre-residual-filter) — the cost
        # model's "matching" quantity; set under feedback collection.
        self.actual_rows_scanned: Optional[int] = None

    def describe(self) -> str:
        low = "-inf" if self.low is None else repr(list(self.low))
        high = "+inf" if self.high is None else repr(list(self.high))
        text = (
            f"IndexScan({self.table_name} AS {self.binding} VIA "
            f"{self.index_name} [{low}..{high}]"
        )
        if self.predicate is not None:
            text += f", filter: {sql_of(self.predicate)}"
        return text + ")"


class Filter(PhysicalNode):
    def __init__(self, child: PhysicalNode, predicate: ast.Expression) -> None:
        super().__init__()
        self.child = child
        self.predicate = predicate
        self.compiled_predicate = None

    def children(self) -> List[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Filter({sql_of(self.predicate)})"


class NestedLoopJoin(PhysicalNode):
    def __init__(
        self,
        left: PhysicalNode,
        right: PhysicalNode,
        condition: Optional[ast.Expression] = None,
    ) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.condition = condition
        self.compiled_condition = None
        # Row pairs the condition examined (|outer| x |inner|); set under
        # feedback collection.
        self.actual_pairs: Optional[int] = None

    def children(self) -> List[PhysicalNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        condition = (
            sql_of(self.condition) if self.condition is not None else "TRUE"
        )
        return f"NestedLoopJoin(on {condition})"


class HashJoin(PhysicalNode):
    """Equi-join: build on the right input, probe with the left."""

    def __init__(
        self,
        left: PhysicalNode,
        right: PhysicalNode,
        left_keys: List[ast.Expression],
        right_keys: List[ast.Expression],
        residual: Optional[ast.Expression] = None,
    ) -> None:
        super().__init__()
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.compiled_left_keys = None
        self.compiled_right_keys = None
        self.compiled_residual = None
        # Key-matched pairs before the residual filter; set under
        # feedback collection — isolates the equi edge's selectivity.
        self.actual_pairs: Optional[int] = None

    def children(self) -> List[PhysicalNode]:
        return [self.left, self.right]

    def describe(self) -> str:
        keys = ", ".join(
            f"{sql_of(l)}={sql_of(r)}"
            for l, r in zip(self.left_keys, self.right_keys)
        )
        text = f"HashJoin(on {keys}"
        if self.residual is not None:
            text += f", residual: {sql_of(self.residual)}"
        return text + ")"


class GroupBy(PhysicalNode):
    """Hash aggregation; emits group keys plus aggregate outputs."""

    def __init__(
        self,
        child: PhysicalNode,
        keys: List[ast.ColumnRef],
        aggregates: List[Aggregate],
        having: Optional[ast.Expression] = None,
        carried: Optional[List[ast.ColumnRef]] = None,
    ) -> None:
        super().__init__()
        self.child = child
        self.keys = keys
        self.aggregates = aggregates
        self.having = having
        # Columns proven group-constant by an FD and dropped from the hash
        # key; their value is taken from the group's first row.
        self.carried: List[ast.ColumnRef] = carried or []
        self.compiled_keys = None
        self.compiled_carried = None
        self.compiled_having = None
        # Parallel to ``aggregates``; None entries for COUNT(*).
        self.compiled_aggregate_args = None

    def children(self) -> List[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        keys = ", ".join(sql_of(key) for key in self.keys) or "()"
        aggs = ", ".join(
            f"{agg.function}->{agg.output_name}" for agg in self.aggregates
        )
        text = f"GroupBy(keys: {keys}"
        if aggs:
            text += f"; aggs: {aggs}"
        if self.having is not None:
            text += f"; having: {sql_of(self.having)}"
        return text + ")"


class Extend(PhysicalNode):
    """Computes output columns, adding them to the row environment."""

    def __init__(self, child: PhysicalNode, outputs: List[OutputColumn]) -> None:
        super().__init__()
        self.child = child
        self.outputs = outputs
        self.compiled_outputs = None

    def children(self) -> List[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        cols = ", ".join(
            f"{sql_of(out.expression)} AS {out.name}" for out in self.outputs
        )
        return f"Extend({cols})"


class Sort(PhysicalNode):
    def __init__(
        self,
        child: PhysicalNode,
        order: List[Tuple[ast.Expression, bool]],
    ) -> None:
        super().__init__()
        self.child = child
        self.order = order
        # Parallel to ``order``: (row_fn, batch_fn, ascending) triples.
        self.compiled_order = None
        # Rows materialized for sorting — unlike ``actual_rows`` this
        # survives LIMIT truncation (the sort input is always fully
        # materialized); set under feedback collection.
        self.actual_input_rows: Optional[int] = None

    def children(self) -> List[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        keys = ", ".join(
            sql_of(expr) + ("" if ascending else " DESC")
            for expr, ascending in self.order
        )
        return f"Sort({keys})"


class Project(PhysicalNode):
    """Narrows rows to the named output columns, in order."""

    def __init__(
        self,
        child: PhysicalNode,
        names: List[str],
        source_names: Optional[List[str]] = None,
    ) -> None:
        super().__init__()
        self.child = child
        self.names = names
        # For UNION ALL branches: the child's own column names, renamed
        # positionally to ``names`` (the union's output names).
        self.source_names = source_names or names

    def children(self) -> List[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Project({', '.join(self.names)})"


class Distinct(PhysicalNode):
    def __init__(self, child: PhysicalNode) -> None:
        super().__init__()
        self.child = child

    def children(self) -> List[PhysicalNode]:
        return [self.child]


class Limit(PhysicalNode):
    def __init__(self, child: PhysicalNode, count: int) -> None:
        super().__init__()
        self.child = child
        self.count = count

    def children(self) -> List[PhysicalNode]:
        return [self.child]

    def describe(self) -> str:
        return f"Limit({self.count})"


class UnionAll(PhysicalNode):
    def __init__(self, inputs: List[PhysicalNode]) -> None:
        super().__init__()
        self.inputs = inputs

    def children(self) -> List[PhysicalNode]:
        return list(self.inputs)

    def describe(self) -> str:
        return f"UnionAll({len(self.inputs)} branches)"


class PhysicalPlan:
    """A complete optimized plan plus its provenance.

    Attributes
    ----------
    root:
        The operator tree.
    output_names:
        Result column names, in order.
    sc_dependencies:
        Names of the soft constraints whose *validity* this plan relies
        on — the plan cache registers invalidation on these (Section 4.1).
    sc_value_dependencies:
        The subset whose concrete *values* (bounds, model parameters,
        holes) are inlined in the plan: a value-changing repair also
        invalidates these plans.
    rewrites_applied:
        Human-readable descriptions of the rewrites that fired.
    estimation_notes:
        Descriptions of estimation-only (twinned) predicates consulted.
    """

    def __init__(
        self,
        root: PhysicalNode,
        output_names: List[str],
        sql: str = "",
    ) -> None:
        self.root = root
        self.output_names = output_names
        self.sql = sql
        self.sc_dependencies: Set[str] = set()
        self.sc_value_dependencies: Set[str] = set()
        # Version snapshots at compile time, for stale-plan detection
        # (Section 4.1's transaction-conflict story): name -> version.
        self.sc_validity_snapshot: dict = {}
        self.sc_value_snapshot: dict = {}
        self.rewrites_applied: List[str] = []
        self.estimation_notes: List[str] = []
        # Expression-compilation provenance (set by the optimizer when
        # OptimizerConfig.compile_expressions is on).
        self.compiled = False
        self.compile_cache_hits = 0
        self.compile_cache_misses = 0

    @property
    def estimated_rows(self) -> float:
        return self.root.estimated_rows

    @property
    def estimated_cost(self) -> float:
        return self.root.estimated_cost

    def __repr__(self) -> str:
        return (
            f"PhysicalPlan(cost~{self.estimated_cost:.0f}, "
            f"rows~{self.estimated_rows:.0f}, "
            f"rewrites={len(self.rewrites_applied)})"
        )
