"""The cost model: I/O-dominant costing aligned with the executor.

Costs are expressed in *page-read equivalents* so the model's predictions
can be checked directly against the executor's
:class:`~repro.engine.page.IOCounters`.  CPU work is charged per tuple at
a small fraction of a page read, as in the classic System-R / DB2 models.

The geometry the model consults (page counts, index heights, leaf counts)
comes from the live catalog objects, matching exactly what the executor
will be charged at runtime — by design, so cost-model validation tests
can assert tight agreement on I/O.
"""

from __future__ import annotations

import math
from repro.engine.database import Database

SEQ_PAGE_COST = 1.0
RANDOM_PAGE_COST = 1.0  # fetches are counted, not penalized, to match IOCounters
# Simulated rows are small (~150/page), so the per-tuple CPU share of a
# page read is lower than the classic 0.01.
CPU_TUPLE_COST = 0.005
CPU_OPERATOR_COST = 0.002
HASH_BUILD_COST_PER_ROW = 0.015
SORT_CPU_PER_COMPARE = 0.005


class CostModel:
    """Computes operator costs from catalog geometry and row estimates."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # -- scans ---------------------------------------------------------------

    def seq_scan_cost(self, table_name: str, output_rows: float) -> float:
        table = self.database.table(table_name)
        pages = max(1, table.page_count)
        rows = table.row_count
        return pages * SEQ_PAGE_COST + rows * CPU_TUPLE_COST

    def index_scan_cost(
        self, table_name: str, index_name: str, matching_rows: float
    ) -> float:
        """Descent + leaf pages crossed + clustered-adjusted row fetches.

        The executor fetches rows through a one-page buffer, so over a
        clustered index consecutive fetches share pages.  Expected data
        page reads: each fetch starts a new page with probability
        ``1 - cluster_ratio`` (plus the rows-per-page floor for a
        perfectly clustered scan).
        """
        index = self.database.catalog.index(index_name)
        table = self.database.table(table_name)
        descent = index.height
        entries = len(index)
        leaf_fraction = 0.0 if entries == 0 else matching_rows / entries
        leaves = max(0.0, leaf_fraction * index.leaf_pages - 1.0)
        ratio = index.cluster_ratio()
        rows_per_page = max(1.0, table.row_count / max(1, table.page_count))
        clustered_fetches = matching_rows / rows_per_page
        fetches = (
            matching_rows * (1.0 - ratio) + clustered_fetches * ratio
        ) * RANDOM_PAGE_COST
        return (
            descent * SEQ_PAGE_COST
            + leaves * SEQ_PAGE_COST
            + max(1.0, fetches)
            + matching_rows * CPU_TUPLE_COST
        )

    # -- joins ------------------------------------------------------------------

    def nested_loop_cost(
        self,
        left_cost: float,
        left_rows: float,
        right_cost: float,
        right_rows: float,
    ) -> float:
        """Materialized inner: pay the inner's cost once, then CPU.

        The executor materializes the inner input in memory, so repeated
        passes cost CPU (predicate evaluation) rather than repeated I/O.
        """
        comparisons = left_rows * right_rows
        return left_cost + right_cost + comparisons * CPU_OPERATOR_COST

    def hash_join_cost(
        self,
        left_cost: float,
        left_rows: float,
        right_cost: float,
        right_rows: float,
    ) -> float:
        build = right_rows * HASH_BUILD_COST_PER_ROW
        probe = left_rows * CPU_TUPLE_COST
        return left_cost + right_cost + build + probe

    # -- other operators -----------------------------------------------------------

    def filter_cost(self, child_cost: float, child_rows: float) -> float:
        return child_cost + child_rows * CPU_OPERATOR_COST

    def sort_cost(
        self, child_cost: float, child_rows: float, key_count: int = 1
    ) -> float:
        rows = max(2.0, child_rows)
        compares = rows * math.log2(rows)
        return child_cost + compares * SORT_CPU_PER_COMPARE * max(1, key_count)

    def group_by_cost(self, child_cost: float, child_rows: float) -> float:
        return child_cost + child_rows * HASH_BUILD_COST_PER_ROW

    def project_cost(self, child_cost: float, child_rows: float) -> float:
        return child_cost + child_rows * CPU_OPERATOR_COST

    def distinct_cost(self, child_cost: float, child_rows: float) -> float:
        return child_cost + child_rows * HASH_BUILD_COST_PER_ROW
