"""Cardinality estimation, including the SSC twinning adjustment.

The baseline estimator is a classic System-R/DB2 model: per-column
statistics, interval consolidation for multiple range predicates on the
same column, and the *independence assumption* across columns.

The paper's contribution (Section 5.1) plugs in here: a statistical soft
constraint relates two columns, so a predicate on one can be **twinned**
into an estimation-only predicate on the other.  The twinned predicate is
consolidated with the query's own predicates on that column, and — since
the SC ties the linked columns together — the linked columns' predicates
are combined as *perfectly correlated* (the group's selectivity is the
minimum member fraction, the paper's "reducing the range predicates on
two columns to ... a single column") rather than multiplied as
independent.  The SSC's confidence blends the twinned estimate with the
plain independence estimate:

    ``estimate = confidence * with_twins + (1 - confidence) * without``

so a 100%-confidence SC pins the estimate and a weak one barely moves it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.database import Database
from repro.errors import OptimizerError
from repro.expr import analysis
from repro.expr.intervals import Interval
from repro.optimizer.logical import EstimationPredicate, QueryBlock
from repro.sql import ast
from repro.stats.runstats import TableStats
from repro.stats.selectivity import (
    DEFAULT_OTHER_SELECTIVITY,
    SelectivityEstimator,
)

DEFAULT_JOIN_SELECTIVITY = 0.1


class CardinalityEstimator:
    """Estimates row counts for blocks, scans and joins.

    ``combiner`` selects how per-column selectivities multiply:

    * ``"independence"`` — the classic product (System R / DB2);
    * ``"exp_backoff"`` — SQL-Server-style exponential backoff,
      ``s1 * s2^(1/2) * s3^(1/4) * ...`` over the selectivities sorted
      ascending: a generic hedge against correlation that needs no SC
      knowledge (the ablation baseline E5 compares twinning against);
    * ``"feedback"`` — independence, but *observed* cardinalities from a
      :class:`~repro.feedback.store.FeedbackStore` override the model
      wherever an exact signature match exists: whole scan conjunct sets,
      base-table cardinalities, join edges, and grouping key sets.
      Anything the store has never seen falls back to independence.
    """

    def __init__(
        self,
        database: Database,
        use_twinning: bool = True,
        combiner: str = "independence",
        feedback: Optional[object] = None,
    ) -> None:
        if combiner not in ("independence", "exp_backoff", "feedback"):
            raise OptimizerError(f"unknown combiner {combiner!r}")
        self.database = database
        self.use_twinning = use_twinning
        self.combiner = combiner
        self.feedback = feedback

    @property
    def uses_feedback(self) -> bool:
        return self.combiner == "feedback" and self.feedback is not None

    def _combine(self, fractions: List[float]) -> float:
        if self.combiner != "exp_backoff" or len(fractions) <= 1:
            result = 1.0
            for fraction in fractions:
                result *= fraction
            return result
        result = 1.0
        for rank, fraction in enumerate(sorted(fractions)):
            result *= fraction ** (0.5 ** rank)
        return result

    # -- statistics access -----------------------------------------------------

    def table_stats(self, table_name: str) -> Optional[TableStats]:
        return self.database.catalog.statistics(table_name)

    def base_rows(self, table_name: str) -> float:
        if self.uses_feedback:
            # A completed sequential scan observed the table's *current*
            # cardinality — fresher than a stale RUNSTATS row count.
            observed = self.feedback.base_rows(table_name)
            if observed is not None:
                return max(1.0, observed)
        stats = self.table_stats(table_name)
        if stats is not None:
            return float(stats.row_count)
        return float(self.database.table(table_name).row_count)

    def distinct_count(self, table_name: str, column_name: str) -> Optional[int]:
        stats = self.table_stats(table_name)
        if stats is None:
            return None
        column = stats.column(column_name)
        return None if column is None else column.distinct_count

    # -- single-table estimation ---------------------------------------------------

    def scan_rows(
        self,
        table_name: str,
        conjuncts: Sequence[ast.Expression],
        estimation_predicates: Sequence[EstimationPredicate] = (),
    ) -> float:
        """Estimated rows a scan of ``table_name`` yields under the
        conjuncts, with the twinning adjustment applied."""
        if self.uses_feedback:
            from repro.feedback.signatures import conjunct_signature

            observed = self.feedback.scan_rows(
                table_name, conjunct_signature(conjuncts)
            )
            if observed is not None:
                return max(0.0, observed)
        base = self.base_rows(table_name)
        plain = self.conjunction_selectivity(table_name, conjuncts)
        if not self.use_twinning or not estimation_predicates:
            return base * plain
        confidence = min(p.confidence for p in estimation_predicates)
        with_twins = self._twinned_selectivity(
            table_name, conjuncts, estimation_predicates
        )
        blended = confidence * with_twins + (1.0 - confidence) * plain
        return base * blended

    def _twinned_selectivity(
        self,
        table_name: str,
        conjuncts: Sequence[ast.Expression],
        estimation_predicates: Sequence[EstimationPredicate],
    ) -> float:
        """Selectivity assuming the twins' source SCs hold.

        Columns an SC links are (within epsilon) functions of one another,
        so the predicates on them are *not* independent: the combined
        selectivity of a linked group is the **minimum** of its members'
        interval fractions — the most selective single-column reduction,
        exactly the paper's "reducing the range predicates on two columns
        to ... a single column".  Columns outside any group, and
        non-interval predicates, multiply as usual.
        """
        estimator = SelectivityEstimator(self.table_stats(table_name))
        # Selectivity hints: the SC machinery precomputed a fraction for
        # one of the query's own conjuncts (e.g. a difference predicate).
        overrides: List[Tuple[ast.Expression, float]] = [
            (p.expression, p.fraction_override)
            for p in estimation_predicates
            if p.fraction_override is not None
        ]
        remaining_conjuncts: List[ast.Expression] = []
        override_factor = 1.0
        for conjunct in conjuncts:
            matched = next(
                (f for e, f in overrides if e == conjunct), None
            )
            if matched is not None:
                override_factor *= matched
            else:
                remaining_conjuncts.append(conjunct)
        twins = [
            p.expression
            for p in estimation_predicates
            if p.fraction_override is None
        ]
        intervals: Dict[str, Interval] = {}
        leftovers: List[ast.Expression] = []
        for conjunct in remaining_conjuncts + twins:
            bound = self._as_interval(conjunct)
            if bound is None:
                leftovers.append(conjunct)
                continue
            column, interval = bound
            current = intervals.get(column)
            intervals[column] = (
                interval if current is None else current.intersect(interval)
            )
        groups = _linked_groups(
            [p.linked_columns for p in estimation_predicates], set(intervals)
        )
        selectivity = override_factor
        grouped_columns: set = set()
        for group in groups:
            members = [c for c in group if c in intervals]
            if not members:
                continue
            grouped_columns.update(members)
            selectivity *= min(
                estimator.interval_fraction(column, intervals[column])
                for column in members
            )
        for column, interval in intervals.items():
            if column not in grouped_columns:
                selectivity *= estimator.interval_fraction(column, interval)
        for conjunct in leftovers:
            selectivity *= estimator.selectivity(conjunct)
        return max(0.0, min(1.0, selectivity))

    def conjunction_selectivity(
        self, table_name: str, conjuncts: Sequence[ast.Expression]
    ) -> float:
        """Selectivity of a conjunction with per-column interval merging.

        Range/equality predicates over the same column are intersected
        into one interval before consulting the histogram (as DB2 does);
        everything else multiplies under independence.
        """
        estimator = SelectivityEstimator(self.table_stats(table_name))
        intervals: Dict[str, Interval] = {}
        leftovers: List[ast.Expression] = []
        for conjunct in conjuncts:
            bound = self._as_interval(conjunct)
            if bound is None:
                leftovers.append(conjunct)
                continue
            column, interval = bound
            current = intervals.get(column)
            intervals[column] = (
                interval if current is None else current.intersect(interval)
            )
        fractions = [
            estimator.interval_fraction(column, interval)
            for column, interval in intervals.items()
        ] + [estimator.selectivity(conjunct) for conjunct in leftovers]
        return max(0.0, min(1.0, self._combine(fractions)))

    # ------------------------------------------------------------ internals

    @staticmethod
    def _as_interval(
        conjunct: ast.Expression,
    ) -> Optional[Tuple[str, Interval]]:
        columns = analysis.columns_in(conjunct)
        if len(columns) != 1:
            return None
        (column,) = columns
        interval = analysis.interval_of_predicate(conjunct, column)
        if interval is None:
            return None
        return column.column, interval

    # -- join estimation --------------------------------------------------------------

    def join_selectivity(
        self,
        conjunct: ast.Expression,
        binding_tables: Dict[str, str],
    ) -> float:
        """Selectivity of one cross-binding predicate.

        Equi-joins use the textbook ``1 / max(ndv_left, ndv_right)``;
        anything else falls back to a default.  In feedback mode an
        observed selectivity for the same (alias-normalized) edge wins.
        """
        equijoin = analysis.match_equijoin(conjunct)
        if self.uses_feedback:
            observed = self._observed_join_selectivity(
                conjunct, equijoin, binding_tables
            )
            if observed is not None:
                return observed
        if equijoin is None:
            return DEFAULT_OTHER_SELECTIVITY
        left, right = equijoin
        left_table = binding_tables.get(left.table or "")
        right_table = binding_tables.get(right.table or "")
        left_ndv = (
            self.distinct_count(left_table, left.column) if left_table else None
        )
        right_ndv = (
            self.distinct_count(right_table, right.column)
            if right_table
            else None
        )
        candidates = [n for n in (left_ndv, right_ndv) if n]
        if not candidates:
            return DEFAULT_JOIN_SELECTIVITY
        return 1.0 / max(candidates)

    def _observed_join_selectivity(
        self,
        conjunct: ast.Expression,
        equijoin: Optional[Tuple[ast.ColumnRef, ast.ColumnRef]],
        binding_tables: Dict[str, str],
    ) -> Optional[float]:
        from repro.feedback import signatures

        lowered = {
            binding.lower(): table
            for binding, table in binding_tables.items()
        }
        if equijoin is not None:
            signature = signatures.join_edge_signature(
                equijoin[0], equijoin[1], lowered
            )
        else:
            signature = signatures.theta_signature(conjunct, lowered)
        if signature is None:
            return None
        return self.feedback.join_selectivity(signature)

    # -- grouped output -------------------------------------------------------------------

    def group_output_rows(
        self,
        input_rows: float,
        keys: Sequence[ast.ColumnRef],
        binding_tables: Dict[str, str],
    ) -> float:
        """Estimated group count: product of key NDVs, capped by input."""
        if not keys:
            return 1.0
        if self.uses_feedback:
            from repro.feedback.signatures import group_signature

            lowered = {
                binding.lower(): table
                for binding, table in binding_tables.items()
            }
            observed = self.feedback.group_rows(
                group_signature(keys, lowered)
            )
            if observed is not None:
                return max(1.0, observed)
        product = 1.0
        for key in keys:
            table = binding_tables.get(key.table or "")
            ndv = self.distinct_count(table, key.column) if table else None
            product *= float(ndv) if ndv else max(1.0, input_rows * 0.1)
        return max(1.0, min(product, input_rows))

    # -- block-level helper ---------------------------------------------------------------

    def block_binding_tables(self, block: QueryBlock) -> Dict[str, str]:
        return {bound.binding: bound.table_name for bound in block.tables}

    def single_binding_conjuncts(
        self, block: QueryBlock, binding: str
    ) -> List[ast.Expression]:
        """The block's conjuncts that reference only ``binding``."""
        wanted = binding.lower()
        result = []
        for conjunct in block.predicates:
            tables = analysis.tables_in(conjunct)
            if tables == {wanted}:
                result.append(conjunct)
            elif not tables and not analysis.columns_in(conjunct):
                # Column-free conjuncts (e.g. a rewrite-proved FALSE) apply
                # at every scan; duplicating a constant is harmless and
                # lets the access path collapse to EmptyResult.
                result.append(conjunct)
        return result


def _linked_groups(
    linked_sets: Sequence[Tuple[str, ...]], known_columns: set
) -> List[set]:
    """Merge the twins' linked-column sets into disjoint correlation groups.

    Singleton link sets (or empty ones, from hand-built predicates) form
    no group: those twins multiply independently as before.
    """
    groups: List[set] = []
    for linked in linked_sets:
        members = {column for column in linked if column in known_columns}
        if len(members) < 2:
            continue
        overlapping = [g for g in groups if g & members]
        merged = set(members)
        for group in overlapping:
            merged |= group
            groups.remove(group)
        groups.append(merged)
    return groups
