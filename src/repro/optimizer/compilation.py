"""Attach compiled expression closures to a physical plan.

:func:`attach_compiled_expressions` walks a freshly optimized plan and
sets the ``compiled_*`` slots on every expression-bearing node (scans,
filters, join conditions/keys, group-by keys/having/carried, aggregate
arguments, extend outputs, sort keys) with ``(row_fn, batch_fn)`` pairs
from :mod:`repro.expr.compile`.  Running at ``Optimizer.optimize`` time
means :class:`~repro.optimizer.planner.PlanCache` hits reuse the
closures for free, and invalidation/backup reversion recompiles through
the shared compile cache (identical predicates hit).

Executors treat a ``None`` slot as "interpret this expression", so a
plan built with ``OptimizerConfig.compile_expressions=False`` runs the
unchanged :func:`~repro.expr.eval.evaluate` /
:func:`~repro.expr.eval.evaluate_batch` oracle path.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.expr.compile import cache_stats, compile_expr
from repro.optimizer.physical import (
    Extend,
    Filter,
    GroupBy,
    HashJoin,
    IndexScan,
    NestedLoopJoin,
    PhysicalNode,
    PhysicalPlan,
    SeqScan,
    Sort,
)
from repro.sql import ast

FnPair = Tuple[object, object]


def _pair(expression: ast.Expression) -> FnPair:
    compiled = compile_expr(expression)
    return (compiled.row, compiled.batch)


def _optional_pair(expression: Optional[ast.Expression]) -> Optional[FnPair]:
    if expression is None:
        return None
    return _pair(expression)


def attach_compiled_expressions(plan: PhysicalPlan) -> None:
    """Compile every expression in ``plan`` and record cache traffic."""
    hits_before, misses_before = cache_stats()
    _attach(plan.root)
    hits_after, misses_after = cache_stats()
    plan.compiled = True
    plan.compile_cache_hits = hits_after - hits_before
    plan.compile_cache_misses = misses_after - misses_before


def _attach(node: PhysicalNode) -> None:
    if isinstance(node, (SeqScan, IndexScan)):
        node.compiled_predicate = _optional_pair(node.predicate)
    elif isinstance(node, Filter):
        node.compiled_predicate = _pair(node.predicate)
    elif isinstance(node, NestedLoopJoin):
        node.compiled_condition = _optional_pair(node.condition)
    elif isinstance(node, HashJoin):
        node.compiled_left_keys = [_pair(key) for key in node.left_keys]
        node.compiled_right_keys = [_pair(key) for key in node.right_keys]
        node.compiled_residual = _optional_pair(node.residual)
    elif isinstance(node, GroupBy):
        node.compiled_keys = [_pair(key) for key in node.keys]
        node.compiled_carried = [_pair(col) for col in node.carried]
        node.compiled_having = _optional_pair(node.having)
        node.compiled_aggregate_args = [
            _optional_pair(agg.argument) for agg in node.aggregates
        ]
    elif isinstance(node, Extend):
        node.compiled_outputs = [_pair(out.expression) for out in node.outputs]
    elif isinstance(node, Sort):
        node.compiled_order = [
            _pair(expr) + (ascending,) for expr, ascending in node.order
        ]
    for child in node.children():
        _attach(child)
