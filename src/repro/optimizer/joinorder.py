"""Join enumeration: dynamic programming over table subsets.

Classic Selinger-style DP: plan every subset of the block's tables,
combining disjoint sub-plans with the cheapest join method.  Equi-join
conjuncts become hash joins; remaining cross-binding conjuncts become the
join's residual condition (or a nested-loop condition when no equi-join
connects the inputs).  Cartesian combinations are deferred until no
connected combination exists.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import OptimizerError
from repro.expr import analysis
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.costmodel import CostModel
from repro.optimizer.logical import QueryBlock
from repro.optimizer.physical import HashJoin, NestedLoopJoin, PhysicalNode
from repro.sql import ast

MAX_DP_TABLES = 10


class JoinOrderOptimizer:
    """Builds the cheapest join tree over a block's bound tables."""

    def __init__(
        self, estimator: CardinalityEstimator, cost_model: CostModel
    ) -> None:
        self.estimator = estimator
        self.cost_model = cost_model

    def best_join_tree(
        self,
        block: QueryBlock,
        scans: Dict[str, PhysicalNode],
    ) -> PhysicalNode:
        """Combine per-binding scans into one join tree.

        ``scans`` maps each binding to its chosen access path; its
        ``estimated_rows`` already reflect single-binding predicates.
        """
        bindings = block.bindings()
        if len(bindings) > MAX_DP_TABLES:
            raise OptimizerError(
                f"too many tables for DP join enumeration: {len(bindings)}"
            )
        if len(bindings) == 1:
            return scans[bindings[0]]
        binding_tables = self.estimator.block_binding_tables(block)
        cross_predicates = [
            conjunct
            for conjunct in block.predicates
            if len(analysis.tables_in(conjunct)) > 1
        ]

        best: Dict[frozenset, PhysicalNode] = {}
        for binding in bindings:
            best[frozenset([binding])] = scans[binding]

        for size in range(2, len(bindings) + 1):
            for subset_tuple in itertools.combinations(bindings, size):
                subset = frozenset(subset_tuple)
                plan = self._best_for_subset(
                    subset, best, cross_predicates, binding_tables
                )
                if plan is not None:
                    best[subset] = plan
        result = best.get(frozenset(bindings))
        if result is None:
            raise OptimizerError("join enumeration failed to cover all tables")
        return result

    # -- internals ------------------------------------------------------------

    def _best_for_subset(
        self,
        subset: frozenset,
        best: Dict[frozenset, PhysicalNode],
        cross_predicates: List[ast.Expression],
        binding_tables: Dict[str, str],
    ) -> Optional[PhysicalNode]:
        candidates: List[PhysicalNode] = []
        connected: List[PhysicalNode] = []
        members = sorted(subset)
        for split in range(1, 2 ** (len(members) - 1)):
            left_set = frozenset(
                member
                for at, member in enumerate(members)
                if split & (1 << at)
            )
            right_set = subset - left_set
            left = best.get(left_set)
            right = best.get(right_set)
            if left is None or right is None:
                continue
            connecting = self._connecting_predicates(
                cross_predicates, left_set, right_set, subset
            )
            node = self._join(
                left, right, connecting, subset, cross_predicates, binding_tables
            )
            candidates.append(node)
            if connecting:
                connected.append(node)
        pool = connected if connected else candidates
        if not pool:
            return None
        # Standard Selinger heuristic: a plan containing fewer Cartesian
        # products wins over a nominally cheaper one that gambles on a
        # cross join (estimates under cross joins are the least reliable).
        return min(
            pool,
            key=lambda node: (_cartesian_count(node), node.estimated_cost),
        )

    @staticmethod
    def _connecting_predicates(
        cross_predicates: Sequence[ast.Expression],
        left_set: frozenset,
        right_set: frozenset,
        subset: frozenset,
    ) -> List[ast.Expression]:
        """Predicates spanning both sides, fully contained in the subset."""
        connecting = []
        for conjunct in cross_predicates:
            tables = analysis.tables_in(conjunct)
            if (
                tables <= subset
                and tables & left_set
                and tables & right_set
            ):
                connecting.append(conjunct)
        return connecting

    def _join(
        self,
        left: PhysicalNode,
        right: PhysicalNode,
        connecting: List[ast.Expression],
        subset: frozenset,
        cross_predicates: Sequence[ast.Expression],
        binding_tables: Dict[str, str],
    ) -> PhysicalNode:
        equi_pairs: List[Tuple[ast.Expression, ast.Expression]] = []
        residual: List[ast.Expression] = []
        left_bindings = _bindings_of(left)
        for conjunct in connecting:
            match = analysis.match_equijoin(conjunct)
            if match is None:
                residual.append(conjunct)
                continue
            first, second = match
            if first.table in left_bindings:
                equi_pairs.append((first, second))
            else:
                equi_pairs.append((second, first))
        output_rows = self._subset_rows(
            subset, left, right, connecting, binding_tables
        )
        if equi_pairs:
            node: PhysicalNode = HashJoin(
                left,
                right,
                left_keys=[pair[0] for pair in equi_pairs],
                right_keys=[pair[1] for pair in equi_pairs],
                residual=analysis.conjoin(residual),
            )
            node.estimated_cost = self.cost_model.hash_join_cost(
                left.estimated_cost,
                left.estimated_rows,
                right.estimated_cost,
                right.estimated_rows,
            )
        else:
            node = NestedLoopJoin(
                left, right, condition=analysis.conjoin(residual)
            )
            node.estimated_cost = self.cost_model.nested_loop_cost(
                left.estimated_cost,
                left.estimated_rows,
                right.estimated_cost,
                right.estimated_rows,
            )
        node.estimated_rows = output_rows
        return node

    def _subset_rows(
        self,
        subset: frozenset,
        left: PhysicalNode,
        right: PhysicalNode,
        connecting: Sequence[ast.Expression],
        binding_tables: Dict[str, str],
    ) -> float:
        rows = left.estimated_rows * right.estimated_rows
        for conjunct in connecting:
            rows *= self.estimator.join_selectivity(conjunct, binding_tables)
        return max(0.0, rows)


def _cartesian_count(node: PhysicalNode) -> int:
    """Number of condition-less nested-loop joins in a subtree."""
    count = 0
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, NestedLoopJoin) and current.condition is None:
            count += 1
        stack.extend(current.children())
    return count


def _bindings_of(node: PhysicalNode) -> Set[str]:
    """The table bindings a physical subtree produces."""
    found: Set[str] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        binding = getattr(current, "binding", None)
        if binding is not None:
            found.add(binding)
        stack.extend(current.children())
    return found
