"""Binding: SQL AST → logical query blocks.

The builder resolves every name against the catalog, qualifies every
column reference with its table binding, flattens WHERE and JOIN ... ON
conditions into the block's conjunct pool, and normalizes the projection /
grouping clauses.  It rejects what the engine does not support (LEFT
JOINs, aggregates nested in scalar expressions, non-column GROUP BY keys)
with clear errors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.engine.database import Database
from repro.engine.schema import TableSchema
from repro.errors import BindError
from repro.expr import analysis
from repro.expr.normalize import normalize
from repro.optimizer.logical import (
    Aggregate,
    BoundTable,
    OutputColumn,
    QueryBlock,
    UnionPlan,
)
from repro.sql import ast


def build_logical_plan(
    database: Database, statement: Union[ast.SelectStatement, ast.UnionAll]
) -> Union[QueryBlock, UnionPlan]:
    """Bind a SELECT or UNION ALL statement into logical form."""
    if isinstance(statement, ast.UnionAll):
        blocks = [
            _build_block(database, branch) for branch in statement.branches
        ]
        _check_union_compatible(blocks)
        order_by = [
            (item.expression, item.ascending) for item in statement.order_by
        ]
        # Outer ORDER BY of a union refers to output column names.
        return UnionPlan(blocks=blocks, order_by=order_by, limit=statement.limit)
    return _build_block(database, statement)


def _check_union_compatible(blocks: List[QueryBlock]) -> None:
    widths = {len(block.output) for block in blocks}
    if len(widths) > 1:
        raise BindError(
            f"UNION ALL branches have different column counts: {sorted(widths)}"
        )


class _Binder:
    """Name resolution scope for one query block."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self.schemas: Dict[str, TableSchema] = {}  # binding -> schema
        self.tables: List[BoundTable] = []

    def add_table(self, ref: ast.TableRef) -> None:
        binding = ref.binding
        if binding in self.schemas:
            raise BindError(f"duplicate table binding {binding!r}")
        schema = self.database.table(ref.name).schema
        self.schemas[binding] = schema
        self.tables.append(BoundTable(ref.name, binding))

    def qualify(self, expression: ast.Expression) -> ast.Expression:
        """Return the expression with every column reference qualified."""
        if isinstance(expression, ast.ColumnRef):
            return self.resolve_column(expression)
        if isinstance(expression, ast.Literal):
            return expression
        if isinstance(expression, ast.UnaryOp):
            return ast.UnaryOp(expression.op, self.qualify(expression.operand))
        if isinstance(expression, ast.BinaryOp):
            return ast.BinaryOp(
                expression.op,
                self.qualify(expression.left),
                self.qualify(expression.right),
            )
        if isinstance(expression, ast.BetweenExpr):
            return ast.BetweenExpr(
                self.qualify(expression.operand),
                self.qualify(expression.low),
                self.qualify(expression.high),
                negated=expression.negated,
            )
        if isinstance(expression, ast.InExpr):
            return ast.InExpr(
                self.qualify(expression.operand),
                tuple(self.qualify(item) for item in expression.items),
                negated=expression.negated,
            )
        if isinstance(expression, ast.IsNullExpr):
            return ast.IsNullExpr(
                self.qualify(expression.operand), negated=expression.negated
            )
        if isinstance(expression, ast.FunctionCall):
            return ast.FunctionCall(
                expression.name,
                tuple(self.qualify(arg) for arg in expression.args),
                distinct=expression.distinct,
                star=expression.star,
            )
        raise BindError(f"cannot bind {type(expression).__name__}")

    def resolve_column(self, column: ast.ColumnRef) -> ast.ColumnRef:
        if column.table is not None:
            schema = self.schemas.get(column.table)
            if schema is None:
                raise BindError(f"unknown table binding {column.table!r}")
            if column.column not in schema:
                raise BindError(
                    f"table {column.table!r} has no column {column.column!r}"
                )
            return column
        owners = [
            binding
            for binding, schema in self.schemas.items()
            if column.column in schema
        ]
        if not owners:
            raise BindError(f"unknown column {column.column!r}")
        if len(owners) > 1:
            raise BindError(
                f"ambiguous column {column.column!r} (in {sorted(owners)})"
            )
        return ast.ColumnRef(column.column, owners[0])


def _build_block(
    database: Database, statement: ast.SelectStatement
) -> QueryBlock:
    binder = _Binder(database)
    block = QueryBlock()
    conjuncts: List[ast.Expression] = []
    if not statement.from_clause:
        raise BindError("SELECT without FROM is not supported")
    for item in statement.from_clause:
        conjuncts.extend(_bind_from_item(binder, item))
    block.tables = binder.tables

    if statement.where is not None:
        normalized = normalize(statement.where)
        conjuncts.extend(analysis.split_conjuncts(normalized))
    block.predicates = [binder.qualify(conjunct) for conjunct in conjuncts]

    # -- grouping ----------------------------------------------------------
    group_keys = [binder.qualify(expr) for expr in statement.group_by]
    for key in group_keys:
        if not isinstance(key, ast.ColumnRef):
            raise BindError("GROUP BY keys must be plain columns")
    block.group_by = group_keys

    has_aggregates = any(
        item.expression is not None
        and analysis.contains_aggregate(item.expression)
        for item in statement.select_items
    ) or (
        statement.having is not None
        and analysis.contains_aggregate(statement.having)
    )
    grouped = bool(group_keys) or has_aggregates

    # -- projection ------------------------------------------------------------
    used_names: Dict[str, int] = {}
    for item in statement.select_items:
        for output in _bind_select_item(binder, item, block, grouped, used_names):
            block.output.append(output)

    if grouped:
        _validate_grouped_outputs(block)

    # -- having -------------------------------------------------------------------
    if statement.having is not None:
        if not grouped:
            raise BindError("HAVING requires GROUP BY or aggregates")
        block.having = _rewrite_having(
            binder.qualify(statement.having), block, used_names
        )

    # -- order by / limit / distinct --------------------------------------------------
    output_names = {output.name for output in block.output}
    for order in statement.order_by:
        expression = order.expression
        if grouped and analysis.contains_aggregate(expression):
            bound = _rewrite_having(binder.qualify(expression), block, used_names)
        else:
            # Prefer binding to a table column (so FD-based ORDER BY
            # simplification can reason about it); fall back to an output
            # alias when the name is not a column in scope.
            try:
                bound = binder.qualify(expression)
            except BindError:
                if (
                    isinstance(expression, ast.ColumnRef)
                    and expression.table is None
                    and expression.column in output_names
                ):
                    bound = expression
                else:
                    raise
        block.order_by.append((bound, order.ascending))
    block.limit = statement.limit
    block.distinct = statement.distinct
    return block


def _bind_from_item(
    binder: _Binder, item: Union[ast.TableRef, ast.Join]
) -> List[ast.Expression]:
    """Register tables; returns the join conditions found."""
    if isinstance(item, ast.TableRef):
        binder.add_table(item)
        return []
    if item.kind == "left":
        raise BindError("LEFT JOIN is not supported by this engine")
    conditions = _bind_from_item(binder, item.left)
    conditions += _bind_from_item(binder, item.right)
    if item.condition is not None:
        normalized = normalize(item.condition)
        conditions += analysis.split_conjuncts(normalized)
    return conditions


def _bind_select_item(
    binder: _Binder,
    item: ast.SelectItem,
    block: QueryBlock,
    grouped: bool,
    used_names: Dict[str, int],
) -> List[OutputColumn]:
    if item.star:
        return _expand_star(binder, item.star_table, used_names)
    assert item.expression is not None
    expression = binder.qualify(item.expression)
    if analysis.contains_aggregate(expression):
        if not isinstance(expression, ast.FunctionCall) or not expression.is_aggregate:
            raise BindError(
                "aggregates may not be nested inside scalar expressions"
            )
        name = item.alias or _fresh_name(expression.name, used_names)
        argument = None if expression.star else expression.args[0]
        if argument is None and not expression.star:
            raise BindError(f"{expression.name.upper()} needs an argument")
        block.aggregates.append(
            Aggregate(
                function=expression.name,
                argument=argument,
                distinct=expression.distinct,
                output_name=name,
            )
        )
        return [OutputColumn(ast.ColumnRef(name), name)]
    if isinstance(expression, ast.ColumnRef):
        default_name = expression.column
    else:
        default_name = None
    name = item.alias or _fresh_name(default_name or "col", used_names, default_name is not None)
    return [OutputColumn(expression, name)]


def _expand_star(
    binder: _Binder, star_table: Optional[str], used_names: Dict[str, int]
) -> List[OutputColumn]:
    bindings = (
        [star_table] if star_table is not None else list(binder.schemas)
    )
    outputs: List[OutputColumn] = []
    for binding in bindings:
        schema = binder.schemas.get(binding)
        if schema is None:
            raise BindError(f"unknown table binding {binding!r}")
        for column in schema.columns:
            name = _fresh_name(column.name, used_names, True)
            outputs.append(
                OutputColumn(ast.ColumnRef(column.name, binding), name)
            )
    return outputs


def _fresh_name(
    base: str, used_names: Dict[str, int], keep_first: bool = False
) -> str:
    """Allocate a unique output name (``x``, ``x_2``, ``x_3``...)."""
    count = used_names.get(base, 0)
    used_names[base] = count + 1
    if count == 0 and (keep_first or base != "col"):
        return base
    return f"{base}_{count + 1}" if base != "col" else f"col{count + 1}"


def _validate_grouped_outputs(block: QueryBlock) -> None:
    """Every non-aggregate output must be a grouping key."""
    keys = set(block.group_by)
    aggregate_names = {agg.output_name for agg in block.aggregates}
    for output in block.output:
        expression = output.expression
        if (
            isinstance(expression, ast.ColumnRef)
            and expression.table is None
            and expression.column in aggregate_names
        ):
            continue
        if expression in keys:
            continue
        raise BindError(
            f"output {output.name!r} is neither an aggregate nor a GROUP BY key"
        )


def _rewrite_having(
    expression: ast.Expression,
    block: QueryBlock,
    used_names: Dict[str, int],
) -> ast.Expression:
    """Replace aggregate calls in HAVING/ORDER BY with aggregate outputs.

    Aggregates already computed for the select list are reused; new ones
    are added to the block as hidden aggregates.
    """
    if isinstance(expression, ast.FunctionCall) and expression.is_aggregate:
        argument = None if expression.star else expression.args[0]
        for aggregate in block.aggregates:
            if (
                aggregate.function == expression.name
                and aggregate.argument == argument
                and aggregate.distinct == expression.distinct
            ):
                return ast.ColumnRef(aggregate.output_name)
        name = _fresh_name(f"__{expression.name}", used_names)
        block.aggregates.append(
            Aggregate(
                function=expression.name,
                argument=argument,
                distinct=expression.distinct,
                output_name=name,
            )
        )
        return ast.ColumnRef(name)
    if isinstance(expression, ast.BinaryOp):
        return ast.BinaryOp(
            expression.op,
            _rewrite_having(expression.left, block, used_names),
            _rewrite_having(expression.right, block, used_names),
        )
    if isinstance(expression, ast.UnaryOp):
        return ast.UnaryOp(
            expression.op, _rewrite_having(expression.operand, block, used_names)
        )
    if isinstance(expression, ast.BetweenExpr):
        return ast.BetweenExpr(
            _rewrite_having(expression.operand, block, used_names),
            _rewrite_having(expression.low, block, used_names),
            _rewrite_having(expression.high, block, used_names),
            negated=expression.negated,
        )
    return expression
