"""Deterministic storage fault injection.

A :class:`FaultInjector` is attached to a database (see
:meth:`repro.engine.database.Database.attach_fault_injector`) and
consulted at the storage *sites*:

* ``page_read`` — every counted :meth:`PageManager.read_page`;
* ``page_write`` — every counted logical page write;
* ``index_probe`` — every B-tree descent (equality probe, range scan,
  min/max lookup).

Each :class:`FaultSpec` schedules one fault *kind* at one site, either
probabilistically (seeded RNG — identical seed, identical fault
sequence) or on an every-Nth-visit cadence, optionally bounded by a
total injection ``limit``.  Kinds:

* ``"transient"`` — a simulated transient I/O error; the storage layer
  retries with exponential backoff on the injector's
  :class:`~repro.resilience.guards.VirtualClock` (no real sleeps) and
  raises :class:`~repro.errors.TransientIOError` only when the retry
  budget is exhausted;
* ``"corrupt"`` — bit-flip corruption of the target's contents, detected
  by checksums.  A corrupted *page* read is treated as a torn buffered
  copy: the page is healed (re-read from the intact simulated disk
  image) and retried.  A corrupted *index* is quarantined and must be
  rebuilt from the heap.

The injector is deterministic end to end: same seed and specs, same
visit sequence, same faults.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ExecutionError
from repro.resilience.guards import VirtualClock

SITES = ("page_read", "page_write", "index_probe")
KINDS = ("transient", "corrupt")

#: Replication network fault sites (see :mod:`repro.replication`).  A
#: ``net_frame`` visit is one shipment attempt of a chunk of framed WAL
#: records from the primary's shipper to one replica's link.  A
#: ``heartbeat`` visit is one framed lease-renewal heartbeat from the
#: primary to the failure detector (see
#: :mod:`repro.replication.failover`).
NETWORK_SITES = ("net_frame", "heartbeat")

#: Network fault kinds, modelling what an unreliable link does to a
#: shipment: ``drop`` loses it entirely (the pull-style cursor re-ships
#: it next pump; a dropped heartbeat simply never renews the lease),
#: ``truncate`` delivers a torn prefix (the replica rejects the torn
#: frame and the intact remainder is re-shipped; a torn heartbeat fails
#: its CRC and is discarded), ``delay`` parks the shipment and delivers
#: it late (by which time its offset no longer matches — the replica's
#: gap check rejects it; a late heartbeat may renew an already-expired
#: lease, which the detector surfaces as a flap, never a rewind of a
#: promotion), ``sever`` cuts the connection (a partition of one
#: replica until the link is restored), and ``asym_partition`` models
#: an **asymmetric** partition: the control direction is cut (no
#: heartbeat reaches the detector) while the data direction still
#: flows.  At the ``heartbeat`` site this is the canonical split-brain
#: inducer — the primary is alive and serving, yet its lease expires
#: and a replica gets promoted, so fencing alone keeps history single.
NETWORK_KINDS = ("drop", "truncate", "delay", "sever", "asym_partition")

_ALL_SITES = SITES + NETWORK_SITES
_ALL_KINDS = KINDS + NETWORK_KINDS

#: Named durability crash points (see :mod:`repro.durability`).  Unlike
#: the storage fault SITES above — which model *recoverable* I/O trouble
#: — a crash point models process death, after which the only way
#: forward is :meth:`repro.api.SoftDB.open` replaying the log.
CRASH_SITES = (
    "wal_append",  # mid-append: the final WAL record is torn
    "page_flush",  # while serializing one heap page into a checkpoint
    "checkpoint_write",  # after the tmp image, before the atomic rename
    "catalog_serialize",  # while serializing the catalog section
)


class SimulatedCrash(Exception):
    """Simulated process death at a declared crash point.

    Deliberately **not** a :class:`~repro.errors.ReproError`: nothing in
    the engine may catch-and-continue past it — resilience code that
    handles typed storage errors must let a crash propagate, exactly as
    a real ``kill -9`` would end the process.
    """

    def __init__(self, message: str, site: str = "") -> None:
        super().__init__(message)
        self.site = site


class RetryPolicy:
    """Bounded retry with exponential backoff (virtual time only)."""

    __slots__ = ("max_attempts", "base_delay", "multiplier")

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.001,
        multiplier: float = 2.0,
    ) -> None:
        if max_attempts < 1:
            raise ExecutionError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return self.base_delay * (self.multiplier ** attempt)


class FaultSpec:
    """One scheduled fault: site + kind + cadence."""

    __slots__ = ("site", "kind", "probability", "every_nth", "limit", "hits")

    def __init__(
        self,
        site: str,
        kind: str,
        probability: float = 0.0,
        every_nth: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> None:
        if site not in _ALL_SITES:
            raise ExecutionError(
                f"unknown fault site {site!r} (sites: {_ALL_SITES})"
            )
        if kind not in _ALL_KINDS:
            raise ExecutionError(
                f"unknown fault kind {kind!r} (kinds: {_ALL_KINDS})"
            )
        if not 0.0 <= probability <= 1.0:
            raise ExecutionError(
                f"probability must be in [0, 1], got {probability}"
            )
        if every_nth is not None and every_nth < 1:
            raise ExecutionError(f"every_nth must be >= 1, got {every_nth}")
        if probability == 0.0 and every_nth is None:
            raise ExecutionError(
                "a FaultSpec needs a probability or an every_nth cadence"
            )
        self.site = site
        self.kind = kind
        self.probability = probability
        self.every_nth = every_nth
        self.limit = limit
        self.hits = 0

    def __repr__(self) -> str:
        cadence = (
            f"every_nth={self.every_nth}"
            if self.every_nth is not None
            else f"p={self.probability}"
        )
        return f"FaultSpec({self.site}, {self.kind}, {cadence}, hits={self.hits})"


class FaultInjector:
    """Seeded, deterministic fault scheduler for the storage layer."""

    def __init__(
        self,
        seed: int = 0,
        retry: Optional[RetryPolicy] = None,
        clock: Optional[VirtualClock] = None,
    ) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.retry = retry if retry is not None else RetryPolicy()
        self.clock = clock if clock is not None else VirtualClock()
        self.enabled = True
        self.specs: List[FaultSpec] = []
        self.visits: Dict[str, int] = {site: 0 for site in _ALL_SITES}
        self.injected: Dict[Tuple[str, str], int] = {}
        # (page, slot_no, original value) of the live page corruption, so
        # a detected torn read can be healed (the simulated disk image is
        # intact; only the buffered copy was damaged).
        self._page_damage: Optional[Tuple[Any, int, Any]] = None

    # -- scheduling ---------------------------------------------------------

    def add(
        self,
        site: str,
        kind: str,
        probability: float = 0.0,
        every_nth: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> "FaultInjector":
        """Schedule a fault; returns self for chaining."""
        self.specs.append(
            FaultSpec(site, kind, probability, every_nth, limit)
        )
        return self

    def pause(self) -> None:
        """Stop injecting (visits still counted) until :meth:`resume`."""
        self.enabled = False

    def resume(self) -> None:
        self.enabled = True

    def decide(self, site: str) -> Optional[str]:
        """The fault kind to inject at this visit of ``site``, if any."""
        self.visits[site] += 1
        if not self.enabled:
            return None
        visit = self.visits[site]
        for spec in self.specs:
            if spec.site != site:
                continue
            if spec.limit is not None and spec.hits >= spec.limit:
                continue
            hit = False
            if spec.every_nth is not None:
                hit = visit % spec.every_nth == 0
            if not hit and spec.probability > 0.0:
                hit = self.rng.random() < spec.probability
            if hit:
                spec.hits += 1
                key = (site, spec.kind)
                self.injected[key] = self.injected.get(key, 0) + 1
                return spec.kind
        return None

    # -- corruption ---------------------------------------------------------

    def corrupt_page(self, page: Any) -> bool:
        """Bit-flip one live slot of ``page`` without fixing its checksum.

        Returns False when the page holds no live rows (nothing to
        damage).  The original value is remembered so :meth:`heal_page`
        can restore the intact disk image after detection.
        """
        live = [
            slot_no
            for slot_no, slot in enumerate(page.slots)
            if slot is not None
        ]
        if not live:
            return False
        slot_no = live[self.rng.randrange(len(live))]
        original = page.slots[slot_no]
        column = self.rng.randrange(len(original)) if original else 0
        damaged = list(original)
        damaged[column] = _flip(damaged[column])
        page.slots[slot_no] = tuple(damaged)
        self._page_damage = (page, slot_no, original)
        return True

    def heal_page(self, page: Any) -> None:
        """Restore the last corruption on ``page`` (simulated re-read)."""
        if self._page_damage is None or self._page_damage[0] is not page:
            return
        _, slot_no, original = self._page_damage
        page.slots[slot_no] = original
        self._page_damage = None

    def corrupt_index(self, index: Any) -> bool:
        """Bit-flip one key of ``index`` without fixing its checksum."""
        if not len(index):
            return False
        at = self.rng.randrange(len(index))
        key = index._keys[at]
        column = self.rng.randrange(len(key)) if key else 0
        damaged = list(key)
        damaged[column] = _flip(damaged[column])
        index._keys[at] = tuple(damaged)
        return True

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "enabled": self.enabled,
            "visits": dict(self.visits),
            "injected": {
                f"{site}:{kind}": count
                for (site, kind), count in sorted(self.injected.items())
            },
            "virtual_time": self.clock.now,
        }

    def __repr__(self) -> str:
        total = sum(self.injected.values())
        return (
            f"FaultInjector(seed={self.seed}, specs={len(self.specs)}, "
            f"injected={total})"
        )


class CrashPoint:
    """One scheduled crash: site + cadence (every-Nth, exact visit, or
    seeded probability), bounded by ``limit`` firings (default one — a
    process only dies once per run)."""

    __slots__ = ("site", "every_nth", "at_visit", "probability", "limit", "hits")

    def __init__(
        self,
        site: str,
        every_nth: Optional[int] = None,
        at_visit: Optional[int] = None,
        probability: float = 0.0,
        limit: int = 1,
    ) -> None:
        if site not in CRASH_SITES:
            raise ExecutionError(
                f"unknown crash site {site!r} (sites: {CRASH_SITES})"
            )
        if every_nth is not None and every_nth < 1:
            raise ExecutionError(f"every_nth must be >= 1, got {every_nth}")
        if at_visit is not None and at_visit < 1:
            raise ExecutionError(f"at_visit must be >= 1, got {at_visit}")
        if not 0.0 <= probability <= 1.0:
            raise ExecutionError(
                f"probability must be in [0, 1], got {probability}"
            )
        if every_nth is None and at_visit is None and probability == 0.0:
            raise ExecutionError(
                "a CrashPoint needs every_nth, at_visit, or a probability"
            )
        self.site = site
        self.every_nth = every_nth
        self.at_visit = at_visit
        self.probability = probability
        self.limit = limit
        self.hits = 0

    def __repr__(self) -> str:
        if self.at_visit is not None:
            cadence = f"at_visit={self.at_visit}"
        elif self.every_nth is not None:
            cadence = f"every_nth={self.every_nth}"
        else:
            cadence = f"p={self.probability}"
        return f"CrashPoint({self.site}, {cadence}, hits={self.hits})"


class CrashSchedule:
    """Deterministic process-death scheduler for the durability layer.

    The durability code calls :meth:`should_crash` at each named site
    visit; a True return means the caller must simulate death — for WAL
    appends, by leaving a torn final record and raising
    :class:`SimulatedCrash`.  Same seed and points, same visit counts,
    same crash — so every crash-differential failure replays exactly.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.points: List[CrashPoint] = []
        self.visits: Dict[str, int] = {site: 0 for site in CRASH_SITES}
        self.crashes: Dict[str, int] = {}
        self.armed = True

    def add(
        self,
        site: str,
        every_nth: Optional[int] = None,
        at_visit: Optional[int] = None,
        probability: float = 0.0,
        limit: int = 1,
    ) -> "CrashSchedule":
        """Schedule a crash point; returns self for chaining."""
        self.points.append(
            CrashPoint(site, every_nth, at_visit, probability, limit)
        )
        return self

    def disarm(self) -> None:
        """Stop crashing (visits still counted) until :meth:`arm`."""
        self.armed = False

    def arm(self) -> None:
        self.armed = True

    def should_crash(self, site: str) -> bool:
        """Whether the process dies at this visit of ``site``."""
        if site not in self.visits:
            raise ExecutionError(
                f"unknown crash site {site!r} (sites: {CRASH_SITES})"
            )
        self.visits[site] += 1
        if not self.armed:
            return False
        visit = self.visits[site]
        for point in self.points:
            if point.site != site or point.hits >= point.limit:
                continue
            hit = False
            if point.at_visit is not None:
                hit = visit == point.at_visit
            if not hit and point.every_nth is not None:
                hit = visit % point.every_nth == 0
            if not hit and point.probability > 0.0:
                hit = self.rng.random() < point.probability
            if hit:
                point.hits += 1
                self.crashes[site] = self.crashes.get(site, 0) + 1
                return True
        return False

    def snapshot(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "armed": self.armed,
            "visits": dict(self.visits),
            "crashes": dict(sorted(self.crashes.items())),
        }

    def __repr__(self) -> str:
        return (
            f"CrashSchedule(seed={self.seed}, points={len(self.points)}, "
            f"crashes={sum(self.crashes.values())})"
        )


def _flip(value: Any) -> Any:
    """A deterministic 'bit flip' of one field value."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ (1 << 7)
    if isinstance(value, float):
        return -(value + 1.0)
    if isinstance(value, str):
        if not value:
            return "\x01"
        head = chr((ord(value[0]) ^ 0x01) or 0x02)
        return head + value[1:]
    if value is None:
        return 0
    return value
