"""Query guards: resource budgets and cooperative cancellation.

A :class:`QueryGuard` declares per-query budgets — a wall-clock deadline,
a cap on rows materialized, on logical page reads, and on join pairs
considered — plus a breach policy.  Guards are *cooperative*: the
executors check them at row/batch boundaries (and joins/sorts at their
materialization points), so a runaway plan is stopped within one
boundary of the breach rather than pre-empted mid-operator.

One guard can serve many executions; each execution *arms* it, producing
an :class:`ActiveGuard` that carries that run's consumption counters.
When no guard is armed the executors do zero extra work — the default
path is untouched.

Breaches raise typed errors (:class:`~repro.errors.QueryTimeoutError`,
:class:`~repro.errors.BudgetExceededError`,
:class:`~repro.errors.QueryCancelledError`).  Under the ``"partial"``
policy the executor converts the breach into a truncated result
(``ExecutionResult.truncated=True``) carrying the rows produced so far.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.errors import (
    BudgetExceededError,
    ExecutionError,
    QueryCancelledError,
    QueryTimeoutError,
)

#: Rows processed between wall-clock consultations.  Budget and
#: cancellation checks are pure integer/flag compares and run at every
#: boundary; only the (comparatively expensive) clock read is strided.
CLOCK_STRIDE = 512


class VirtualClock:
    """A manually-advanced clock: ``sleep`` moves time, nothing blocks.

    Used by the storage retry/backoff machinery and by deterministic
    guard tests — no real wall time ever passes.  Instances are callable
    so they can stand in for ``time.monotonic``.
    """

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        """Advance virtual time; never blocks the process."""
        self.now += seconds

    def __repr__(self) -> str:
        return f"VirtualClock(now={self.now:.6f})"


class CancellationToken:
    """A cooperative cancellation flag shared with the query's issuer.

    The issuer calls :meth:`cancel`; the executor observes the flag at
    row/batch boundaries and raises
    :class:`~repro.errors.QueryCancelledError`.  Tokens are one-shot but
    reusable across queries until cancelled.
    """

    __slots__ = ("_cancelled", "reason")

    def __init__(self) -> None:
        self._cancelled = False
        self.reason = ""

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self, reason: str = "cancelled by caller") -> None:
        self._cancelled = True
        self.reason = reason

    def __repr__(self) -> str:
        state = f"cancelled: {self.reason!r}" if self._cancelled else "live"
        return f"CancellationToken({state})"


class QueryGuard:
    """Declarative per-query resource budgets.

    Parameters
    ----------
    deadline:
        Wall-clock budget in seconds (from arming), or None for no limit.
    max_rows:
        Cap on rows *materialized* during execution: result rows plus
        rows pinned by blocking operators (a join's build/inner side, a
        sort's input).  None for no limit.
    max_page_reads:
        Cap on logical page reads charged to the database counters while
        the query runs.  None for no limit.
    max_join_pairs:
        Cap on row pairs considered across all joins in the plan — the
        backstop against a mis-planned exploding join.  None for no
        limit.
    on_breach:
        ``"abort"`` (default) propagates the typed error; ``"partial"``
        makes the executor return the rows produced so far with
        ``truncated=True``.
    clock:
        Monotonic-time callable; override with a
        :class:`VirtualClock` for deterministic tests.
    """

    __slots__ = (
        "deadline",
        "max_rows",
        "max_page_reads",
        "max_join_pairs",
        "on_breach",
        "clock",
    )

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_rows: Optional[int] = None,
        max_page_reads: Optional[int] = None,
        max_join_pairs: Optional[int] = None,
        on_breach: str = "abort",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if on_breach not in ("abort", "partial"):
            raise ExecutionError(
                f"on_breach must be 'abort' or 'partial', got {on_breach!r}"
            )
        for name, value in (
            ("deadline", deadline),
            ("max_rows", max_rows),
            ("max_page_reads", max_page_reads),
            ("max_join_pairs", max_join_pairs),
        ):
            if value is not None and value <= 0:
                raise ExecutionError(f"{name} must be positive, got {value}")
        self.deadline = deadline
        self.max_rows = max_rows
        self.max_page_reads = max_page_reads
        self.max_join_pairs = max_join_pairs
        self.on_breach = on_breach
        self.clock = clock

    def arm(
        self, counters: Any, cancel: Optional[CancellationToken] = None
    ) -> "ActiveGuard":
        """Bind the guard to one execution's I/O counters and token."""
        return ActiveGuard(self, counters, cancel)

    def __repr__(self) -> str:
        limits = ", ".join(
            f"{name}={value}"
            for name, value in (
                ("deadline", self.deadline),
                ("max_rows", self.max_rows),
                ("max_page_reads", self.max_page_reads),
                ("max_join_pairs", self.max_join_pairs),
            )
            if value is not None
        )
        return f"QueryGuard({limits or 'no limits'}, on_breach={self.on_breach})"


class ActiveGuard:
    """One execution's armed guard: consumption counters plus checks.

    The executors call :meth:`note_rows` / :meth:`note_pairs` /
    :meth:`tick` at their boundaries.  All three run the cheap checks
    (budgets, cancellation, page-read delta); the wall clock is consulted
    once per :data:`CLOCK_STRIDE` rows of progress.
    """

    __slots__ = (
        "guard",
        "cancel",
        "counters",
        "rows",
        "pairs",
        "pages_base",
        "started_at",
        "deadline_at",
        "elapsed",
        "tripped",
        "_since_clock",
    )

    def __init__(
        self,
        guard: QueryGuard,
        counters: Any,
        cancel: Optional[CancellationToken] = None,
    ) -> None:
        self.guard = guard
        self.cancel = cancel
        self.counters = counters
        self.rows = 0
        self.pairs = 0
        self.pages_base = counters.page_reads
        self.started_at = guard.clock()
        self.deadline_at = (
            None
            if guard.deadline is None
            else self.started_at + guard.deadline
        )
        self.elapsed = 0.0
        self.tripped: Optional[Exception] = None
        self._since_clock = 0

    # -- boundary checks ----------------------------------------------------

    def note_rows(self, count: int) -> None:
        """Account ``count`` materialized rows, then run boundary checks."""
        self.rows += count
        limit = self.guard.max_rows
        if limit is not None and self.rows > limit:
            self._trip(
                BudgetExceededError(
                    f"row budget exhausted: {self.rows} rows materialized "
                    f"(limit {limit})",
                    budget="rows",
                )
            )
        self._boundary(count)

    def note_pairs(self, count: int) -> None:
        """Account ``count`` join pairs considered, then check."""
        self.pairs += count
        limit = self.guard.max_join_pairs
        if limit is not None and self.pairs > limit:
            self._trip(
                BudgetExceededError(
                    f"join-pair budget exhausted: {self.pairs} pairs "
                    f"considered (limit {limit})",
                    budget="join_pairs",
                )
            )
        self._boundary(count)

    def tick(self, weight: int = 1) -> None:
        """A progress boundary with no row accounting (e.g. scan input)."""
        self._boundary(weight)

    def _boundary(self, weight: int) -> None:
        cancel = self.cancel
        if cancel is not None and cancel._cancelled:
            self._trip(
                QueryCancelledError(f"query cancelled: {cancel.reason}")
            )
        limit = self.guard.max_page_reads
        if limit is not None:
            used = self.counters.page_reads - self.pages_base
            if used > limit:
                self._trip(
                    BudgetExceededError(
                        f"page-read budget exhausted: {used} pages read "
                        f"(limit {limit})",
                        budget="page_reads",
                    )
                )
        if self.deadline_at is not None:
            self._since_clock += weight
            if self._since_clock >= CLOCK_STRIDE:
                self._since_clock = 0
                self.check_deadline()

    def check_deadline(self) -> None:
        """Consult the clock now (called strided from the boundaries)."""
        if self.deadline_at is None:
            return
        now = self.guard.clock()
        if now > self.deadline_at:
            self._trip(
                QueryTimeoutError(
                    f"query deadline of {self.guard.deadline:.3f}s exceeded "
                    f"({now - self.started_at:.3f}s elapsed)"
                )
            )

    def _trip(self, error: Exception) -> None:
        self.tripped = error
        error.report = self.finish()
        raise error

    # -- reporting ----------------------------------------------------------

    @property
    def page_reads(self) -> int:
        return self.counters.page_reads - self.pages_base

    def finish(self) -> Dict[str, Any]:
        """Freeze and return the consumption report for this execution."""
        self.elapsed = self.guard.clock() - self.started_at
        return self.report()

    def report(self) -> Dict[str, Any]:
        """A JSON-friendly budget-consumption snapshot."""
        guard = self.guard
        return {
            "rows": self.rows,
            "max_rows": guard.max_rows,
            "page_reads": self.page_reads,
            "max_page_reads": guard.max_page_reads,
            "join_pairs": self.pairs,
            "max_join_pairs": guard.max_join_pairs,
            "elapsed_s": round(self.elapsed, 6),
            "deadline_s": guard.deadline,
            "on_breach": guard.on_breach,
            "tripped": (
                None
                if self.tripped is None
                else f"{type(self.tripped).__name__}: {self.tripped}"
            ),
        }


def format_guard_report(report: Dict[str, Any]) -> str:
    """One EXPLAIN ANALYZE line: consumption over limits per budget."""

    def used(quantity: str, limit_key: str) -> str:
        limit = report.get(limit_key)
        bound = "-" if limit is None else str(limit)
        return f"{report.get(quantity, 0)}/{bound}"

    deadline = report.get("deadline_s")
    parts = [
        f"rows={used('rows', 'max_rows')}",
        f"pages={used('page_reads', 'max_page_reads')}",
        f"pairs={used('join_pairs', 'max_join_pairs')}",
        f"elapsed={report.get('elapsed_s', 0.0):.4f}s"
        + ("" if deadline is None else f"/{deadline:.4f}s"),
        f"policy={report.get('on_breach', 'abort')}",
    ]
    tripped = report.get("tripped")
    parts.append(f"tripped={tripped if tripped else 'no'}")
    return "guard: " + " ".join(parts)


def permits_readahead(active_guard: Optional["ActiveGuard"]) -> bool:
    """Whether a scan may read storage ahead of consumption.

    Morsel-parallel scans keep up to ``workers`` morsels in flight, so
    storage reads (and their counter updates) run ahead of the rows the
    consumer has actually seen.  Under an armed guard that read-ahead
    would be observable: page-budget deltas are checked at every tick,
    and a ``partial`` breach snapshot would include pages the truncated
    result never consumed.  The executor therefore only engages morsel
    parallelism on observation-free scans — no armed guard, no LIMIT
    quota — and this predicate is the single place that contract lives.
    Guarded scans still run the sequential columnar path, which is
    bit-identical to the list-based pipeline by construction.
    """
    return active_guard is None
