"""Resilience: resource governance, cancellation, and fault injection.

The paper's thesis is that soft constraints make an optimizer *safe to
trust* — stale characterizations are compensated at runtime instead of
producing wrong answers.  This package supplies the matching runtime
safety substrate the paper assumed from DB2:

* :class:`~repro.resilience.guards.QueryGuard` /
  :class:`~repro.resilience.guards.CancellationToken` — per-query
  deadline, rows-materialized, page-read and join-pair budgets, checked
  cooperatively at row/batch boundaries by both executors, with an
  ``abort`` or ``partial`` (truncated result) breach policy;
* :class:`~repro.resilience.faults.FaultInjector` — seeded,
  deterministic transient-I/O and bit-flip-corruption injection at the
  page-read / page-write / index-probe sites, backed by per-page and
  per-index checksums, bounded retry-with-backoff on a
  :class:`~repro.resilience.guards.VirtualClock`, and index quarantine +
  rebuild-from-heap;
* the chaos differential harness (``pytest -m chaos``) proves that under
  injection every query yields either the fault-free answer or a typed
  :class:`~repro.errors.ReproError` — never a silently wrong result.

Guard trips feed the execution-feedback subsystem: repeated breaches
mark a plan suspect exactly like a large q-error would (see
:meth:`repro.feedback.store.FeedbackStore.record_guard_trip`).
"""

from repro.resilience.faults import (
    KINDS,
    NETWORK_KINDS,
    NETWORK_SITES,
    SITES,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
)
from repro.resilience.guards import (
    ActiveGuard,
    CancellationToken,
    QueryGuard,
    VirtualClock,
    format_guard_report,
)

__all__ = [
    "ActiveGuard",
    "CancellationToken",
    "FaultInjector",
    "FaultSpec",
    "KINDS",
    "NETWORK_KINDS",
    "NETWORK_SITES",
    "QueryGuard",
    "RetryPolicy",
    "SITES",
    "VirtualClock",
    "format_guard_report",
]
