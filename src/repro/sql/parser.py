"""Recursive-descent parser for the SQL dialect.

Entry points: :func:`parse_statement` for a full statement and
:func:`parse_expression` for a bare scalar/boolean expression (used when
compiling CHECK constraint text and soft-constraint statements).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.engine.types import parse_date_literal
from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.tokens import (
    EOF,
    FLOAT_LIT,
    IDENT,
    INTEGER_LIT,
    KEYWORD,
    OPERATOR,
    PUNCT,
    STRING_LIT,
    Token,
)

# Keywords that may also appear as ordinary identifiers (column/table
# names) when the grammar position demands a name.
_NONRESERVED = frozenset(
    ["count", "sum", "avg", "min", "max", "abs", "date", "key", "index",
     "summary", "view", "check", "set", "all", "asc", "desc", "left",
     "right", "year", "month", "work", "transaction", "start"]
)

_COMPARISONS = frozenset(["=", "<>", "!=", "<", "<=", ">", ">="])
_AGG_NAMES = ast.FunctionCall.AGGREGATES | frozenset(["abs"])


def parse_statement(sql: str) -> ast.Statement:
    """Parse one SQL statement (a trailing ``;`` is allowed)."""
    parser = _Parser(tokenize(sql))
    statement = parser.statement()
    parser.accept_punct(";")
    parser.expect_eof()
    return statement


def parse_expression(sql: str) -> ast.Expression:
    """Parse a bare expression, e.g. a CHECK condition."""
    parser = _Parser(tokenize(sql))
    expression = parser.expression()
    parser.expect_eof()
    return expression


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._at = 0

    # ------------------------------------------------------------- plumbing

    @property
    def current(self) -> Token:
        return self._tokens[self._at]

    def advance(self) -> Token:
        token = self._tokens[self._at]
        if token.kind != EOF:
            self._at += 1
        return token

    def error(self, message: str) -> ParseError:
        token = self.current
        where = f" near {token.text!r}" if token.text else " at end of input"
        return ParseError(message + where, token.position)

    def accept_keyword(self, *words: str) -> Optional[Token]:
        if self.current.is_keyword(*words):
            return self.advance()
        return None

    def expect_keyword(self, *words: str) -> Token:
        token = self.accept_keyword(*words)
        if token is None:
            raise self.error(f"expected {'/'.join(w.upper() for w in words)}")
        return token

    def accept_punct(self, punct: str) -> Optional[Token]:
        if self.current.kind == PUNCT and self.current.value == punct:
            return self.advance()
        return None

    def expect_punct(self, punct: str) -> Token:
        token = self.accept_punct(punct)
        if token is None:
            raise self.error(f"expected {punct!r}")
        return token

    def accept_operator(self, *ops: str) -> Optional[Token]:
        if self.current.kind == OPERATOR and self.current.value in ops:
            return self.advance()
        return None

    def expect_eof(self) -> None:
        if self.current.kind != EOF:
            raise self.error("unexpected trailing input")

    def identifier(self) -> str:
        """An identifier, allowing the non-reserved keyword set."""
        token = self.current
        if token.kind == IDENT:
            return self.advance().value
        if token.kind == KEYWORD and token.value in _NONRESERVED:
            return self.advance().value
        raise self.error("expected identifier")

    # ------------------------------------------------------------ statements

    def statement(self) -> ast.Statement:
        token = self.current
        if token.is_keyword("select") or (
            token.kind == PUNCT and token.value == "("
        ):
            return self.select_or_union()
        if token.is_keyword("create"):
            return self.create_statement()
        if token.is_keyword("insert"):
            return self.insert_statement()
        if token.is_keyword("delete"):
            return self.delete_statement()
        if token.is_keyword("update"):
            return self.update_statement()
        if token.is_keyword("drop"):
            return self.drop_statement()
        if token.is_keyword("begin", "start"):
            return self.begin_statement()
        if token.is_keyword("commit"):
            self.advance()
            self.accept_keyword("work") or self.accept_keyword("transaction")
            return ast.CommitTransaction()
        if token.is_keyword("rollback"):
            self.advance()
            self.accept_keyword("work") or self.accept_keyword("transaction")
            return ast.RollbackTransaction()
        raise self.error("expected a statement")

    def begin_statement(self) -> ast.BeginTransaction:
        """``BEGIN [WORK | TRANSACTION]`` or ``START TRANSACTION``."""
        if self.accept_keyword("start"):
            self.expect_keyword("transaction")
        else:
            self.expect_keyword("begin")
            self.accept_keyword("work") or self.accept_keyword("transaction")
        return ast.BeginTransaction()

    # -- SELECT / UNION ALL ------------------------------------------------

    def select_or_union(self) -> Union[ast.SelectStatement, ast.UnionAll]:
        if self.accept_punct("("):
            first = self.select_statement(allow_tail=True)
            self.expect_punct(")")
        else:
            first = self.select_statement(allow_tail=True)
        branches = [first]
        while self.accept_keyword("union"):
            self.expect_keyword("all")
            if self.accept_punct("("):
                branch = self.select_statement(allow_tail=True)
                self.expect_punct(")")
            else:
                branch = self.select_statement(allow_tail=False)
            branches.append(branch)
        if len(branches) == 1:
            return first
        union = ast.UnionAll(branches=branches)
        union.order_by = self.order_by_clause()
        union.limit = self.limit_clause()
        return union

    def select_statement(self, allow_tail: bool = True) -> ast.SelectStatement:
        self.expect_keyword("select")
        statement = ast.SelectStatement()
        statement.distinct = self.accept_keyword("distinct") is not None
        statement.select_items = self.select_items()
        if self.accept_keyword("from"):
            statement.from_clause = self.from_clause()
        if self.accept_keyword("where"):
            statement.where = self.expression()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            statement.group_by = self.expression_list()
            if self.accept_keyword("having"):
                statement.having = self.expression()
        if allow_tail:
            statement.order_by = self.order_by_clause()
            statement.limit = self.limit_clause()
        return statement

    def select_items(self) -> List[ast.SelectItem]:
        items = [self.select_item()]
        while self.accept_punct(","):
            items.append(self.select_item())
        return items

    def select_item(self) -> ast.SelectItem:
        if self.current.kind == OPERATOR and self.current.value == "*":
            self.advance()
            return ast.SelectItem(star=True)
        # "t.*" needs two tokens of lookahead
        if self.current.kind in (IDENT, KEYWORD):
            nxt = self._tokens[self._at + 1 : self._at + 3]
            if (
                len(nxt) == 2
                and nxt[0].kind == PUNCT
                and nxt[0].value == "."
                and nxt[1].kind == OPERATOR
                and nxt[1].value == "*"
            ):
                table = self.identifier()
                self.expect_punct(".")
                self.advance()  # the *
                return ast.SelectItem(star=True, star_table=table)
        expression = self.expression()
        alias = None
        if self.accept_keyword("as"):
            alias = self.identifier()
        elif self.current.kind == IDENT:
            alias = self.advance().value
        return ast.SelectItem(expression=expression, alias=alias)

    def from_clause(self) -> List[Union[ast.TableRef, ast.Join]]:
        refs = [self.table_expression()]
        while self.accept_punct(","):
            refs.append(self.table_expression())
        return refs

    def table_expression(self) -> Union[ast.TableRef, ast.Join]:
        left: Union[ast.TableRef, ast.Join] = self.table_primary()
        while True:
            kind = None
            if self.accept_keyword("inner"):
                kind = "inner"
                self.expect_keyword("join")
            elif self.accept_keyword("cross"):
                kind = "cross"
                self.expect_keyword("join")
            elif self.accept_keyword("left"):
                kind = "left"
                self.accept_keyword("outer")
                self.expect_keyword("join")
            elif self.accept_keyword("join"):
                kind = "inner"
            if kind is None:
                return left
            right = self.table_primary()
            condition = None
            if kind != "cross":
                self.expect_keyword("on")
                condition = self.expression()
            left = ast.Join(kind=kind, left=left, right=right, condition=condition)

    def table_primary(self) -> ast.TableRef:
        name = self.identifier()
        alias = None
        if self.accept_keyword("as"):
            alias = self.identifier()
        elif self.current.kind == IDENT:
            alias = self.advance().value
        return ast.TableRef(name=name, alias=alias)

    def order_by_clause(self) -> List[ast.OrderItem]:
        if not self.accept_keyword("order"):
            return []
        self.expect_keyword("by")
        items = [self.order_item()]
        while self.accept_punct(","):
            items.append(self.order_item())
        return items

    def order_item(self) -> ast.OrderItem:
        expression = self.expression()
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        return ast.OrderItem(expression=expression, ascending=ascending)

    def limit_clause(self) -> Optional[int]:
        if not self.accept_keyword("limit"):
            return None
        token = self.current
        if token.kind != INTEGER_LIT:
            raise self.error("expected integer after LIMIT")
        self.advance()
        return token.value

    # -- CREATE ----------------------------------------------------------------

    def create_statement(self) -> ast.Statement:
        self.expect_keyword("create")
        if self.accept_keyword("summary"):
            self.expect_keyword("table")
            return self.create_summary_table()
        if self.accept_keyword("unique"):
            self.expect_keyword("index")
            return self.create_index(unique=True)
        if self.accept_keyword("index"):
            return self.create_index(unique=False)
        self.expect_keyword("table")
        return self.create_table()

    def create_table(self) -> ast.CreateTable:
        name = self.identifier()
        self.expect_punct("(")
        node = ast.CreateTable(name=name)
        while True:
            if self.current.is_keyword(
                "primary", "unique", "foreign", "check", "constraint"
            ) and not self._looks_like_column_def():
                node.constraints.append(self.table_constraint())
            else:
                column, inline = self.column_def()
                node.columns.append(column)
                node.constraints.extend(inline)
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return node

    def _looks_like_column_def(self) -> bool:
        """Disambiguate e.g. a column named ``check`` from a CHECK clause."""
        token = self.current
        if token.kind != KEYWORD or token.value not in _NONRESERVED:
            return False
        nxt = self._tokens[self._at + 1]
        return nxt.kind in (IDENT, KEYWORD) and not nxt.is_keyword("key")

    def column_def(self) -> Tuple[ast.ColumnDef, List[ast.ConstraintDef]]:
        name = self.identifier()
        type_token = self.current
        if type_token.kind not in (KEYWORD, IDENT):
            raise self.error("expected a type name")
        self.advance()
        length = None
        if self.accept_punct("("):
            size_token = self.current
            if size_token.kind != INTEGER_LIT:
                raise self.error("expected a length")
            self.advance()
            length = size_token.value
            self.expect_punct(")")
        column = ast.ColumnDef(
            name=name, type_name=type_token.value, length=length
        )
        inline: List[ast.ConstraintDef] = []
        while True:
            if self.accept_keyword("not"):
                if self.accept_keyword("null"):
                    column.not_null = True
                    continue
                if self.accept_keyword("enforced"):
                    # NOT ENFORCED trailing a previous inline constraint
                    if inline:
                        _set_enforced(inline[-1], False)
                        continue
                    raise self.error("NOT ENFORCED without a constraint")
                raise self.error("expected NULL or ENFORCED after NOT")
            if self.accept_keyword("primary"):
                self.expect_keyword("key")
                column.primary_key = True
                inline.append(ast.PrimaryKeyDef(columns=[column.name]))
                continue
            if self.accept_keyword("unique"):
                inline.append(ast.UniqueDef(columns=[column.name]))
                continue
            if self.accept_keyword("references"):
                parent = self.identifier()
                parent_columns: List[str] = []
                if self.accept_punct("("):
                    parent_columns = self.identifier_list()
                    self.expect_punct(")")
                inline.append(
                    ast.ForeignKeyDef(
                        columns=[column.name],
                        parent_table=parent,
                        parent_columns=parent_columns,
                    )
                )
                continue
            if self.current.is_keyword("check"):
                inline.append(self.check_clause())
                continue
            if self.accept_keyword("enforced"):
                if inline:
                    _set_enforced(inline[-1], True)
                    continue
                raise self.error("ENFORCED without a constraint")
            break
        return column, inline

    def table_constraint(self) -> ast.ConstraintDef:
        name = None
        if self.accept_keyword("constraint"):
            name = self.identifier()
        if self.accept_keyword("primary"):
            self.expect_keyword("key")
            self.expect_punct("(")
            columns = self.identifier_list()
            self.expect_punct(")")
            definition: ast.ConstraintDef = ast.PrimaryKeyDef(
                columns=columns, name=name
            )
        elif self.accept_keyword("unique"):
            self.expect_punct("(")
            columns = self.identifier_list()
            self.expect_punct(")")
            definition = ast.UniqueDef(columns=columns, name=name)
        elif self.accept_keyword("foreign"):
            self.expect_keyword("key")
            self.expect_punct("(")
            columns = self.identifier_list()
            self.expect_punct(")")
            self.expect_keyword("references")
            parent = self.identifier()
            parent_columns: List[str] = []
            if self.accept_punct("("):
                parent_columns = self.identifier_list()
                self.expect_punct(")")
            definition = ast.ForeignKeyDef(
                columns=columns,
                parent_table=parent,
                parent_columns=parent_columns,
                name=name,
            )
        elif self.current.is_keyword("check"):
            definition = self.check_clause()
            definition.name = name
        else:
            raise self.error("expected a table constraint")
        self.enforcement_suffix(definition)
        return definition

    def check_clause(self) -> ast.CheckDef:
        self.expect_keyword("check")
        self.expect_punct("(")
        start = self.current.position
        expression = self.expression()
        end = self.current.position
        self.expect_punct(")")
        # Reconstruct the original text span for catalog display.
        sql_text = _source_slice(self._tokens, start, end)
        return ast.CheckDef(expression=expression, sql_text=sql_text)

    def enforcement_suffix(self, definition: ast.ConstraintDef) -> None:
        if self.accept_keyword("not"):
            self.expect_keyword("enforced")
            _set_enforced(definition, False)
        elif self.accept_keyword("enforced"):
            _set_enforced(definition, True)

    def create_index(self, unique: bool) -> ast.CreateIndex:
        name = self.identifier()
        self.expect_keyword("on")
        table = self.identifier()
        self.expect_punct("(")
        columns = self.identifier_list()
        self.expect_punct(")")
        return ast.CreateIndex(
            name=name, table=table, columns=columns, unique=unique
        )

    def create_summary_table(self) -> ast.CreateSummaryTable:
        name = self.identifier()
        self.expect_keyword("as")
        self.expect_punct("(")
        select = self.select_statement(allow_tail=False)
        self.expect_punct(")")
        return ast.CreateSummaryTable(name=name, select=select)

    def drop_statement(self) -> ast.DropTable:
        self.expect_keyword("drop")
        self.expect_keyword("table")
        return ast.DropTable(name=self.identifier())

    # -- DML ----------------------------------------------------------------------

    def insert_statement(self) -> ast.Insert:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.identifier()
        columns: List[str] = []
        if self.accept_punct("("):
            columns = self.identifier_list()
            self.expect_punct(")")
        self.expect_keyword("values")
        rows: List[List[ast.Expression]] = []
        while True:
            self.expect_punct("(")
            rows.append(self.expression_list())
            self.expect_punct(")")
            if not self.accept_punct(","):
                break
        return ast.Insert(table=table, columns=columns, rows=rows)

    def delete_statement(self) -> ast.Delete:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.identifier()
        where = None
        if self.accept_keyword("where"):
            where = self.expression()
        return ast.Delete(table=table, where=where)

    def update_statement(self) -> ast.Update:
        self.expect_keyword("update")
        table = self.identifier()
        self.expect_keyword("set")
        assignments: List[Tuple[str, ast.Expression]] = []
        while True:
            column = self.identifier()
            if self.accept_operator("=") is None:
                raise self.error("expected '=' in SET")
            assignments.append((column, self.expression()))
            if not self.accept_punct(","):
                break
        where = None
        if self.accept_keyword("where"):
            where = self.expression()
        return ast.Update(table=table, assignments=assignments, where=where)

    # ------------------------------------------------------------ expressions

    def expression_list(self) -> List[ast.Expression]:
        items = [self.expression()]
        while self.accept_punct(","):
            items.append(self.expression())
        return items

    def identifier_list(self) -> List[str]:
        items = [self.identifier()]
        while self.accept_punct(","):
            items.append(self.identifier())
        return items

    def expression(self) -> ast.Expression:
        return self.or_expression()

    def or_expression(self) -> ast.Expression:
        left = self.and_expression()
        while self.accept_keyword("or"):
            left = ast.BinaryOp("or", left, self.and_expression())
        return left

    def and_expression(self) -> ast.Expression:
        left = self.not_expression()
        while self.accept_keyword("and"):
            left = ast.BinaryOp("and", left, self.not_expression())
        return left

    def not_expression(self) -> ast.Expression:
        if self.accept_keyword("not"):
            return ast.UnaryOp("not", self.not_expression())
        return self.predicate()

    def predicate(self) -> ast.Expression:
        left = self.additive()
        token = self.accept_operator(*_COMPARISONS)
        if token is not None:
            op = "<>" if token.value == "!=" else token.value
            return ast.BinaryOp(op, left, self.additive())
        negated = False
        if self.current.is_keyword("not"):
            nxt = self._tokens[self._at + 1]
            if nxt.is_keyword("between", "in", "like"):
                self.advance()
                negated = True
        if self.accept_keyword("between"):
            low = self.additive()
            self.expect_keyword("and")
            high = self.additive()
            return ast.BetweenExpr(left, low, high, negated=negated)
        if self.accept_keyword("in"):
            self.expect_punct("(")
            items = tuple(self.expression_list())
            self.expect_punct(")")
            return ast.InExpr(left, items, negated=negated)
        if self.accept_keyword("like"):
            pattern = self.additive()
            node: ast.Expression = ast.BinaryOp("like", left, pattern)
            if negated:
                node = ast.UnaryOp("not", node)
            return node
        if self.accept_keyword("is"):
            is_negated = self.accept_keyword("not") is not None
            self.expect_keyword("null")
            return ast.IsNullExpr(left, negated=is_negated)
        return left

    def additive(self) -> ast.Expression:
        left = self.multiplicative()
        while True:
            token = self.accept_operator("+", "-")
            if token is None:
                return left
            left = ast.BinaryOp(token.value, left, self.multiplicative())

    def multiplicative(self) -> ast.Expression:
        left = self.unary()
        while True:
            token = self.accept_operator("*", "/", "%")
            if token is None:
                return left
            left = ast.BinaryOp(token.value, left, self.unary())

    def unary(self) -> ast.Expression:
        if self.accept_operator("-"):
            return ast.UnaryOp("-", self.unary())
        if self.accept_operator("+"):
            return self.unary()
        return self.primary()

    def primary(self) -> ast.Expression:
        token = self.current
        if token.kind == INTEGER_LIT or token.kind == FLOAT_LIT:
            self.advance()
            return ast.Literal(token.value)
        if token.kind == STRING_LIT:
            self.advance()
            return ast.Literal(token.value)
        if token.is_keyword("true"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("null"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("date"):
            nxt = self._tokens[self._at + 1]
            if nxt.kind == STRING_LIT:
                self.advance()
                self.advance()
                return ast.Literal(parse_date_literal(nxt.value), is_date=True)
        if self.accept_punct("("):
            expression = self.expression()
            self.expect_punct(")")
            return expression
        if token.kind in (IDENT, KEYWORD):
            # function call?
            nxt = self._tokens[self._at + 1]
            is_function = (
                nxt.kind == PUNCT
                and nxt.value == "("
                and (token.kind == IDENT or token.value in _AGG_NAMES)
            )
            if is_function:
                return self.function_call()
            return self.column_reference()
        raise self.error("expected an expression")

    def function_call(self) -> ast.FunctionCall:
        name = self.advance().value
        self.expect_punct("(")
        if self.current.kind == OPERATOR and self.current.value == "*":
            self.advance()
            self.expect_punct(")")
            return ast.FunctionCall(name=name, star=True)
        distinct = self.accept_keyword("distinct") is not None
        args: List[ast.Expression] = []
        if not (self.current.kind == PUNCT and self.current.value == ")"):
            args = self.expression_list()
        self.expect_punct(")")
        return ast.FunctionCall(name=name, args=tuple(args), distinct=distinct)

    def column_reference(self) -> ast.ColumnRef:
        first = self.identifier()
        if self.accept_punct("."):
            second = self.identifier()
            return ast.ColumnRef(column=second, table=first)
        return ast.ColumnRef(column=first)


def _set_enforced(definition: ast.ConstraintDef, enforced: bool) -> None:
    definition.enforced = enforced


def _source_slice(tokens: List[Token], start: int, end: int) -> str:
    """Reassemble the token texts covering [start, end) for display."""
    parts: List[str] = []
    for token in tokens:
        if token.position < start or token.kind == EOF:
            continue
        if token.position >= end:
            break
        text = token.text
        if token.kind == STRING_LIT:
            text = "'" + text.replace("'", "''") + "'"
        parts.append(text)
    return " ".join(parts)
