"""Token kinds and the token type used by the lexer and parser."""

from __future__ import annotations

from typing import Any, NamedTuple

# Token kinds
KEYWORD = "KEYWORD"
IDENT = "IDENT"
INTEGER_LIT = "INTEGER"
FLOAT_LIT = "FLOAT"
STRING_LIT = "STRING"
OPERATOR = "OPERATOR"
PUNCT = "PUNCT"
EOF = "EOF"

# Reserved words of the dialect.  Identifiers matching these (case
# insensitively) lex as KEYWORD tokens.
KEYWORDS = frozenset(
    """
    select distinct from where group by having order asc desc limit
    union all and or not between in is null like exists
    as on inner left right outer join cross
    create table index unique primary key foreign references check
    constraint enforced summary view materialized
    insert into values delete update set drop
    begin commit rollback transaction start work
    true false date integer int bigint smallint double float real
    decimal numeric varchar char text string bool boolean
    count sum avg min max abs
    """.split()
)

MULTI_CHAR_OPERATORS = ("<=", ">=", "<>", "!=")
SINGLE_CHAR_OPERATORS = ("=", "<", ">", "+", "-", "*", "/", "%")
PUNCTUATION = ("(", ")", ",", ".", ";")


class Token(NamedTuple):
    """One lexical token.

    ``value`` holds the canonical form: lower-cased text for keywords and
    identifiers, the decoded string for string literals, and Python
    numbers for numeric literals.  ``text`` preserves the original
    spelling; ``position`` is the character offset for error messages.
    """

    kind: str
    value: Any
    text: str
    position: int

    def is_keyword(self, *words: str) -> bool:
        return self.kind == KEYWORD and self.value in words

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}@{self.position})"
