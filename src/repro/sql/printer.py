"""Render AST nodes back to SQL text.

Used by EXPLAIN output, catalog listings, and round-trip tests
(``parse(sql_of(parse(text)))`` must equal ``parse(text)``).
"""

from __future__ import annotations

from typing import Union

from repro.engine.types import days_to_date
from repro.sql import ast

_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 4, "<>": 4, "<": 4, "<=": 4, ">": 4, ">=": 4, "like": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}


def sql_of(node: Union[ast.Node, ast.Expression]) -> str:
    """Render any statement or expression node as SQL text."""
    method = _DISPATCH.get(type(node))
    if method is None:
        raise TypeError(f"cannot print {type(node).__name__}")
    return method(node)


# ----------------------------------------------------------- expressions


def _literal(node: ast.Literal) -> str:
    value = node.value
    if value is None:
        return "NULL"
    if node.is_date and isinstance(value, int):
        return f"DATE '{days_to_date(value).isoformat()}'"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def _column(node: ast.ColumnRef) -> str:
    return node.qualified


def _runtime_parameter(node: ast.RuntimeParameter) -> str:
    return repr(node)  # PARAM(name.attribute) — EXPLAIN-only, not parseable


def _wrap(child: ast.Expression, parent_precedence: int) -> str:
    text = sql_of(child)
    if isinstance(child, ast.BinaryOp):
        if _PRECEDENCE.get(child.op, 7) < parent_precedence:
            return f"({text})"
    return text


def _binary(node: ast.BinaryOp) -> str:
    precedence = _PRECEDENCE.get(node.op, 7)
    op = node.op.upper() if node.op in ("and", "or", "like") else node.op
    left = _wrap(node.left, precedence)
    right = _wrap(node.right, precedence + 1)
    return f"{left} {op} {right}"


def _unary(node: ast.UnaryOp) -> str:
    if node.op == "not":
        inner = sql_of(node.operand)
        if isinstance(node.operand, ast.BinaryOp):
            inner = f"({inner})"
        return f"NOT {inner}"
    return f"-{_wrap(node.operand, 7)}"


def _between(node: ast.BetweenExpr) -> str:
    maybe_not = "NOT " if node.negated else ""
    return (
        f"{_wrap(node.operand, 5)} {maybe_not}BETWEEN "
        f"{_wrap(node.low, 5)} AND {_wrap(node.high, 5)}"
    )


def _in(node: ast.InExpr) -> str:
    maybe_not = "NOT " if node.negated else ""
    items = ", ".join(sql_of(item) for item in node.items)
    return f"{_wrap(node.operand, 5)} {maybe_not}IN ({items})"


def _is_null(node: ast.IsNullExpr) -> str:
    maybe_not = "NOT " if node.negated else ""
    return f"{_wrap(node.operand, 5)} IS {maybe_not}NULL"


def _function(node: ast.FunctionCall) -> str:
    if node.star:
        return f"{node.name.upper()}(*)"
    distinct = "DISTINCT " if node.distinct else ""
    args = ", ".join(sql_of(arg) for arg in node.args)
    return f"{node.name.upper()}({distinct}{args})"


# ------------------------------------------------------------- statements


def _select_item(item: ast.SelectItem) -> str:
    if item.star:
        return f"{item.star_table}.*" if item.star_table else "*"
    assert item.expression is not None
    text = sql_of(item.expression)
    if item.alias:
        text += f" AS {item.alias}"
    return text


def _table_ref(ref: ast.TableRef) -> str:
    if ref.alias:
        return f"{ref.name} AS {ref.alias}"
    return ref.name


def _join(node: ast.Join) -> str:
    left = _from_item(node.left)
    right = _from_item(node.right)
    if node.kind == "cross":
        return f"{left} CROSS JOIN {right}"
    keyword = {"inner": "INNER JOIN", "left": "LEFT JOIN"}[node.kind]
    return f"{left} {keyword} {right} ON {sql_of(node.condition)}"


def _from_item(item: Union[ast.TableRef, ast.Join]) -> str:
    if isinstance(item, ast.TableRef):
        return _table_ref(item)
    return _join(item)


def _select(node: ast.SelectStatement) -> str:
    parts = ["SELECT"]
    if node.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_select_item(item) for item in node.select_items))
    if node.from_clause:
        parts.append("FROM")
        parts.append(", ".join(_from_item(item) for item in node.from_clause))
    if node.where is not None:
        parts.append("WHERE")
        parts.append(sql_of(node.where))
    if node.group_by:
        parts.append("GROUP BY")
        parts.append(", ".join(sql_of(e) for e in node.group_by))
    if node.having is not None:
        parts.append("HAVING")
        parts.append(sql_of(node.having))
    if node.order_by:
        parts.append("ORDER BY")
        parts.append(", ".join(_order_item(i) for i in node.order_by))
    if node.limit is not None:
        parts.append(f"LIMIT {node.limit}")
    return " ".join(parts)


def _order_item(item: ast.OrderItem) -> str:
    suffix = "" if item.ascending else " DESC"
    return sql_of(item.expression) + suffix


def _union(node: ast.UnionAll) -> str:
    body = " UNION ALL ".join(f"({_select(b)})" for b in node.branches)
    if node.order_by:
        body += " ORDER BY " + ", ".join(_order_item(i) for i in node.order_by)
    if node.limit is not None:
        body += f" LIMIT {node.limit}"
    return body


def _create_table(node: ast.CreateTable) -> str:
    pieces = []
    for column in node.columns:
        text = f"{column.name} {column.type_name.upper()}"
        if column.length is not None:
            text += f"({column.length})"
        if column.not_null:
            text += " NOT NULL"
        if column.primary_key:
            text += " PRIMARY KEY"
        pieces.append(text)
    inline_pk_columns = {c.name for c in node.columns if c.primary_key}
    for definition in node.constraints:
        if (
            isinstance(definition, ast.PrimaryKeyDef)
            and definition.name is None
            and definition.columns
            and set(definition.columns) <= inline_pk_columns
        ):
            continue  # already printed inline with its column
        pieces.append(_constraint_def(definition))
    return f"CREATE TABLE {node.name} ({', '.join(pieces)})"


def _constraint_def(definition: ast.ConstraintDef) -> str:
    prefix = f"CONSTRAINT {definition.name} " if definition.name else ""
    suffix = "" if definition.enforced else " NOT ENFORCED"
    if isinstance(definition, ast.PrimaryKeyDef):
        # Inline single-column PKs are already printed with the column.
        body = f"PRIMARY KEY ({', '.join(definition.columns)})"
    elif isinstance(definition, ast.UniqueDef):
        body = f"UNIQUE ({', '.join(definition.columns)})"
    elif isinstance(definition, ast.ForeignKeyDef):
        body = (
            f"FOREIGN KEY ({', '.join(definition.columns)}) REFERENCES "
            f"{definition.parent_table}"
        )
        if definition.parent_columns:
            body += f" ({', '.join(definition.parent_columns)})"
    else:
        assert isinstance(definition, ast.CheckDef)
        body = f"CHECK ({sql_of(definition.expression)})"
    return prefix + body + suffix


def _create_index(node: ast.CreateIndex) -> str:
    unique = "UNIQUE " if node.unique else ""
    return (
        f"CREATE {unique}INDEX {node.name} ON {node.table} "
        f"({', '.join(node.columns)})"
    )


def _create_summary(node: ast.CreateSummaryTable) -> str:
    return f"CREATE SUMMARY TABLE {node.name} AS ({_select(node.select)})"


def _drop_table(node: ast.DropTable) -> str:
    return f"DROP TABLE {node.name}"


def _insert(node: ast.Insert) -> str:
    columns = f" ({', '.join(node.columns)})" if node.columns else ""
    rows = ", ".join(
        "(" + ", ".join(sql_of(value) for value in row) + ")"
        for row in node.rows
    )
    return f"INSERT INTO {node.table}{columns} VALUES {rows}"


def _delete(node: ast.Delete) -> str:
    where = f" WHERE {sql_of(node.where)}" if node.where is not None else ""
    return f"DELETE FROM {node.table}{where}"


def _update(node: ast.Update) -> str:
    sets = ", ".join(f"{c} = {sql_of(e)}" for c, e in node.assignments)
    where = f" WHERE {sql_of(node.where)}" if node.where is not None else ""
    return f"UPDATE {node.table} SET {sets}{where}"


def _begin_txn(node: ast.BeginTransaction) -> str:
    return "BEGIN"


def _commit_txn(node: ast.CommitTransaction) -> str:
    return "COMMIT"


def _rollback_txn(node: ast.RollbackTransaction) -> str:
    return "ROLLBACK"


_DISPATCH = {
    ast.Literal: _literal,
    ast.ColumnRef: _column,
    ast.RuntimeParameter: _runtime_parameter,
    ast.BinaryOp: _binary,
    ast.UnaryOp: _unary,
    ast.BetweenExpr: _between,
    ast.InExpr: _in,
    ast.IsNullExpr: _is_null,
    ast.FunctionCall: _function,
    ast.SelectStatement: _select,
    ast.UnionAll: _union,
    ast.CreateTable: _create_table,
    ast.CreateIndex: _create_index,
    ast.CreateSummaryTable: _create_summary,
    ast.DropTable: _drop_table,
    ast.Insert: _insert,
    ast.Delete: _delete,
    ast.Update: _update,
    ast.BeginTransaction: _begin_txn,
    ast.CommitTransaction: _commit_txn,
    ast.RollbackTransaction: _rollback_txn,
}
