"""SQL front end: lexer, parser, statement/expression AST, and printer.

The dialect is a compact subset of SQL-92 plus DB2's ``CREATE SUMMARY
TABLE`` (for ASTs) and the ``NOT ENFORCED`` constraint attribute (for
informational constraints), which are what the paper's machinery needs.
"""

from repro.sql.lexer import tokenize
from repro.sql.parser import parse_expression, parse_statement
from repro.sql.printer import sql_of

__all__ = ["parse_expression", "parse_statement", "sql_of", "tokenize"]
