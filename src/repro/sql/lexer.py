"""Hand-written SQL lexer.

Produces a list of :class:`~repro.sql.tokens.Token` ending with an EOF
token.  Supports ``--`` line comments and ``/* ... */`` block comments,
single-quoted strings with ``''`` escaping, and double-quoted delimited
identifiers.
"""

from __future__ import annotations

from typing import List

from repro.errors import LexError
from repro.sql.tokens import (
    EOF,
    FLOAT_LIT,
    IDENT,
    INTEGER_LIT,
    KEYWORD,
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    OPERATOR,
    PUNCT,
    PUNCTUATION,
    SINGLE_CHAR_OPERATORS,
    STRING_LIT,
    Token,
)


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL ``text``; raises :class:`LexError` on bad input."""
    tokens: List[Token] = []
    at = 0
    length = len(text)
    while at < length:
        ch = text[at]
        # -- whitespace and comments ------------------------------------
        if ch.isspace():
            at += 1
            continue
        if ch == "-" and text.startswith("--", at):
            newline = text.find("\n", at)
            at = length if newline < 0 else newline + 1
            continue
        if ch == "/" and text.startswith("/*", at):
            end = text.find("*/", at + 2)
            if end < 0:
                raise LexError("unterminated block comment", at)
            at = end + 2
            continue
        # -- string literal ------------------------------------------------
        if ch == "'":
            start = at
            value, at = _lex_string(text, at)
            tokens.append(Token(STRING_LIT, value, value, start))
            continue
        # -- delimited identifier -------------------------------------------
        if ch == '"':
            end = text.find('"', at + 1)
            if end < 0:
                raise LexError("unterminated delimited identifier", at)
            word = text[at + 1 : end]
            tokens.append(Token(IDENT, word.lower(), word, at))
            at = end + 1
            continue
        # -- number ---------------------------------------------------------
        if ch.isdigit() or (ch == "." and at + 1 < length and text[at + 1].isdigit()):
            token, at = _lex_number(text, at)
            tokens.append(token)
            continue
        # -- identifier / keyword ---------------------------------------------
        if ch.isalpha() or ch == "_":
            start = at
            while at < length and (text[at].isalnum() or text[at] == "_"):
                at += 1
            word = text[start:at]
            lowered = word.lower()
            kind = KEYWORD if lowered in KEYWORDS else IDENT
            tokens.append(Token(kind, lowered, word, start))
            continue
        # -- operators & punctuation -------------------------------------------
        two = text[at : at + 2]
        if two in MULTI_CHAR_OPERATORS:
            tokens.append(Token(OPERATOR, two, two, at))
            at += 2
            continue
        if ch in SINGLE_CHAR_OPERATORS:
            tokens.append(Token(OPERATOR, ch, ch, at))
            at += 1
            continue
        if ch in PUNCTUATION:
            tokens.append(Token(PUNCT, ch, ch, at))
            at += 1
            continue
        raise LexError(f"unexpected character {ch!r}", at)
    tokens.append(Token(EOF, None, "", length))
    return tokens


def _lex_string(text: str, start: int) -> tuple:
    """Lex a single-quoted string with '' escapes; returns (value, next)."""
    parts: List[str] = []
    at = start + 1
    length = len(text)
    while at < length:
        ch = text[at]
        if ch == "'":
            if at + 1 < length and text[at + 1] == "'":
                parts.append("'")
                at += 2
                continue
            return "".join(parts), at + 1
        parts.append(ch)
        at += 1
    raise LexError("unterminated string literal", start)


def _lex_number(text: str, start: int) -> tuple:
    """Lex an integer or float literal; returns (Token, next)."""
    at = start
    length = len(text)
    saw_dot = False
    saw_exp = False
    while at < length:
        ch = text[at]
        if ch.isdigit():
            at += 1
        elif ch == "." and not saw_dot and not saw_exp:
            saw_dot = True
            at += 1
        elif ch in "eE" and not saw_exp and at > start:
            nxt = text[at + 1 : at + 2]
            if nxt.isdigit() or (
                nxt in "+-" and text[at + 2 : at + 3].isdigit()
            ):
                saw_exp = True
                at += 2 if nxt in "+-" else 1
            else:
                break
        else:
            break
    spelling = text[start:at]
    if saw_dot or saw_exp:
        return Token(FLOAT_LIT, float(spelling), spelling, start), at
    return Token(INTEGER_LIT, int(spelling), spelling, start), at
