"""Abstract syntax tree for the SQL dialect.

Expression and statement nodes are plain dataclasses.  Column references
and table names are stored lower-cased (identifiers are case-insensitive).
Date literals are stored in internal day-number form (see
:mod:`repro.engine.types`) with ``is_date`` set so the printer can
round-trip them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union


class Node:
    """Marker base class for every AST node."""


class Expression(Node):
    """Marker base class for expression nodes."""


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(eq=True)
class Literal(Expression):
    """A constant: int, float, str, bool, None, or a date (day number)."""

    value: Any
    is_date: bool = False

    def __hash__(self) -> int:
        return hash((type(self.value), self.value, self.is_date))


@dataclass(eq=True)
class ColumnRef(Expression):
    """A possibly-qualified column reference, e.g. ``t.a`` or ``a``."""

    column: str
    table: Optional[str] = None

    def __post_init__(self) -> None:
        self.column = self.column.lower()
        if self.table is not None:
            self.table = self.table.lower()

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column

    def __hash__(self) -> int:
        return hash((self.table, self.column))


@dataclass(eq=True)
class UnaryOp(Expression):
    """``-expr`` or ``NOT expr``."""

    op: str  # "-" | "not"
    operand: Expression

    def __hash__(self) -> int:
        return hash((self.op, self.operand))


@dataclass(eq=True)
class BinaryOp(Expression):
    """Arithmetic (+,-,*,/,%), comparison (=,<>,<,<=,>,>=), AND, OR."""

    op: str
    left: Expression
    right: Expression

    def __hash__(self) -> int:
        return hash((self.op, self.left, self.right))


@dataclass(eq=True)
class BetweenExpr(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def __hash__(self) -> int:
        return hash((self.operand, self.low, self.high, self.negated))


@dataclass(eq=True)
class InExpr(Expression):
    """``expr [NOT] IN (item, ...)`` over a literal/expression list."""

    operand: Expression
    items: Tuple[Expression, ...] = ()
    negated: bool = False

    def __hash__(self) -> int:
        return hash((self.operand, self.items, self.negated))


@dataclass(eq=True)
class IsNullExpr(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def __hash__(self) -> int:
        return hash((self.operand, self.negated))


@dataclass(eq=False)
class RuntimeParameter(Expression):
    """A plan parameter resolved from a soft constraint at run time.

    Paper Section 4.2 (runtime optimization): "The actual values in the
    ASC are not important ... Rather, the availability of this
    information (of the ASC) at runtime is important."  A plan built with
    runtime parameters survives value-changing repairs (e.g. min/max
    widening): every evaluation reads the constraint's *current* value.

    ``constraint`` is the live soft-constraint object; ``attribute`` names
    the field to read (e.g. ``"low"`` / ``"high"`` of a
    :class:`~repro.softcon.minmax.MinMaxSC`).  Compares by identity.
    """

    constraint: Any
    attribute: str

    def current_value(self) -> Any:
        return getattr(self.constraint, self.attribute)

    def __repr__(self) -> str:
        name = getattr(self.constraint, "name", "?")
        return f"PARAM({name}.{self.attribute})"


@dataclass(eq=True)
class FunctionCall(Expression):
    """A function application; aggregates set ``is_aggregate``.

    ``star`` marks ``COUNT(*)``.
    """

    name: str
    args: Tuple[Expression, ...] = ()
    distinct: bool = False
    star: bool = False

    AGGREGATES = frozenset(["count", "sum", "avg", "min", "max"])

    def __post_init__(self) -> None:
        self.name = self.name.lower()

    @property
    def is_aggregate(self) -> bool:
        return self.name in self.AGGREGATES

    def __hash__(self) -> int:
        return hash((self.name, self.args, self.distinct, self.star))


# --------------------------------------------------------------------------
# Query structure
# --------------------------------------------------------------------------


@dataclass(eq=True)
class SelectItem(Node):
    """One item of the select list; ``star`` marks ``*`` / ``t.*``."""

    expression: Optional[Expression] = None
    alias: Optional[str] = None
    star: bool = False
    star_table: Optional[str] = None

    def __post_init__(self) -> None:
        if self.alias is not None:
            self.alias = self.alias.lower()
        if self.star_table is not None:
            self.star_table = self.star_table.lower()


@dataclass(eq=True)
class TableRef(Node):
    """A base-table reference with an optional alias."""

    name: str
    alias: Optional[str] = None

    def __post_init__(self) -> None:
        self.name = self.name.lower()
        if self.alias is not None:
            self.alias = self.alias.lower()

    @property
    def binding(self) -> str:
        """The name this table is visible as within the query."""
        return self.alias or self.name


@dataclass(eq=True)
class Join(Node):
    """An explicit join between two table expressions."""

    kind: str  # "inner" | "cross" | "left"
    left: Union["TableRef", "Join"]
    right: Union["TableRef", "Join"]
    condition: Optional[Expression] = None


@dataclass(eq=True)
class OrderItem(Node):
    """One ORDER BY key."""

    expression: Expression
    ascending: bool = True


@dataclass(eq=True)
class SelectStatement(Node):
    """A single SELECT block (no set operations)."""

    select_items: List[SelectItem] = field(default_factory=list)
    from_clause: List[Union[TableRef, Join]] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False


@dataclass(eq=True)
class UnionAll(Node):
    """``select UNION ALL select [UNION ALL ...]``."""

    branches: List[SelectStatement] = field(default_factory=list)
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None


# --------------------------------------------------------------------------
# DDL
# --------------------------------------------------------------------------


@dataclass(eq=True)
class ColumnDef(Node):
    """A column in CREATE TABLE."""

    name: str
    type_name: str
    length: Optional[int] = None
    not_null: bool = False
    primary_key: bool = False

    def __post_init__(self) -> None:
        self.name = self.name.lower()


@dataclass(eq=True)
class PrimaryKeyDef(Node):
    columns: List[str] = field(default_factory=list)
    name: Optional[str] = None
    enforced: bool = True


@dataclass(eq=True)
class UniqueDef(Node):
    columns: List[str] = field(default_factory=list)
    name: Optional[str] = None
    enforced: bool = True


@dataclass(eq=True)
class ForeignKeyDef(Node):
    columns: List[str] = field(default_factory=list)
    parent_table: str = ""
    parent_columns: List[str] = field(default_factory=list)
    name: Optional[str] = None
    enforced: bool = True


@dataclass(eq=True)
class CheckDef(Node):
    expression: Optional[Expression] = None
    sql_text: str = ""
    name: Optional[str] = None
    enforced: bool = True


ConstraintDef = Union[PrimaryKeyDef, UniqueDef, ForeignKeyDef, CheckDef]


@dataclass(eq=True)
class CreateTable(Node):
    name: str = ""
    columns: List[ColumnDef] = field(default_factory=list)
    constraints: List[ConstraintDef] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.name = self.name.lower()


@dataclass(eq=True)
class CreateIndex(Node):
    name: str = ""
    table: str = ""
    columns: List[str] = field(default_factory=list)
    unique: bool = False

    def __post_init__(self) -> None:
        self.name = self.name.lower()
        self.table = self.table.lower()


@dataclass(eq=True)
class CreateSummaryTable(Node):
    """DB2-style AST: ``CREATE SUMMARY TABLE name AS (select ...)``."""

    name: str = ""
    select: Optional[SelectStatement] = None

    def __post_init__(self) -> None:
        self.name = self.name.lower()


@dataclass(eq=True)
class DropTable(Node):
    name: str = ""

    def __post_init__(self) -> None:
        self.name = self.name.lower()


# --------------------------------------------------------------------------
# DML
# --------------------------------------------------------------------------


@dataclass(eq=True)
class Insert(Node):
    table: str = ""
    columns: List[str] = field(default_factory=list)
    rows: List[List[Expression]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.table = self.table.lower()
        self.columns = [c.lower() for c in self.columns]


@dataclass(eq=True)
class Delete(Node):
    table: str = ""
    where: Optional[Expression] = None

    def __post_init__(self) -> None:
        self.table = self.table.lower()


@dataclass(eq=True)
class Update(Node):
    table: str = ""
    assignments: List[Tuple[str, Expression]] = field(default_factory=list)
    where: Optional[Expression] = None

    def __post_init__(self) -> None:
        self.table = self.table.lower()
        self.assignments = [(c.lower(), e) for c, e in self.assignments]


# --------------------------------------------------------------------------
# Transaction control
# --------------------------------------------------------------------------


@dataclass(eq=True)
class BeginTransaction(Node):
    """``BEGIN [WORK | TRANSACTION]`` / ``START TRANSACTION``."""


@dataclass(eq=True)
class CommitTransaction(Node):
    """``COMMIT [WORK | TRANSACTION]``."""


@dataclass(eq=True)
class RollbackTransaction(Node):
    """``ROLLBACK [WORK | TRANSACTION]``."""


Statement = Union[
    SelectStatement,
    UnionAll,
    CreateTable,
    CreateIndex,
    CreateSummaryTable,
    DropTable,
    Insert,
    Delete,
    Update,
    BeginTransaction,
    CommitTransaction,
    RollbackTransaction,
]
