"""The plan interpreter and its execution metrics.

Two interpreters live behind the :class:`Executor` facade: the batched
(vectorized) pipeline in :mod:`repro.executor.vectorized` — the default —
and the original row-at-a-time iterator model implemented here, selected
with ``batch_size=0`` and used as the differential-testing oracle.
"""

from __future__ import annotations

import itertools
import os
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.engine.database import Database
from repro.errors import ExecutionError, QueryGuardError
from repro.executor.aggregates import AggregateState, new_states
from repro.executor.batch import DEFAULT_BATCH_SIZE
from repro.executor.joins import run_hash_join, run_nested_loop_join
from repro.executor.scans import run_index_scan, run_seq_scan
from repro.executor.sorts import run_sort
from repro.executor.vectorized import BatchedInterpreter
from repro.expr.eval import evaluate
from repro.optimizer.physical import (
    Distinct,
    EmptyResult,
    Extend,
    Filter,
    GroupBy,
    HashJoin,
    IndexScan,
    Limit,
    NestedLoopJoin,
    PhysicalNode,
    PhysicalPlan,
    Project,
    SeqScan,
    Sort,
    UnionAll,
)

RowDict = Dict[str, Any]


def default_workers() -> int:
    """Scan-morsel worker count from ``REPRO_WORKERS`` (default 1).

    ``1`` means strictly sequential scans; anything larger enables the
    morsel-parallel seq-scan path for observation-free scans (see
    :func:`repro.executor.scans.run_seq_scan_columnar`).
    """
    try:
        return max(1, int(os.environ.get("REPRO_WORKERS", "1")))
    except ValueError:
        return 1


class ExecutionResult:
    """Rows plus the I/O the plan actually performed."""

    #: Worst per-node q-error of this execution; set only when feedback
    #: collection was on (None otherwise).
    max_qerror: Optional[float] = None
    #: Observations this execution contributed to the feedback store.
    feedback_observations: int = 0
    #: True when a guard breach under the ``"partial"`` policy cut the
    #: execution short: ``rows`` holds only the rows produced so far.
    truncated: bool = False
    #: The armed guard's budget-consumption snapshot (None when the
    #: execution ran unguarded).
    guard_report: Optional[Dict[str, Any]] = None
    #: The typed breach that truncated this execution (partial policy
    #: only; None when the run completed).
    guard_breach: Optional[Exception] = None

    def __init__(
        self,
        columns: List[str],
        rows: List[RowDict],
        page_reads: int,
        rows_read: int,
    ) -> None:
        self.columns = columns
        self.rows = rows
        self.page_reads = page_reads
        self.rows_read = rows_read

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def tuples(self) -> List[Tuple[Any, ...]]:
        """Rows as tuples in output-column order."""
        return [
            tuple(row[name] for name in self.columns) for row in self.rows
        ]

    def column(self, name: str) -> List[Any]:
        return [row[name] for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a one-row one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][self.columns[0]]

    def __repr__(self) -> str:
        return (
            f"ExecutionResult(rows={self.row_count}, "
            f"page_reads={self.page_reads})"
        )


class Executor:
    """Interprets physical plans against a database.

    Execution is *batched* (vectorized) by default: operators exchange
    :class:`~repro.executor.batch.RowBatch` objects of up to
    ``batch_size`` rows (see :mod:`repro.executor.vectorized`).  Passing
    ``batch_size=0`` (or ``None``) selects the original row-at-a-time
    interpreter — kept as an independently-implemented oracle that the
    differential test harness holds the batched pipeline to.

    With a ``registry``, every execution first checks that the plan's soft
    constraints are still in the state they were compiled against — the
    guard for Section 4.1's conflict, where a plan compiled with an ASC is
    executed after another transaction overturned it.  A stale plan raises
    :class:`~repro.errors.StalePlanError`; the caller re-issues with a
    fresh compile (see :meth:`repro.api.SoftDB.execute_plan`).

    With a ``feedback`` store (:class:`~repro.feedback.store.FeedbackStore`),
    every execution is instrumented, its per-node actual cardinalities are
    harvested into the store, and the result carries ``max_qerror`` /
    ``feedback_observations``.  Without one, nothing feedback-related runs
    — the default path does zero extra work.
    """

    def __init__(
        self,
        database: Database,
        registry: Optional[Any] = None,
        batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
        feedback: Optional[Any] = None,
        columnar: bool = True,
        workers: Optional[int] = None,
    ) -> None:
        self.database = database
        self.registry = registry
        self.batch_size = batch_size
        self.feedback = feedback
        self.columnar = columnar
        self.workers = default_workers() if workers is None else workers

    def execute(
        self,
        plan: PhysicalPlan,
        instrument: bool = False,
        batch_size: Optional[int] = None,
        collect_feedback: Optional[bool] = None,
        guard: Optional[Any] = None,
        cancel: Optional[Any] = None,
        columnar: Optional[bool] = None,
        workers: Optional[int] = None,
    ) -> ExecutionResult:
        """Run a plan.  With ``instrument``, every operator's actual output
        row count is recorded on the node (``actual_rows``; batched runs
        also record ``actual_batches``) so EXPLAIN ANALYZE can print
        estimates next to actuals.  ``batch_size`` overrides the
        executor's default for this one execution.  ``collect_feedback``
        (default: on iff the executor holds a feedback store) implies
        instrumentation, also counts scan input rows / join pairs, and
        harvests the actuals into the store afterwards.

        ``guard`` (a :class:`~repro.resilience.guards.QueryGuard`) imposes
        resource budgets checked at row/batch boundaries; ``cancel`` (a
        :class:`~repro.resilience.guards.CancellationToken`) allows
        cooperative cancellation.  A breach raises the typed
        :class:`~repro.errors.QueryGuardError`, or — under the guard's
        ``"partial"`` policy — returns the rows produced so far with
        ``truncated=True``.  Feedback is harvested only from successful,
        untruncated executions, so partial operator counters never pollute
        the store.

        ``columnar`` / ``workers`` override the executor's defaults for
        this one execution (batched path only): ``columnar=False``
        selects the list-based batch kernels, ``workers>1`` enables
        morsel-parallel seq scans for observation-free executions."""
        self._guard_freshness(plan)
        collect = (
            self.feedback is not None
            if collect_feedback is None
            else collect_feedback
        )
        if collect:
            from repro.feedback.counters import clear_actuals

            # A cached plan still carries the previous run's counters;
            # reset so partially-executed operators can't leak old counts.
            clear_actuals(plan.root)
            instrument = True
        active = self._arm(guard, cancel)
        size = self.batch_size if batch_size is None else batch_size
        use_columnar = self.columnar if columnar is None else columnar
        use_workers = self.workers if workers is None else workers
        before_reads = self.database.counters.page_reads
        before_rows = self.database.counters.rows_read
        truncated = False
        rows: List[RowDict] = []
        try:
            if size:
                interpreter = BatchedInterpreter(
                    self.database,
                    size,
                    instrument=instrument,
                    collect=collect,
                    guard=active,
                    columnar=use_columnar,
                    workers=use_workers,
                )
                if active is None:
                    rows = interpreter.rows(plan.root)
                else:
                    for batch in interpreter.run(plan.root):
                        active.note_rows(len(batch))
                        rows.extend(batch.to_rows())
            else:
                self._instrument = instrument
                self._collect = collect
                self._guard = active
                try:
                    if active is None:
                        rows = list(self._run_top(plan.root))
                    else:
                        for row in self._run_top(plan.root):
                            active.note_rows(1)
                            rows.append(row)
                finally:
                    self._instrument = False
                    self._collect = False
                    self._guard = None
        except QueryGuardError as error:
            if guard is None or guard.on_breach != "partial":
                raise
            truncated = True
            breach = error
        result = ExecutionResult(
            columns=plan.output_names,
            rows=rows,
            page_reads=self.database.counters.page_reads - before_reads,
            rows_read=self.database.counters.rows_read - before_rows,
        )
        result.truncated = truncated
        if truncated:
            result.guard_breach = breach
        if active is not None:
            result.guard_report = active.finish()
        if collect and not truncated:
            if self.feedback is not None:
                from repro.feedback.counters import harvest

                summary = harvest(plan, self.feedback)
                result.max_qerror = summary.max_qerror
                result.feedback_observations = summary.observations
            else:
                from repro.feedback.qerror import plan_max_qerror

                result.max_qerror = plan_max_qerror(plan.root)
        return result

    def _arm(self, guard: Optional[Any], cancel: Optional[Any]) -> Optional[Any]:
        """Arm the guard (or a no-limit stand-in carrying just the token)."""
        if guard is None and cancel is None:
            return None
        from repro.resilience.guards import QueryGuard

        if guard is None:
            guard = QueryGuard()
        return guard.arm(self.database.counters, cancel)

    _instrument = False
    _collect = False
    _guard = None

    def _run_top(self, node: PhysicalNode) -> Iterator[RowDict]:
        if not self._instrument:
            return self._run_raw(node)
        return self._counted(node)

    def _counted(self, node: PhysicalNode) -> Iterator[RowDict]:
        count = 0
        for row in self._run_raw(node):
            count += 1
            yield row
        node.actual_rows = count

    def _run(self, node: PhysicalNode) -> Iterator[RowDict]:
        """Child dispatch used by operators: instrumented when enabled."""
        if self._instrument:
            return self._counted(node)
        return self._run_raw(node)

    def _guard_freshness(self, plan: PhysicalPlan) -> None:
        if self.registry is None:
            return
        from repro.errors import StalePlanError
        from repro.softcon.base import SCState

        stale = []
        for name, version in plan.sc_validity_snapshot.items():
            try:
                constraint = self.registry.get(name)
            except Exception:  # noqa: BLE001 - dropped from the registry
                stale.append(name)
                continue
            if (
                constraint.state is not SCState.ACTIVE
                or constraint.validity_version != version
            ):
                stale.append(name)
        for name, version in plan.sc_value_snapshot.items():
            try:
                constraint = self.registry.get(name)
            except Exception:  # noqa: BLE001
                stale.append(name)
                continue
            if constraint.values_version != version:
                stale.append(name)
        if stale:
            raise StalePlanError(
                f"plan relies on changed soft constraint(s): "
                f"{sorted(set(stale))}",
                stale_constraints=tuple(sorted(set(stale))),
            )

    # -- dispatch -------------------------------------------------------------

    def _run_raw(self, node: PhysicalNode) -> Iterator[RowDict]:
        if isinstance(node, EmptyResult):
            return iter(())
        if isinstance(node, SeqScan):
            return run_seq_scan(
                self.database,
                node,
                count_input=self._collect,
                guard=self._guard,
            )
        if isinstance(node, IndexScan):
            return run_index_scan(
                self.database,
                node,
                count_input=self._collect,
                guard=self._guard,
            )
        if isinstance(node, Filter):
            return self._run_filter(node)
        if isinstance(node, NestedLoopJoin):
            return run_nested_loop_join(
                node, self._run, count_pairs=self._collect, guard=self._guard
            )
        if isinstance(node, HashJoin):
            return run_hash_join(
                node, self._run, count_pairs=self._collect, guard=self._guard
            )
        if isinstance(node, GroupBy):
            return self._run_group_by(node)
        if isinstance(node, Extend):
            return self._run_extend(node)
        if isinstance(node, Sort):
            return run_sort(
                node,
                self._run(node.child),
                count_input=self._collect,
                guard=self._guard,
            )
        if isinstance(node, Project):
            return self._run_project(node)
        if isinstance(node, Distinct):
            return self._run_distinct(node)
        if isinstance(node, Limit):
            return itertools.islice(self._run(node.child), node.count)
        if isinstance(node, UnionAll):
            return itertools.chain.from_iterable(
                self._run(child) for child in node.inputs
            )
        raise ExecutionError(f"cannot execute {type(node).__name__}")

    # -- operators ----------------------------------------------------------------

    def _run_filter(self, node: Filter) -> Iterator[RowDict]:
        if node.compiled_predicate is not None:
            row_fn = node.compiled_predicate[0]
            for row in self._run(node.child):
                if row_fn(row) is True:
                    yield row
        else:
            for row in self._run(node.child):
                if evaluate(node.predicate, row) is True:
                    yield row

    def _run_extend(self, node: Extend) -> Iterator[RowDict]:
        if node.compiled_outputs is not None:
            targets = [
                (output.name, pair[0])
                for output, pair in zip(node.outputs, node.compiled_outputs)
            ]
            for row in self._run(node.child):
                out = dict(row)
                for name, row_fn in targets:
                    out[name] = row_fn(row)
                yield out
        else:
            for row in self._run(node.child):
                out = dict(row)
                for output in node.outputs:
                    out[output.name] = evaluate(output.expression, row)
                yield out

    def _run_project(self, node: Project) -> Iterator[RowDict]:
        for row in self._run(node.child):
            yield {
                name: row.get(source)
                for name, source in zip(node.names, node.source_names)
            }

    def _run_distinct(self, node: Distinct) -> Iterator[RowDict]:
        seen: set = set()
        for row in self._run(node.child):
            key = tuple(sorted(row.items()))
            if key in seen:
                continue
            seen.add(key)
            yield row

    def _run_group_by(self, node: GroupBy) -> Iterator[RowDict]:
        groups: Dict[Tuple[Any, ...], Tuple[RowDict, List[AggregateState]]] = {}
        order: List[Tuple[Any, ...]] = []
        compiled_keys = node.compiled_keys
        if compiled_keys is not None:
            key_fns = [pair[0] for pair in compiled_keys]
            for row in self._run(node.child):
                key = tuple(fn(row) for fn in key_fns)
                entry = groups.get(key)
                if entry is None:
                    entry = (
                        row,
                        new_states(
                            node.aggregates, node.compiled_aggregate_args
                        ),
                    )
                    groups[key] = entry
                    order.append(key)
                for state in entry[1]:
                    state.update(row)
        else:
            for row in self._run(node.child):
                key = tuple(evaluate(column, row) for column in node.keys)
                entry = groups.get(key)
                if entry is None:
                    entry = (row, new_states(node.aggregates))
                    groups[key] = entry
                    order.append(key)
                for state in entry[1]:
                    state.update(row)
        if not groups and not node.keys:
            # Scalar aggregation over an empty input: one all-default row.
            empty: Dict[str, Any] = {}
            for state in new_states(node.aggregates):
                empty[state.spec.output_name] = state.result()
            if node.having is None or self._having_ok(node, empty):
                yield empty
            return
        for key in order:
            first_row, states = groups[key]
            out: RowDict = {}
            for column, value in zip(node.keys, key):
                out[column.qualified] = value
                out[column.column] = value
            for index, column in enumerate(node.carried):
                if node.compiled_carried is not None:
                    value = node.compiled_carried[index][0](first_row)
                else:
                    value = evaluate(column, first_row)
                out[column.qualified] = value
                out[column.column] = value
            for state in states:
                out[state.spec.output_name] = state.result()
            if node.having is None or self._having_ok(node, out):
                yield out

    @staticmethod
    def _having_ok(node: GroupBy, row: RowDict) -> bool:
        if node.compiled_having is not None:
            return node.compiled_having[0](row) is True
        return evaluate(node.having, row) is True


def run_sql(
    database: Database,
    sql: str,
    registry: Optional[object] = None,
    optimizer: Optional[object] = None,
    batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
) -> ExecutionResult:
    """One-call convenience: optimize and execute a SELECT statement."""
    from repro.optimizer.planner import Optimizer

    if optimizer is None:
        optimizer = Optimizer(database, registry)
    plan = optimizer.optimize(sql)
    return Executor(database, batch_size=batch_size).execute(plan)
