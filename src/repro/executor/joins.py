"""Join operators: hash join and (materialized-inner) nested loops.

Each join has a row-at-a-time form and a batched twin.  The batched
forms materialize the build/inner side as one concatenated
:class:`~repro.executor.batch.RowBatch`, evaluate join keys once per
batch, and emit column-major output whose inner-side columns are gathered
(or, for nested loops, tiled by C-level list repetition) rather than
merged dict-by-dict.

Under feedback collection (``count_pairs=True``) joins additionally count
the row pairs they considered *before* any residual filter — for a hash
join that is the key-matched pair count (the equi edge's own output), for
nested loops the full ``|outer| x |inner|`` product.  The count lands on
``node.actual_pairs``; harvesting divides it by the input cardinalities
to observe the edge's true selectivity.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.executor.batch import RowBatch
from repro.executor.vecbatch import ColumnarBatch
from repro.expr.eval import evaluate, evaluate_batch
from repro.expr.vector import VectorFallback, compile_vector
from repro.optimizer.physical import HashJoin, NestedLoopJoin
from repro.sql import ast

RowDict = Dict[str, Any]
RowIterator = Iterator[RowDict]
ChildRunner = Callable[[object], RowIterator]
BatchRunner = Callable[[object], Iterator[RowBatch]]


def _count_outer(
    rows: RowIterator, node: NestedLoopJoin, inner_size: int
) -> RowIterator:
    """Count outer rows; every one is paired against the whole inner."""
    outer = 0
    try:
        for row in rows:
            outer += 1
            yield row
    finally:
        node.actual_pairs = outer * inner_size


def _note_pairs_per_row(
    rows: RowIterator, guard: Any, inner_size: int
) -> RowIterator:
    """Charge the guard's join-pair budget as each outer row arrives."""
    for row in rows:
        guard.note_pairs(inner_size)
        yield row


def run_nested_loop_join(
    node: NestedLoopJoin,
    run_child: ChildRunner,
    count_pairs: bool = False,
    guard: Any = None,
) -> RowIterator:
    """Nested loops with the inner input materialized once.

    Materializing mirrors the cost model (inner I/O paid once, CPU per
    pair) and keeps correctness simple — our page counters would otherwise
    charge repeated physical rescans that a real engine's buffer pool
    would absorb.
    """
    inner_rows: List[RowDict] = list(run_child(node.right))
    if guard is not None:
        guard.note_rows(len(inner_rows))
    outer_rows = run_child(node.left)
    if count_pairs:
        outer_rows = _count_outer(outer_rows, node, len(inner_rows))
    if guard is not None:
        outer_rows = _note_pairs_per_row(outer_rows, guard, len(inner_rows))
    condition = node.condition
    compiled = node.compiled_condition
    if condition is None:
        for left_row in outer_rows:
            for right_row in inner_rows:
                yield {**left_row, **right_row}
    elif compiled is not None:
        condition_fn = compiled[0]
        for left_row in outer_rows:
            for right_row in inner_rows:
                merged = {**left_row, **right_row}
                if condition_fn(merged) is True:
                    yield merged
    else:
        for left_row in outer_rows:
            for right_row in inner_rows:
                merged = {**left_row, **right_row}
                if evaluate(condition, merged) is True:
                    yield merged


def run_hash_join(
    node: HashJoin,
    run_child: ChildRunner,
    count_pairs: bool = False,
    guard: Any = None,
) -> RowIterator:
    """Classic hash join: build on the right input, probe with the left.

    NULL key components never match (SQL equality semantics).
    """
    right_fns = (
        [pair[0] for pair in node.compiled_right_keys]
        if node.compiled_right_keys is not None
        else None
    )
    left_fns = (
        [pair[0] for pair in node.compiled_left_keys]
        if node.compiled_left_keys is not None
        else None
    )
    residual = node.residual
    residual_fn = (
        node.compiled_residual[0] if node.compiled_residual is not None else None
    )
    build: Dict[Tuple[Any, ...], List[RowDict]] = {}
    for right_row in run_child(node.right):
        if right_fns is not None:
            key = tuple(fn(right_row) for fn in right_fns)
        else:
            key = tuple(evaluate(expr, right_row) for expr in node.right_keys)
        if any(part is None for part in key):
            continue
        build.setdefault(key, []).append(right_row)
        if guard is not None:
            guard.note_rows(1)
    pairs = 0
    try:
        if not build:
            return  # empty build side: skip scanning the probe input entirely
        for left_row in run_child(node.left):
            if left_fns is not None:
                key = tuple(fn(left_row) for fn in left_fns)
            else:
                key = tuple(
                    evaluate(expr, left_row) for expr in node.left_keys
                )
            if any(part is None for part in key):
                continue
            matches = build.get(key)
            if not matches:
                continue
            if count_pairs:
                pairs += len(matches)
            if guard is not None:
                guard.note_pairs(len(matches))
            for right_row in matches:
                merged = {**left_row, **right_row}
                if residual is None:
                    yield merged
                elif residual_fn is not None:
                    if residual_fn(merged) is True:
                        yield merged
                elif evaluate(residual, merged) is True:
                    yield merged
    finally:
        if count_pairs:
            node.actual_pairs = pairs


# -- batched variants ----------------------------------------------------------


def _merged_columns(
    left: RowBatch, right: RowBatch
) -> Tuple[Tuple[str, ...], List[str]]:
    """Output column order for ``{**left_row, **right_row}`` semantics:
    left columns first, right-only columns appended; on a name collision
    the right side's values win."""
    columns = list(left.columns)
    seen = set(columns)
    for name in right.columns:
        if name not in seen:
            columns.append(name)
    right_wins = list(right.columns)
    return tuple(columns), right_wins


def run_nested_loop_join_batched(
    node: NestedLoopJoin,
    run_child: BatchRunner,
    batch_size: int,
    count_pairs: bool = False,
    guard: Any = None,
) -> Iterator[RowBatch]:
    """Batched nested loops: inner materialized once, outer tiled against it.

    For an outer chunk of *k* rows and an inner of *m* rows the output
    chunk repeats each outer value *m* times and tiles the inner columns
    *k* times (``column * k`` — a C-level copy), then evaluates the join
    condition once over the whole k×m chunk.
    """
    inner = RowBatch.concat(list(run_child(node.right)))
    if guard is not None:
        guard.note_rows(0 if inner is None else len(inner))
    pairs = 0
    try:
        if inner is None or len(inner) == 0:
            return
        # The inner columns below are aliased into every output chunk
        # (``column * 1`` shares the object); freeze them so an in-place
        # mutation anywhere downstream fails loudly instead of
        # corrupting other chunks.
        inner.freeze()
        m = len(inner)
        # Keep output chunks near batch_size rows without splitting inner runs.
        outer_chunk = max(1, batch_size // m)
        for left in run_child(node.left):
            for start in range(0, len(left), outer_chunk):
                piece = left.slice(start, start + outer_chunk)
                k = len(piece)
                if count_pairs:
                    pairs += k * m
                if guard is not None:
                    guard.note_pairs(k * m)
                columns, _ = _merged_columns(piece, inner)
                data: Dict[str, List[Any]] = {}
                for name in piece.columns:
                    column = piece.data[name]
                    data[name] = [value for value in column for _ in range(m)]
                for name in inner.columns:
                    data[name] = (
                        inner.data[name] * k if k > 1 else inner.data[name]
                    )
                merged = RowBatch(columns, data, k * m)
                if node.condition is not None:
                    if node.compiled_condition is not None:
                        verdicts = node.compiled_condition[1](merged)
                    else:
                        verdicts = evaluate_batch(node.condition, merged)
                    merged = merged.filter_true(verdicts)
                if len(merged):
                    yield merged
    finally:
        if count_pairs:
            node.actual_pairs = pairs


def _key_columns(
    exprs: Sequence[ast.Expression],
    compiled: Optional[Sequence[Tuple[Any, Any]]],
    batch: RowBatch,
    columnar: bool,
) -> List[List[Any]]:
    """Evaluate join key expressions over a batch.

    With ``columnar`` on, *computed* keys (anything but a plain column
    reference, whose list the compiled closure already returns with zero
    copying) are extracted through the vector kernels and materialized
    back to Python values; a :class:`VectorFallback` on any key reverts
    the whole batch to the list closures for exact error parity.
    """
    if columnar and any(
        not isinstance(expr, ast.ColumnRef) for expr in exprs
    ):
        columnar_batch = ColumnarBatch.from_row_batch(batch)
        try:
            return [
                compile_vector(expr)(columnar_batch).to_list()
                for expr in exprs
            ]
        except VectorFallback:
            pass
    if compiled is not None:
        return [pair[1](batch) for pair in compiled]
    return [evaluate_batch(expr, batch) for expr in exprs]


def run_hash_join_batched(
    node: HashJoin,
    run_child: BatchRunner,
    batch_size: int,
    count_pairs: bool = False,
    guard: Any = None,
    columnar: bool = False,
) -> Iterator[RowBatch]:
    """Batched hash join: keys evaluated per batch, matches gathered.

    The build side is concatenated once; the hash table maps key tuples to
    build-row positions.  Each probe batch produces parallel gather lists
    (probe index, build index) whose columns are assembled with list
    comprehensions — no per-row dict merging.
    """
    build_side = RowBatch.concat(list(run_child(node.right)))
    if guard is not None:
        guard.note_rows(0 if build_side is None else len(build_side))
    build: Dict[Tuple[Any, ...], List[int]] = {}
    if build_side is not None and len(build_side):
        # Build columns are gathered into every output batch; freeze
        # them so aliased in-place mutation fails loudly (see RowBatch).
        build_side.freeze()
        key_columns = _key_columns(
            node.right_keys, node.compiled_right_keys, build_side, columnar
        )
        for i in range(len(build_side)):
            key = tuple(column[i] for column in key_columns)
            if any(part is None for part in key):
                continue
            build.setdefault(key, []).append(i)
    pairs = 0
    try:
        if not build:
            return  # empty build side: skip scanning the probe input entirely
        for left in run_child(node.left):
            key_columns = _key_columns(
                node.left_keys, node.compiled_left_keys, left, columnar
            )
            probe_idx: List[int] = []
            build_idx: List[int] = []
            for i in range(len(left)):
                key = tuple(column[i] for column in key_columns)
                if any(part is None for part in key):
                    continue
                matches = build.get(key)
                if matches:
                    probe_idx.extend([i] * len(matches))
                    build_idx.extend(matches)
            if not probe_idx:
                continue
            if count_pairs:
                pairs += len(probe_idx)
            if guard is not None:
                guard.note_pairs(len(probe_idx))
            columns, _ = _merged_columns(left, build_side)
            data: Dict[str, List[Any]] = {}
            for name in left.columns:
                column = left.data[name]
                data[name] = [column[i] for i in probe_idx]
            for name in build_side.columns:
                column = build_side.data[name]
                data[name] = [column[j] for j in build_idx]
            merged = RowBatch(columns, data, len(probe_idx))
            if node.residual is not None:
                if node.compiled_residual is not None:
                    verdicts = node.compiled_residual[1](merged)
                else:
                    verdicts = evaluate_batch(node.residual, merged)
                merged = merged.filter_true(verdicts)
            if len(merged):
                yield merged
    finally:
        if count_pairs:
            node.actual_pairs = pairs
