"""Join operators: hash join and (materialized-inner) nested loops."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Tuple

from repro.expr.eval import evaluate
from repro.optimizer.physical import HashJoin, NestedLoopJoin

RowDict = Dict[str, Any]
RowIterator = Iterator[RowDict]
ChildRunner = Callable[[object], RowIterator]


def run_nested_loop_join(
    node: NestedLoopJoin, run_child: ChildRunner
) -> RowIterator:
    """Nested loops with the inner input materialized once.

    Materializing mirrors the cost model (inner I/O paid once, CPU per
    pair) and keeps correctness simple — our page counters would otherwise
    charge repeated physical rescans that a real engine's buffer pool
    would absorb.
    """
    inner_rows: List[RowDict] = list(run_child(node.right))
    for left_row in run_child(node.left):
        for right_row in inner_rows:
            merged = {**left_row, **right_row}
            if node.condition is None or evaluate(node.condition, merged) is True:
                yield merged


def run_hash_join(node: HashJoin, run_child: ChildRunner) -> RowIterator:
    """Classic hash join: build on the right input, probe with the left.

    NULL key components never match (SQL equality semantics).
    """
    build: Dict[Tuple[Any, ...], List[RowDict]] = {}
    for right_row in run_child(node.right):
        key = tuple(evaluate(expr, right_row) for expr in node.right_keys)
        if any(part is None for part in key):
            continue
        build.setdefault(key, []).append(right_row)
    if not build:
        return  # empty build side: skip scanning the probe input entirely
    for left_row in run_child(node.left):
        key = tuple(evaluate(expr, left_row) for expr in node.left_keys)
        if any(part is None for part in key):
            continue
        for right_row in build.get(key, ()):
            merged = {**left_row, **right_row}
            if node.residual is None or evaluate(node.residual, merged) is True:
                yield merged
