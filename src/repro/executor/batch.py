"""Column-major row batches: the unit of exchange between vectorized operators.

A :class:`RowBatch` holds ``batch_size`` (or fewer) rows as parallel
per-column value lists keyed by the same names a row-at-a-time ``RowDict``
would use (qualified ``"t.a"`` keys from scans; bare output names after
projection; both forms after GROUP BY).  Operators never mutate a batch's
column lists — they build new batches — so lists may be shared freely
between batches (e.g. a join probe output aliases the build side's
columns instead of copying them).  Producers that *know* they are about
to share columns across batches enforce that contract mechanically with
:meth:`RowBatch.freeze`, which swaps the lists for tuples so any
in-place mutation of an aliased column raises instead of silently
corrupting every batch that shares it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Rows per batch unless the caller asks otherwise.  1024 keeps per-batch
#: Python overhead amortized while staying cache- and memory-friendly.
DEFAULT_BATCH_SIZE = 1024

RowDict = Dict[str, Any]


class RowBatch:
    """A fixed set of rows stored column-major.

    Attributes
    ----------
    columns:
        Column key names in row order (the order ``dict(row)`` would have).
    data:
        ``name -> list of values``, one list per column, all the same
        length.  Two names may alias the same list (GROUP BY emits a
        group key under both its qualified and bare name).
    length:
        Row count; kept explicitly so zero-column batches stay coherent.
    """

    __slots__ = ("columns", "data", "length")

    def __init__(
        self,
        columns: Sequence[str],
        data: Dict[str, List[Any]],
        length: Optional[int] = None,
    ) -> None:
        self.columns: Tuple[str, ...] = tuple(columns)
        self.data = data
        if length is None:
            length = len(data[self.columns[0]]) if self.columns else 0
        self.length = length

    def __len__(self) -> int:
        return self.length

    # -- construction / conversion -----------------------------------------

    @classmethod
    def from_rows(
        cls, rows: Sequence[RowDict], columns: Optional[Sequence[str]] = None
    ) -> "RowBatch":
        """Transpose row dicts into a batch (column order from the first row)."""
        if columns is None:
            columns = list(rows[0]) if rows else []
        data = {name: [row.get(name) for row in rows] for name in columns}
        return cls(columns, data, len(rows))

    @classmethod
    def from_tuples(
        cls, columns: Sequence[str], rows: Sequence[Tuple[Any, ...]]
    ) -> "RowBatch":
        """Transpose storage tuples (one value per column, in order)."""
        if rows:
            transposed = [list(column) for column in zip(*rows)]
        else:
            transposed = [[] for _ in columns]
        return cls(columns, dict(zip(columns, transposed)), len(rows))

    @classmethod
    def concat(cls, batches: Sequence["RowBatch"]) -> Optional["RowBatch"]:
        """Concatenate same-schema batches; None when there are none."""
        if not batches:
            return None
        if len(batches) == 1:
            return batches[0]
        first = batches[0]
        data: Dict[str, List[Any]] = {}
        for name in first.columns:
            merged: List[Any] = []
            for batch in batches:
                merged.extend(batch.data[name])
            data[name] = merged
        return cls(first.columns, data, sum(len(b) for b in batches))

    def to_rows(self) -> List[RowDict]:
        """Materialize as row dicts (the row-at-a-time representation)."""
        columns = self.columns
        cols = [self.data[name] for name in columns]
        return [
            dict(zip(columns, values)) for values in zip(*cols)
        ] if columns else [{} for _ in range(self.length)]

    def row(self, index: int) -> RowDict:
        """One row as a dict (used for per-group carried columns)."""
        return {name: self.data[name][index] for name in self.columns}

    def freeze(self) -> "RowBatch":
        """Swap column lists for immutable tuples, in place.

        Joins alias build/inner-side columns into many output batches;
        freezing turns a would-be silent corruption (in-place ``append``
        / ``__setitem__`` on a shared column) into an immediate
        ``TypeError``.  Tuples support everything readers use — indexing,
        iteration, slicing, ``* k`` tiling — so frozen batches flow
        through every operator unchanged.  Returns ``self``.
        """
        data = self.data
        for name, column in data.items():
            if type(column) is list:
                data[name] = tuple(column)
        return self

    # -- selection ----------------------------------------------------------

    def take(self, indices: Sequence[int]) -> "RowBatch":
        """Gather the given row positions into a new batch."""
        data = {}
        for name in self.columns:
            column = self.data[name]
            data[name] = [column[i] for i in indices]
        return RowBatch(self.columns, data, len(indices))

    def filter_true(self, mask: Sequence[Any]) -> "RowBatch":
        """Keep rows whose mask entry is exactly True (SQL WHERE semantics:
        False and UNKNOWN/None both drop the row)."""
        keep = [i for i, flag in enumerate(mask) if flag is True]
        if len(keep) == self.length:
            return self
        return self.take(keep)

    def slice(self, start: int, stop: int) -> "RowBatch":
        """Contiguous row range as a new batch."""
        data = {name: self.data[name][start:stop] for name in self.columns}
        return RowBatch(self.columns, data, max(0, min(stop, self.length) - start))

    # -- rebatching ----------------------------------------------------------

    def split(self, batch_size: int) -> Iterable["RowBatch"]:
        """Yield the rows re-chunked to at most ``batch_size`` each."""
        if self.length <= batch_size:
            if self.length:
                yield self
            return
        for start in range(0, self.length, batch_size):
            yield self.slice(start, start + batch_size)

    def __repr__(self) -> str:
        return f"RowBatch(rows={self.length}, columns={list(self.columns)})"
