"""The runtime: an iterator-model interpreter for physical plans.

Rows flow between operators as ``{qualified_name: value}`` dicts.  All
page I/O is charged to the database's shared counters, so an
:class:`~repro.executor.runtime.ExecutionResult` reports exactly the pages
a plan touched — the number every benchmark compares across plans.
"""

from repro.executor.runtime import ExecutionResult, Executor, run_sql

__all__ = ["ExecutionResult", "Executor", "run_sql"]
