"""The runtime: batched and row-at-a-time interpreters for physical plans.

By default rows flow between operators as column-major
:class:`~repro.executor.batch.RowBatch` objects (the vectorized pipeline
in :mod:`repro.executor.vectorized`); ``batch_size=0`` selects the
original row-at-a-time iterator model where operators exchange
``{qualified_name: value}`` dicts.  All page I/O is charged to the
database's shared counters, so an
:class:`~repro.executor.runtime.ExecutionResult` reports exactly the pages
a plan touched — the number every benchmark compares across plans.
"""

from repro.executor.batch import DEFAULT_BATCH_SIZE, RowBatch
from repro.executor.runtime import ExecutionResult, Executor, run_sql
from repro.executor.vectorized import BatchedInterpreter

__all__ = [
    "BatchedInterpreter",
    "DEFAULT_BATCH_SIZE",
    "ExecutionResult",
    "Executor",
    "RowBatch",
    "run_sql",
]
