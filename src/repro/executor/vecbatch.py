"""Columnar vectors: numpy value arrays paired with explicit null masks.

A :class:`Vec` is one column of a batch in true columnar form: a numpy
array of values plus an optional boolean ``mask`` marking SQL NULL
positions (``True`` = NULL).  A :class:`ColumnarBatch` lazily promotes
the plain Python column lists of the list-based pipeline into Vecs, one
column at a time, so vectorized kernels only ever pay conversion for the
columns an expression actually touches (late materialization).

Dtype promotion rules (exact, decided from ``set(map(type, column))``):

* all ``int`` (``bool`` excluded — it is not a SQL number) → ``int64``;
* all ``float`` → ``float64``;
* either of the above plus ``None`` → same dtype with the NULL slots
  filled by ``0`` and marked in the mask;
* an all-``None`` column → ``int64`` zeros, fully masked;
* anything else — strings, bools, mixed ``int``/``float``, exotic
  objects, ints beyond ``int64`` — → ``object`` dtype with ``None`` kept
  in place (the *object fallback*).  Kernels that cannot handle object
  dtype raise :class:`~repro.expr.vector.VectorFallback` and the caller
  re-evaluates through the compiled list-batch closure, which reproduces
  the row-at-a-time semantics (including which row raises which error)
  exactly.

Mixed ``int``/``float`` deliberately does *not* promote to ``float64``:
``2**53 + 1 == float(2**53)`` under numpy's lossy int→float cast, while
Python compares int-to-float exactly — the object fallback keeps those
columns bit-faithful.  ``NaN`` is a float *value*, never NULL: it stays
unmasked, so ``x IS NULL`` is False and ``x = x`` is False for a NaN,
matching the interpreter.

Vec value arrays are frozen (``writeable=False``): downstream operators
alias columns across batches, and an in-place numpy mutation would
corrupt every aliased reader.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.executor.batch import RowBatch

#: int64-vs-float64 interactions are exact only below 2**53; kernels
#: consult this bound before mixing the two dtypes.
FLOAT_EXACT_INT = 2**53

_NONE_TYPE = type(None)


class Vec:
    """One column: a numpy values array + optional null mask (True = NULL).

    For numeric dtypes the masked slots hold a ``0`` filler; for object
    dtype they hold ``None`` itself (so ``tolist`` round-trips for free).
    """

    __slots__ = ("values", "mask")

    def __init__(
        self, values: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> None:
        self.values = values
        self.mask = mask

    def __len__(self) -> int:
        return len(self.values)

    @property
    def is_numeric(self) -> bool:
        return self.values.dtype.kind in ("i", "f")

    def to_list(self) -> List[Any]:
        """Python values with ``None`` restored at masked positions."""
        out = self.values.tolist()
        if self.mask is not None and self.values.dtype != object:
            for i in np.flatnonzero(self.mask).tolist():
                out[i] = None
        return out

    def __repr__(self) -> str:
        nulls = 0 if self.mask is None else int(self.mask.sum())
        return f"Vec(n={len(self.values)}, dtype={self.values.dtype}, nulls={nulls})"


def _freeze(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


def promote(values: Sequence[Any]) -> Vec:
    """Promote one Python column to a :class:`Vec` per the module rules."""
    kinds = set(map(type, values))
    has_null = _NONE_TYPE in kinds
    kinds.discard(_NONE_TYPE)
    if kinds == {int} or not kinds:
        filler = values
        if has_null or not kinds:
            filler = [0 if v is None else v for v in values]
        try:
            array = np.asarray(filler, dtype=np.int64)
        except OverflowError:
            return _object_vec(values, has_null)
        mask = None
        if has_null or not kinds:
            mask = np.fromiter(
                (v is None for v in values), dtype=bool, count=len(values)
            )
            if not mask.any():
                mask = None
        return Vec(_freeze(array), mask)
    if kinds == {float}:
        if has_null:
            filler = [0.0 if v is None else v for v in values]
            mask = np.fromiter(
                (v is None for v in values), dtype=bool, count=len(values)
            )
        else:
            filler = values
            mask = None
        return Vec(_freeze(np.asarray(filler, dtype=np.float64)), mask)
    return _object_vec(values, has_null)


def _object_vec(values: Sequence[Any], has_null: bool) -> Vec:
    array = np.empty(len(values), dtype=object)
    array[:] = values
    mask = None
    if has_null:
        mask = np.fromiter(
            (v is None for v in values), dtype=bool, count=len(values)
        )
    return Vec(_freeze(array), mask)


def try_int64(values: Sequence[Any]) -> Optional[np.ndarray]:
    """``values`` as an int64 array iff every element is a plain int
    (no NULLs, no bools); None otherwise.  Used by the sort fast path."""
    if set(map(type, values)) != {int}:
        return None
    try:
        return np.asarray(values, dtype=np.int64)
    except OverflowError:
        return None


class ColumnarBatch:
    """A batch whose columns promote to :class:`Vec` lazily, on first use.

    Wraps either raw storage row tuples (scan path) or an existing
    :class:`~repro.executor.batch.RowBatch` (filter path).  Row-backed
    batches transpose one column at a time, on demand, so a predicate
    over two of ten columns never even transposes the other eight —
    and surviving rows gather straight from the row tuples, so columns
    only the output touches are materialized solely for survivors.
    """

    __slots__ = ("columns", "length", "_raw", "_rows", "_vecs")

    def __init__(
        self,
        columns: Sequence[str],
        raw: Dict[str, Sequence[Any]],
        length: int,
        rows: Optional[Sequence[Tuple[Any, ...]]] = None,
    ) -> None:
        self.columns: Tuple[str, ...] = tuple(columns)
        self.length = length
        self._raw = raw
        self._rows = rows
        self._vecs: Dict[str, Vec] = {}

    def __len__(self) -> int:
        return self.length

    @classmethod
    def from_tuples(
        cls, columns: Sequence[str], rows: Sequence[Tuple[Any, ...]]
    ) -> "ColumnarBatch":
        """Wrap storage row tuples (the columnar scan's entry point);
        no transposition happens until a column is actually used."""
        return cls(columns, {}, len(rows), rows=rows)

    @classmethod
    def from_row_batch(cls, batch: RowBatch) -> "ColumnarBatch":
        """View an existing list-based batch columnar-ly (zero copy)."""
        return cls(batch.columns, batch.data, batch.length)

    def _column(self, name: str) -> Optional[Sequence[Any]]:
        """The raw Python column, transposing it out of the row tuples
        on first use (cached)."""
        raw = self._raw.get(name)
        if raw is None:
            if self._rows is None:
                return None
            try:
                position = self.columns.index(name)
            except ValueError:
                return None
            raw = [row[position] for row in self._rows]
            self._raw[name] = raw
        return raw

    def vec(self, name: str) -> Optional[Vec]:
        """The named column as a Vec (promoted once, cached); None when
        the batch has no such column."""
        vector = self._vecs.get(name)
        if vector is None:
            raw = self._column(name)
            if raw is None:
                return None
            vector = promote(raw)
            self._vecs[name] = vector
        return vector

    def to_row_batch(
        self, indices: Optional[np.ndarray] = None
    ) -> RowBatch:
        """Materialize (a selection of) the batch as a list-based
        :class:`RowBatch` — the late-materialization step: only surviving
        rows are ever converted back to Python values, which flow through
        as the original objects (exact parity for free)."""
        if indices is None:
            if self._rows is not None:
                return RowBatch.from_tuples(self.columns, self._rows)
            data = {
                name: raw if isinstance(raw, list) else list(raw)
                for name, raw in (
                    (name, self._raw[name]) for name in self.columns
                )
            }
            return RowBatch(self.columns, data, self.length)
        positions = indices.tolist()
        if self._rows is not None:
            rows = self._rows
            return RowBatch.from_tuples(
                self.columns, [rows[p] for p in positions]
            )
        data = {}
        for name in self.columns:
            raw = self._raw[name]
            data[name] = [raw[i] for i in positions]
        return RowBatch(self.columns, data, len(positions))
