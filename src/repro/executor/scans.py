"""Scan operators: sequential and index scans (row and batched forms).

Both forms read the same rows through the same counters, so page-read and
row-read accounting is identical; the batched variants simply transpose
each run of fetched rows into a column-major
:class:`~repro.executor.batch.RowBatch` and evaluate the pushed-down
predicate once per batch instead of once per row.

Under feedback collection (``count_input=True``) scans additionally count
the rows they *examined* before the pushed-down filter — for an index
scan, that is the number of rows the range fetched, the cost model's
"matching" quantity.  The count is attached as
``node.actual_rows_scanned``.  When collection is off, no counting
wrapper is even constructed: the default path does zero extra per-row
work.
"""

from __future__ import annotations

import itertools
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.engine.database import Database
from repro.executor.batch import RowBatch
from repro.executor.vecbatch import ColumnarBatch
from repro.expr.eval import evaluate, evaluate_batch
from repro.expr.vector import VectorFallback, compile_vector, filter_indices
from repro.optimizer.physical import IndexScan, SeqScan
from repro.sql import ast

RowDict = Dict[str, Any]


class ScanQuota:
    """A shared upper bound on rows still needed from upstream.

    Created by ``LIMIT`` and threaded down through the streaming,
    at-most-one-output-per-input operators (filter/project/extend/
    distinct/union) to the scans, which then never fetch more than
    ``remaining`` rows per chunk.  Because every operator on the way up
    emits at most one row per fetched row, a scan that fetches
    ``min(batch_size, remaining)`` can never overshoot the row-at-a-time
    pipeline's stopping point — page-read and row-read accounting under
    LIMIT is therefore bit-identical to the oracle.  Blocking operators
    (sorts, joins, grouping) do not forward the quota: they materialize
    their input fully in both pipelines, so there is nothing to clamp.
    """

    __slots__ = ("remaining",)

    def __init__(self, remaining: int) -> None:
        self.remaining = remaining


def qualified_row(
    binding: str, column_names: Tuple[str, ...], row: Tuple[Any, ...]
) -> RowDict:
    """Materialize a storage row as a binding-qualified row dict."""
    return {
        f"{binding}.{name}": value for name, value in zip(column_names, row)
    }


#: Rows between guard boundary checks inside a scan.  The scan tick is
#: what catches a filter-everything scan (no rows ever reach the top of
#: the plan, so the executor's result-row accounting never fires).
GUARD_STRIDE = 64


def _active_snapshot(database: Database):
    """This thread's MVCC snapshot, or None on the fast path.

    Two cheap checks — an attribute and a threadlocal — decide whether a
    scan must reconstruct row versions.  With no sessions open (or one
    session and no transactions) both short-circuit, so the hot scan
    loop below runs exactly the pre-concurrency code.
    """
    concurrency = database.concurrency
    if concurrency is None:
        return None
    return concurrency.current_snapshot()


def _seq_source(database: Database, table: Any) -> Iterator[Tuple[Any, ...]]:
    """Row-tuple source for a sequential scan, snapshot-aware."""
    snapshot = _active_snapshot(database)
    if snapshot is None:
        return table.scan_rows()
    return (
        row
        for _rid, row in database.concurrency.visible_scan(table, snapshot)
    )


def _guard_ticks(
    rows: Iterator[Tuple[Any, ...]], guard: Any, stride: int = GUARD_STRIDE
) -> Iterator[Tuple[Any, ...]]:
    """Run a guard boundary every ``stride`` rows pulled from storage."""
    pending = 0
    for row in rows:
        pending += 1
        if pending >= stride:
            guard.tick(pending)
            pending = 0
        yield row
    if pending:
        guard.tick(pending)


def _count_scanned(
    rows: Iterator[Tuple[Any, ...]], node: "SeqScan | IndexScan"
) -> Iterator[Tuple[Any, ...]]:
    """Count raw rows flowing out of storage into the scan's filter.

    The count lands on the node even if the consumer stops early (LIMIT):
    harvesting guards against such partial counts by only consulting
    ``actual_rows_scanned`` when ``actual_rows`` was also recorded.
    """
    scanned = 0
    try:
        for row in rows:
            scanned += 1
            yield row
    finally:
        node.actual_rows_scanned = scanned


def run_seq_scan(
    database: Database,
    node: SeqScan,
    count_input: bool = False,
    guard: Any = None,
) -> Iterator[RowDict]:
    table = database.table(node.table_name)
    names = tuple(table.schema.column_names())
    source = _seq_source(database, table)
    if count_input:
        source = _count_scanned(source, node)
    if guard is not None:
        source = _guard_ticks(source, guard)
    predicate = node.predicate
    if predicate is None:
        for row in source:
            yield qualified_row(node.binding, names, row)
    elif node.compiled_predicate is not None:
        row_fn = node.compiled_predicate[0]
        for row in source:
            out = qualified_row(node.binding, names, row)
            if row_fn(out) is True:
                yield out
    else:
        for row in source:
            out = qualified_row(node.binding, names, row)
            if evaluate(predicate, out) is True:
                yield out


def _index_rows(
    database: Database, node: IndexScan
) -> Iterator[Tuple[Any, ...]]:
    """Range scan the index and fetch each RID's storage row.

    Row fetches go through a one-page buffer: consecutive RIDs on the same
    heap page cost a single page read.  Over a clustered index this makes a
    range scan touch each data page once (the behaviour the cost model
    prices via the index's cluster ratio); over an unclustered one it
    degrades to a read per row, as on a real system.
    """
    table = database.table(node.table_name)
    index = database.catalog.index(node.index_name)
    snapshot = _active_snapshot(database)
    if snapshot is not None:
        yield from database.concurrency.visible_index_rows(
            table,
            index,
            _resolve_key(node.low),
            _resolve_key(node.high),
            node.low_inclusive,
            node.high_inclusive,
            snapshot,
        )
        return
    counters = table.pages.counters
    buffered_page_id = None
    for _key, row_id in index.range_scan(
        low=_resolve_key(node.low),
        high=_resolve_key(node.high),
        low_inclusive=node.low_inclusive,
        high_inclusive=node.high_inclusive,
    ):
        if row_id.page_id != buffered_page_id:
            counters.page_reads += 1
            buffered_page_id = row_id.page_id
        row = table.pages.pages[row_id.page_id].slots[row_id.slot_no]
        if row is None:
            continue
        counters.rows_read += 1
        yield row


def run_index_scan(
    database: Database,
    node: IndexScan,
    count_input: bool = False,
    guard: Any = None,
) -> Iterator[RowDict]:
    """Range scan the index, fetch each RID, apply the residual filter."""
    table = database.table(node.table_name)
    names = tuple(table.schema.column_names())
    source = _index_rows(database, node)
    if count_input:
        source = _count_scanned(source, node)
    if guard is not None:
        source = _guard_ticks(source, guard)
    predicate = node.predicate
    compiled = node.compiled_predicate
    row_fn = compiled[0] if compiled is not None else None
    for row in source:
        out = qualified_row(node.binding, names, row)
        if predicate is not None:
            if row_fn is not None:
                if row_fn(out) is not True:
                    continue
            elif evaluate(predicate, out) is not True:
                continue
        yield out


def _resolve_key(key):
    """Resolve runtime parameters in an index key at scan start.

    A :class:`~repro.sql.ast.RuntimeParameter` reads its soft constraint's
    *current* value (Section 4.2), so a plan cached before a min/max
    widening still scans the correct, up-to-date range.
    """
    if key is None:
        return None
    return tuple(
        part.current_value() if isinstance(part, ast.RuntimeParameter) else part
        for part in key
    )


# -- batched variants ----------------------------------------------------------


def _emit_batch(
    names: Tuple[str, ...],
    rows: List[Tuple[Any, ...]],
    node: "SeqScan | IndexScan",
) -> Optional[RowBatch]:
    """Transpose fetched row tuples and apply the pushed-down filter."""
    batch = RowBatch.from_tuples(names, rows)
    if node.predicate is not None:
        compiled = node.compiled_predicate
        if compiled is not None:
            batch = batch.filter_true(compiled[1](batch))
        else:
            batch = batch.filter_true(evaluate_batch(node.predicate, batch))
    return batch if len(batch) else None


def run_seq_scan_batched(
    database: Database,
    node: SeqScan,
    batch_size: int,
    count_input: bool = False,
    guard: Any = None,
    quota: Optional[ScanQuota] = None,
) -> Iterator[RowBatch]:
    table = database.table(node.table_name)
    names = tuple(
        f"{node.binding}.{name}" for name in table.schema.column_names()
    )
    source = _seq_source(database, table)
    if count_input:
        source = _count_scanned(source, node)
    while quota is None or quota.remaining > 0:
        fetch = batch_size if quota is None else min(batch_size, quota.remaining)
        buffer = list(itertools.islice(source, fetch))
        if not buffer:
            return
        if guard is not None:
            guard.tick(len(buffer))
        batch = _emit_batch(names, buffer, node)
        if batch is not None:
            yield batch


def run_index_scan_batched(
    database: Database,
    node: IndexScan,
    batch_size: int,
    count_input: bool = False,
    guard: Any = None,
    quota: Optional[ScanQuota] = None,
) -> Iterator[RowBatch]:
    """Batched twin of :func:`run_index_scan`.

    RID fetches keep the same one-page buffer, in the same order, so the
    page-read totals match the row-at-a-time scan exactly.
    """
    table = database.table(node.table_name)
    names = tuple(
        f"{node.binding}.{name}" for name in table.schema.column_names()
    )
    source = _index_rows(database, node)
    if count_input:
        source = _count_scanned(source, node)
    if quota is not None:
        while quota.remaining > 0:
            buffer = list(
                itertools.islice(source, min(batch_size, quota.remaining))
            )
            if not buffer:
                return
            if guard is not None:
                guard.tick(len(buffer))
            batch = _emit_batch(names, buffer, node)
            if batch is not None:
                yield batch
        return
    buffer: List[Tuple[Any, ...]] = []
    for row in source:
        buffer.append(row)
        if len(buffer) >= batch_size:
            if guard is not None:
                guard.tick(len(buffer))
            batch = _emit_batch(names, buffer, node)
            buffer = []
            if batch is not None:
                yield batch
    if buffer:
        if guard is not None:
            guard.tick(len(buffer))
        batch = _emit_batch(names, buffer, node)
        if batch is not None:
            yield batch


# -- columnar variants ---------------------------------------------------------


def _emit_columnar(
    names: Tuple[str, ...],
    rows: List[Tuple[Any, ...]],
    node: "SeqScan | IndexScan",
    kernel: Any,
) -> Optional[RowBatch]:
    """Transpose one morsel into numpy vectors, run the pushed-down
    predicate as a vector kernel, and materialize only the survivors
    (late materialization).  On :class:`VectorFallback` the morsel is
    re-evaluated through :func:`_emit_batch`, which reproduces the
    row-at-a-time semantics (and errors) exactly."""
    if not rows:
        return None
    if kernel is None:
        return RowBatch.from_tuples(names, rows)
    columnar = ColumnarBatch.from_tuples(names, rows)
    try:
        indices = filter_indices(kernel, columnar)
    except VectorFallback:
        return _emit_batch(names, rows, node)
    if indices is None:
        return columnar.to_row_batch()
    if not len(indices):
        return None
    return columnar.to_row_batch(indices)


#: One lazily-built worker pool per ``workers`` setting, shared by every
#: morsel-parallel scan in the process (pool startup would otherwise
#: dominate small scans).  Workers only ever run :func:`_emit_columnar`
#: on already-fetched row tuples: all storage I/O, counter updates and
#: guard interaction stay on the caller's thread.
_POOLS: Dict[int, ThreadPoolExecutor] = {}


def _worker_pool(workers: int) -> ThreadPoolExecutor:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-morsel"
        )
        _POOLS[workers] = pool
    return pool


def run_seq_scan_columnar(
    database: Database,
    node: SeqScan,
    batch_size: int,
    count_input: bool = False,
    guard: Any = None,
    quota: Optional[ScanQuota] = None,
    workers: int = 1,
) -> Iterator[RowBatch]:
    """Columnar twin of :func:`run_seq_scan_batched`.

    Rows are read page-at-a-time via
    :meth:`~repro.engine.table.HeapTable.scan_row_runs` (identical I/O
    accounting), sliced into fixed ``batch_size`` morsels, and each
    morsel is vector-filtered.  With ``workers > 1`` morsels are
    dispatched to a thread pool — numpy kernels release the GIL — and
    merged back **in submission order**, so results, row order and every
    counter are bit-identical to the single-worker run.

    Determinism contract: morsel parallelism only engages on
    *observation-free* scans.  A LIMIT quota clamps fetch sizes (no
    read-ahead allowed) and an armed guard observes page-read deltas at
    every tick, so both run the sequential columnar path; see
    :func:`repro.resilience.guards.permits_readahead`.
    """
    if quota is not None:
        yield from run_seq_scan_batched(
            database, node, batch_size, count_input, guard, quota
        )
        return
    table = database.table(node.table_name)
    names = tuple(
        f"{node.binding}.{name}" for name in table.schema.column_names()
    )
    kernel = (
        compile_vector(node.predicate) if node.predicate is not None else None
    )
    snapshot = _active_snapshot(database)
    if workers > 1 and guard is None and snapshot is None:
        yield from _morsel_scan(
            table, names, node, kernel, batch_size, workers, count_input
        )
        return
    if snapshot is None:
        runs = table.scan_row_runs()
    else:
        # Snapshot scans reconstruct row versions page-at-a-time under
        # the engine latch; morsel parallelism is not engaged (the
        # version overlay is shared mutable state).
        runs = database.concurrency.visible_row_runs(table, snapshot)
    scanned = 0
    buffer: List[Tuple[Any, ...]] = []
    try:
        for run in runs:
            buffer.extend(run)
            while len(buffer) >= batch_size:
                chunk = buffer[:batch_size]
                del buffer[:batch_size]
                scanned += len(chunk)
                if guard is not None:
                    guard.tick(len(chunk))
                batch = _emit_columnar(names, chunk, node, kernel)
                if batch is not None:
                    yield batch
        if buffer:
            scanned += len(buffer)
            if guard is not None:
                guard.tick(len(buffer))
            batch = _emit_columnar(names, buffer, node, kernel)
            if batch is not None:
                yield batch
    finally:
        if count_input:
            node.actual_rows_scanned = scanned


def _morsel_scan(
    table: Any,
    names: Tuple[str, ...],
    node: SeqScan,
    kernel: Any,
    batch_size: int,
    workers: int,
    count_input: bool,
) -> Iterator[RowBatch]:
    """Fan fixed-size morsels out to the worker pool, merge in order.

    The caller's thread does every storage read (and so every counter
    update); at most ``workers`` morsels are in flight; results — and
    any evaluation error — surface strictly in morsel order, making the
    merge deterministic by construction.
    """
    pool = _worker_pool(workers)
    pending: "deque" = deque()
    scanned = 0
    buffer: List[Tuple[Any, ...]] = []
    try:
        for run in table.scan_row_runs():
            buffer.extend(run)
            while len(buffer) >= batch_size:
                chunk = buffer[:batch_size]
                del buffer[:batch_size]
                scanned += len(chunk)
                while len(pending) >= workers:
                    batch = pending.popleft().result()
                    if batch is not None:
                        yield batch
                pending.append(
                    pool.submit(_emit_columnar, names, chunk, node, kernel)
                )
        if buffer:
            scanned += len(buffer)
            pending.append(
                pool.submit(_emit_columnar, names, buffer, node, kernel)
            )
        while pending:
            batch = pending.popleft().result()
            if batch is not None:
                yield batch
    finally:
        for future in pending:
            future.cancel()
        if count_input:
            node.actual_rows_scanned = scanned


def run_index_scan_columnar(
    database: Database,
    node: IndexScan,
    batch_size: int,
    count_input: bool = False,
    guard: Any = None,
    quota: Optional[ScanQuota] = None,
) -> Iterator[RowBatch]:
    """Columnar twin of :func:`run_index_scan_batched`.

    Index scans keep the one-page RID fetch buffer (random access order
    is the point of the index), so they stay sequential — only the
    transpose/filter/materialize step is vectorized.
    """
    if quota is not None:
        yield from run_index_scan_batched(
            database, node, batch_size, count_input, guard, quota
        )
        return
    table = database.table(node.table_name)
    names = tuple(
        f"{node.binding}.{name}" for name in table.schema.column_names()
    )
    kernel = (
        compile_vector(node.predicate) if node.predicate is not None else None
    )
    source = _index_rows(database, node)
    if count_input:
        source = _count_scanned(source, node)
    buffer: List[Tuple[Any, ...]] = []
    for row in source:
        buffer.append(row)
        if len(buffer) >= batch_size:
            if guard is not None:
                guard.tick(len(buffer))
            batch = _emit_columnar(names, buffer, node, kernel)
            buffer = []
            if batch is not None:
                yield batch
    if buffer:
        if guard is not None:
            guard.tick(len(buffer))
        batch = _emit_columnar(names, buffer, node, kernel)
        if batch is not None:
            yield batch
