"""Scan operators: sequential and index scans (row and batched forms).

Both forms read the same rows through the same counters, so page-read and
row-read accounting is identical; the batched variants simply transpose
each run of fetched rows into a column-major
:class:`~repro.executor.batch.RowBatch` and evaluate the pushed-down
predicate once per batch instead of once per row.

Under feedback collection (``count_input=True``) scans additionally count
the rows they *examined* before the pushed-down filter — for an index
scan, that is the number of rows the range fetched, the cost model's
"matching" quantity.  The count is attached as
``node.actual_rows_scanned``.  When collection is off, no counting
wrapper is even constructed: the default path does zero extra per-row
work.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.engine.database import Database
from repro.executor.batch import RowBatch
from repro.expr.eval import evaluate, evaluate_batch
from repro.optimizer.physical import IndexScan, SeqScan
from repro.sql import ast

RowDict = Dict[str, Any]


def qualified_row(
    binding: str, column_names: Tuple[str, ...], row: Tuple[Any, ...]
) -> RowDict:
    """Materialize a storage row as a binding-qualified row dict."""
    return {
        f"{binding}.{name}": value for name, value in zip(column_names, row)
    }


#: Rows between guard boundary checks inside a scan.  The scan tick is
#: what catches a filter-everything scan (no rows ever reach the top of
#: the plan, so the executor's result-row accounting never fires).
GUARD_STRIDE = 64


def _guard_ticks(
    rows: Iterator[Tuple[Any, ...]], guard: Any, stride: int = GUARD_STRIDE
) -> Iterator[Tuple[Any, ...]]:
    """Run a guard boundary every ``stride`` rows pulled from storage."""
    pending = 0
    for row in rows:
        pending += 1
        if pending >= stride:
            guard.tick(pending)
            pending = 0
        yield row
    if pending:
        guard.tick(pending)


def _count_scanned(
    rows: Iterator[Tuple[Any, ...]], node: "SeqScan | IndexScan"
) -> Iterator[Tuple[Any, ...]]:
    """Count raw rows flowing out of storage into the scan's filter.

    The count lands on the node even if the consumer stops early (LIMIT):
    harvesting guards against such partial counts by only consulting
    ``actual_rows_scanned`` when ``actual_rows`` was also recorded.
    """
    scanned = 0
    try:
        for row in rows:
            scanned += 1
            yield row
    finally:
        node.actual_rows_scanned = scanned


def run_seq_scan(
    database: Database,
    node: SeqScan,
    count_input: bool = False,
    guard: Any = None,
) -> Iterator[RowDict]:
    table = database.table(node.table_name)
    names = tuple(table.schema.column_names())
    source = table.scan_rows()
    if count_input:
        source = _count_scanned(source, node)
    if guard is not None:
        source = _guard_ticks(source, guard)
    predicate = node.predicate
    if predicate is None:
        for row in source:
            yield qualified_row(node.binding, names, row)
    elif node.compiled_predicate is not None:
        row_fn = node.compiled_predicate[0]
        for row in source:
            out = qualified_row(node.binding, names, row)
            if row_fn(out) is True:
                yield out
    else:
        for row in source:
            out = qualified_row(node.binding, names, row)
            if evaluate(predicate, out) is True:
                yield out


def _index_rows(
    database: Database, node: IndexScan
) -> Iterator[Tuple[Any, ...]]:
    """Range scan the index and fetch each RID's storage row.

    Row fetches go through a one-page buffer: consecutive RIDs on the same
    heap page cost a single page read.  Over a clustered index this makes a
    range scan touch each data page once (the behaviour the cost model
    prices via the index's cluster ratio); over an unclustered one it
    degrades to a read per row, as on a real system.
    """
    table = database.table(node.table_name)
    index = database.catalog.index(node.index_name)
    counters = table.pages.counters
    buffered_page_id = None
    for _key, row_id in index.range_scan(
        low=_resolve_key(node.low),
        high=_resolve_key(node.high),
        low_inclusive=node.low_inclusive,
        high_inclusive=node.high_inclusive,
    ):
        if row_id.page_id != buffered_page_id:
            counters.page_reads += 1
            buffered_page_id = row_id.page_id
        row = table.pages.pages[row_id.page_id].slots[row_id.slot_no]
        if row is None:
            continue
        counters.rows_read += 1
        yield row


def run_index_scan(
    database: Database,
    node: IndexScan,
    count_input: bool = False,
    guard: Any = None,
) -> Iterator[RowDict]:
    """Range scan the index, fetch each RID, apply the residual filter."""
    table = database.table(node.table_name)
    names = tuple(table.schema.column_names())
    source = _index_rows(database, node)
    if count_input:
        source = _count_scanned(source, node)
    if guard is not None:
        source = _guard_ticks(source, guard)
    predicate = node.predicate
    compiled = node.compiled_predicate
    row_fn = compiled[0] if compiled is not None else None
    for row in source:
        out = qualified_row(node.binding, names, row)
        if predicate is not None:
            if row_fn is not None:
                if row_fn(out) is not True:
                    continue
            elif evaluate(predicate, out) is not True:
                continue
        yield out


def _resolve_key(key):
    """Resolve runtime parameters in an index key at scan start.

    A :class:`~repro.sql.ast.RuntimeParameter` reads its soft constraint's
    *current* value (Section 4.2), so a plan cached before a min/max
    widening still scans the correct, up-to-date range.
    """
    if key is None:
        return None
    return tuple(
        part.current_value() if isinstance(part, ast.RuntimeParameter) else part
        for part in key
    )


# -- batched variants ----------------------------------------------------------


def _emit_batch(
    names: Tuple[str, ...],
    rows: List[Tuple[Any, ...]],
    node: "SeqScan | IndexScan",
) -> Optional[RowBatch]:
    """Transpose fetched row tuples and apply the pushed-down filter."""
    batch = RowBatch.from_tuples(names, rows)
    if node.predicate is not None:
        compiled = node.compiled_predicate
        if compiled is not None:
            batch = batch.filter_true(compiled[1](batch))
        else:
            batch = batch.filter_true(evaluate_batch(node.predicate, batch))
    return batch if len(batch) else None


def run_seq_scan_batched(
    database: Database,
    node: SeqScan,
    batch_size: int,
    count_input: bool = False,
    guard: Any = None,
) -> Iterator[RowBatch]:
    table = database.table(node.table_name)
    names = tuple(
        f"{node.binding}.{name}" for name in table.schema.column_names()
    )
    source = table.scan_rows()
    if count_input:
        source = _count_scanned(source, node)
    while True:
        buffer = list(itertools.islice(source, batch_size))
        if not buffer:
            return
        if guard is not None:
            guard.tick(len(buffer))
        batch = _emit_batch(names, buffer, node)
        if batch is not None:
            yield batch


def run_index_scan_batched(
    database: Database,
    node: IndexScan,
    batch_size: int,
    count_input: bool = False,
    guard: Any = None,
) -> Iterator[RowBatch]:
    """Batched twin of :func:`run_index_scan`.

    RID fetches keep the same one-page buffer, in the same order, so the
    page-read totals match the row-at-a-time scan exactly.
    """
    table = database.table(node.table_name)
    names = tuple(
        f"{node.binding}.{name}" for name in table.schema.column_names()
    )
    source = _index_rows(database, node)
    if count_input:
        source = _count_scanned(source, node)
    buffer: List[Tuple[Any, ...]] = []
    for row in source:
        buffer.append(row)
        if len(buffer) >= batch_size:
            if guard is not None:
                guard.tick(len(buffer))
            batch = _emit_batch(names, buffer, node)
            buffer = []
            if batch is not None:
                yield batch
    if buffer:
        if guard is not None:
            guard.tick(len(buffer))
        batch = _emit_batch(names, buffer, node)
        if batch is not None:
            yield batch
