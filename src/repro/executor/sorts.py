"""Sorting with SQL NULL ordering (NULLs sort last ascending)."""

from __future__ import annotations

import functools
from typing import Any, Dict, Iterable, Iterator, List

from repro.executor.batch import RowBatch
from repro.expr.eval import evaluate, evaluate_batch
from repro.optimizer.physical import Sort
from repro.sql import ast

RowDict = Dict[str, Any]


@functools.total_ordering
class _SortKey:
    """Total-order wrapper: None sorts after every value (ASC)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.value == other.value

    def __lt__(self, other: "_SortKey") -> bool:
        if self.value is None:
            return False
        if other.value is None:
            return True
        return self.value < other.value


def run_sort(node: Sort, rows: Iterator[RowDict]) -> Iterator[RowDict]:
    """Materialize and sort; stable multi-key sort, last key first."""
    materialized: List[RowDict] = list(rows)
    for expression, ascending in reversed(node.order):
        materialized.sort(
            key=lambda row: _SortKey(evaluate(expression, row)),
            reverse=not ascending,
        )
    return iter(materialized)


def run_sort_batched(
    node: Sort, batches: Iterable[RowBatch], batch_size: int
) -> Iterator[RowBatch]:
    """Batched twin of :func:`run_sort`: sort an index permutation.

    Key columns are evaluated once per sort pass over the concatenated
    input; the stable multi-pass sort permutes row indices, and the
    result is gathered and re-chunked to ``batch_size``.
    """
    materialized = RowBatch.concat(list(batches))
    if materialized is None or len(materialized) == 0:
        return
    indices = list(range(len(materialized)))
    for expression, ascending in reversed(node.order):
        keys = [_SortKey(value) for value in evaluate_batch(expression, materialized)]
        indices.sort(key=keys.__getitem__, reverse=not ascending)
    yield from materialized.take(indices).split(batch_size)
