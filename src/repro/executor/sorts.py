"""Sorting with SQL NULL ordering (NULLs sort last ascending).

Keys are decorated as plain ``(is_null, value)`` tuples — computed once
per row per sort pass — so the stable multi-key sort compares at C level
instead of bouncing through a Python-level total-order wrapper object on
every comparison.  The ``is_null`` flag puts NULLs after every value
ascending (before, descending, matching the previous wrapper's order);
the ``0`` stand-in for NULL values keeps tied NULL keys comparable.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List

import numpy as np

from repro.executor.batch import RowBatch
from repro.executor.vecbatch import try_int64
from repro.expr.eval import evaluate, evaluate_batch
from repro.optimizer.physical import Sort

RowDict = Dict[str, Any]

_NULL_KEY = (True, 0)


def _decorate(value: Any):
    return _NULL_KEY if value is None else (False, value)


def run_sort(
    node: Sort,
    rows: Iterator[RowDict],
    count_input: bool = False,
    guard: Any = None,
) -> Iterator[RowDict]:
    """Materialize and sort; stable multi-key sort, last key first."""
    materialized: List[RowDict] = list(rows)
    if guard is not None:
        # A sort pins its whole input in memory; charge the row budget at
        # the materialization point, before any sorting work.
        guard.note_rows(len(materialized))
    if count_input:
        # The sort always materializes its whole input, so this count —
        # unlike ``actual_rows`` — survives a LIMIT above the sort.
        node.actual_input_rows = len(materialized)
    compiled = node.compiled_order
    if compiled is not None:
        for row_fn, _batch_fn, ascending in reversed(compiled):
            materialized.sort(
                key=lambda row, _fn=row_fn: _decorate(_fn(row)),
                reverse=not ascending,
            )
    else:
        for expression, ascending in reversed(node.order):
            materialized.sort(
                key=lambda row, _e=expression: _decorate(evaluate(_e, row)),
                reverse=not ascending,
            )
    return iter(materialized)


def run_sort_batched(
    node: Sort,
    batches: Iterable[RowBatch],
    batch_size: int,
    count_input: bool = False,
    guard: Any = None,
) -> Iterator[RowBatch]:
    """Batched twin of :func:`run_sort`: sort an index permutation.

    Key columns are evaluated once per sort pass over the concatenated
    input and decorated in one comprehension; the stable multi-pass sort
    permutes row indices, and the result is gathered and re-chunked to
    ``batch_size``.
    """
    materialized = RowBatch.concat(list(batches))
    if guard is not None:
        guard.note_rows(0 if materialized is None else len(materialized))
    if count_input:
        node.actual_input_rows = (
            0 if materialized is None else len(materialized)
        )
    if materialized is None or len(materialized) == 0:
        return
    indices = list(range(len(materialized)))
    compiled = node.compiled_order
    if compiled is not None:
        passes = [
            (batch_fn(materialized), ascending)
            for _row_fn, batch_fn, ascending in reversed(compiled)
        ]
    else:
        passes = [
            (evaluate_batch(expression, materialized), ascending)
            for expression, ascending in reversed(node.order)
        ]
    if len(passes) == 1:
        values, ascending = passes[0]
        array = try_int64(values)
        if array is not None and (
            ascending or len(array) == 0 or int(array.min()) != -(2**63)
        ):
            # Single pure-int64 key, no NULLs: a stable argsort gives
            # exactly the permutation the decorated sort would (negating
            # the key instead of reversing preserves stability for the
            # descending case, matching ``list.sort(reverse=True)`` on
            # a fresh identity permutation).
            order = np.argsort(
                array if ascending else -array, kind="stable"
            )
            yield from materialized.take(order.tolist()).split(batch_size)
            return
    for values, ascending in passes:
        keys = [
            _NULL_KEY if value is None else (False, value) for value in values
        ]
        indices.sort(key=keys.__getitem__, reverse=not ascending)
    yield from materialized.take(indices).split(batch_size)
