"""Sorting with SQL NULL ordering (NULLs sort last ascending)."""

from __future__ import annotations

import functools
from typing import Any, Dict, Iterator, List

from repro.expr.eval import evaluate
from repro.optimizer.physical import Sort
from repro.sql import ast

RowDict = Dict[str, Any]


@functools.total_ordering
class _SortKey:
    """Total-order wrapper: None sorts after every value (ASC)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.value == other.value

    def __lt__(self, other: "_SortKey") -> bool:
        if self.value is None:
            return False
        if other.value is None:
            return True
        return self.value < other.value


def run_sort(node: Sort, rows: Iterator[RowDict]) -> Iterator[RowDict]:
    """Materialize and sort; stable multi-key sort, last key first."""
    materialized: List[RowDict] = list(rows)
    for expression, ascending in reversed(node.order):
        materialized.sort(
            key=lambda row: _SortKey(evaluate(expression, row)),
            reverse=not ascending,
        )
    return iter(materialized)
