"""Aggregate computation for the GROUP BY operator."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from repro.errors import ExecutionError
from repro.executor.vecbatch import promote
from repro.expr.eval import evaluate
from repro.optimizer.logical import Aggregate

#: int64 folds stay exact as long as ``n * max|v|`` is well inside the
#: dtype; anything wider falls back to Python's arbitrary-precision sum.
_INT_FOLD_SAFE = 2**62

RowDict = Dict[str, Any]


class AggregateState:
    """Accumulates one aggregate over one group (SQL NULL semantics).

    NULL inputs are ignored by every aggregate; COUNT(*) counts rows.  An
    empty group yields NULL for SUM/AVG/MIN/MAX and 0 for COUNT.
    """

    __slots__ = (
        "spec",
        "argument_fn",
        "count",
        "total",
        "minimum",
        "maximum",
        "seen",
    )

    def __init__(
        self,
        spec: Aggregate,
        argument_fn: Optional[Callable[[RowDict], Any]] = None,
    ) -> None:
        self.spec = spec
        # Plan-time-compiled argument closure; None means interpret (or
        # COUNT(*), which has no argument at all).
        self.argument_fn = argument_fn
        self.count = 0
        self.total: Optional[float] = None
        self.minimum: Any = None
        self.maximum: Any = None
        self.seen: Optional[Set[Any]] = set() if spec.distinct else None

    def update(self, row: RowDict) -> None:
        if self.spec.argument is None:  # COUNT(*)
            self.count += 1
            return
        if self.argument_fn is not None:
            value = self.argument_fn(row)
        else:
            value = evaluate(self.spec.argument, row)
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if self.spec.function in ("sum", "avg"):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ExecutionError(
                    f"{self.spec.function.upper()} over non-numeric "
                    f"value {value!r}"
                )
            self.total = value if self.total is None else self.total + value
        if self.spec.function == "min":
            if self.minimum is None or value < self.minimum:
                self.minimum = value
        if self.spec.function == "max":
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def update_count_star(self, additional: int) -> None:
        """Batched COUNT(*): credit a whole run of rows at once."""
        self.count += additional

    def update_values(self, values: Sequence[Any]) -> None:
        """Batched update: fold a gathered column slice into the state.

        Semantically identical to calling :meth:`update` once per value
        (NULLs skipped, DISTINCT de-duplicated in arrival order), but the
        numeric folds run through the C-level ``sum``/``min``/``max``
        builtins instead of a Python-level loop per row.
        """
        if self.seen is None:
            fresh = [value for value in values if value is not None]
        else:
            fresh = []
            seen = self.seen
            for value in values:
                if value is None or value in seen:
                    continue
                seen.add(value)
                fresh.append(value)
        if not fresh:
            return
        self.count += len(fresh)
        function = self.spec.function
        if function in ("sum", "avg"):
            for value in fresh:
                if not isinstance(value, (int, float)) or isinstance(
                    value, bool
                ):
                    raise ExecutionError(
                        f"{function.upper()} over non-numeric value {value!r}"
                    )
            subtotal = sum(fresh)
            self.total = (
                subtotal if self.total is None else self.total + subtotal
            )
        elif function == "min":
            low = min(fresh)
            if self.minimum is None or low < self.minimum:
                self.minimum = low
        elif function == "max":
            high = max(fresh)
            if self.maximum is None or high > self.maximum:
                self.maximum = high

    def update_vec(self, values: Sequence[Any]) -> None:
        """Columnar update: fold a column slice via numpy where exact.

        Only folds that are bit-identical to :meth:`update_values` take
        the numpy path: COUNT over any numeric dtype (count = rows minus
        NULLs) and SUM/AVG/MIN/MAX over pure-int64 columns (integer sums
        are associative, so order cannot matter).  Float sums keep the
        list path's left-to-right association, DISTINCT needs arrival
        order, and object-dtype columns keep the list path's exact error
        behaviour — all of those delegate to :meth:`update_values`.
        """
        if self.seen is not None:
            self.update_values(values)
            return
        vec = promote(values)
        kind = vec.values.dtype.kind
        if kind not in ("i", "f"):
            self.update_values(values)
            return
        mask = vec.mask
        fresh_count = len(vec) - (0 if mask is None else int(mask.sum()))
        if fresh_count == 0:
            return
        function = self.spec.function
        if function == "count":
            self.count += fresh_count
            return
        if kind != "i":
            # Float SUM/AVG must keep Python's sequential association
            # (numpy's pairwise summation rounds differently); float
            # MIN/MAX must keep Python's NaN-ordering quirks.
            self.update_values(values)
            return
        array = vec.values if mask is None else vec.values[~mask]
        if function in ("sum", "avg"):
            bound = max(abs(int(array.min())), abs(int(array.max())))
            if bound and fresh_count * bound >= _INT_FOLD_SAFE:
                self.update_values(values)
                return
            self.count += fresh_count
            subtotal = int(array.sum())
            self.total = (
                subtotal if self.total is None else self.total + subtotal
            )
            return
        self.count += fresh_count
        if function == "min":
            low = int(array.min())
            if self.minimum is None or low < self.minimum:
                self.minimum = low
        elif function == "max":
            high = int(array.max())
            if self.maximum is None or high > self.maximum:
                self.maximum = high

    def result(self) -> Any:
        function = self.spec.function
        if function == "count":
            return self.count
        if function == "sum":
            return self.total
        if function == "avg":
            if self.count == 0 or self.total is None:
                return None
            return self.total / self.count
        if function == "min":
            return self.minimum
        if function == "max":
            return self.maximum
        raise ExecutionError(f"unknown aggregate {function!r}")


def new_states(
    specs: List[Aggregate],
    compiled_args: Optional[List[Optional[tuple]]] = None,
) -> List[AggregateState]:
    """Fresh per-group states; ``compiled_args`` is the plan's parallel
    list of ``(row_fn, batch_fn)`` pairs (None entries for COUNT(*))."""
    if compiled_args is None:
        return [AggregateState(spec) for spec in specs]
    return [
        AggregateState(spec, pair[0] if pair is not None else None)
        for spec, pair in zip(specs, compiled_args)
    ]
