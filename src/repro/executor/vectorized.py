"""The batched (vectorized) plan interpreter.

Operators exchange :class:`~repro.executor.batch.RowBatch` objects instead
of single row dicts: predicates, projections and join keys are evaluated
once per batch via :func:`repro.expr.eval.evaluate_batch`, and the
per-row interpreter overhead (dict materialization, recursive expression
dispatch) is amortized over ``batch_size`` rows.

With ``columnar=True`` (the default) scans and filters go further: row
tuples are transposed into numpy vectors with explicit null masks
(:mod:`repro.executor.vecbatch`), predicates run as vector kernels
(:mod:`repro.expr.vector`), and only surviving rows are materialized
into Python lists — late materialization.  ``workers > 1`` additionally
fans sequential-scan morsels out to a thread pool with a deterministic
in-order merge (see :func:`repro.executor.scans.run_seq_scan_columnar`).

Semantics — result rows and their order, row counts, and page-I/O
accounting — match the row-at-a-time interpreter in
:mod:`repro.executor.runtime` exactly; the differential harness in
``tests/executor/test_batched_differential.py`` pins the two together.
That includes LIMIT: a :class:`~repro.executor.scans.ScanQuota` created
by the Limit operator clamps every scan fetch to the rows still needed,
so page-read accounting under LIMIT is bit-identical to the
row-at-a-time pipeline too.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.engine.database import Database
from repro.errors import ExecutionError
from repro.executor.aggregates import AggregateState, new_states
from repro.executor.batch import DEFAULT_BATCH_SIZE, RowBatch
from repro.executor.joins import (
    run_hash_join_batched,
    run_nested_loop_join_batched,
)
from repro.executor.scans import (
    ScanQuota,
    run_index_scan_batched,
    run_index_scan_columnar,
    run_seq_scan_batched,
    run_seq_scan_columnar,
)
from repro.executor.sorts import run_sort_batched
from repro.executor.vecbatch import ColumnarBatch
from repro.expr.eval import evaluate, evaluate_batch
from repro.expr.vector import VectorFallback, compile_vector, filter_indices
from repro.optimizer.physical import (
    Distinct,
    EmptyResult,
    Extend,
    Filter,
    GroupBy,
    HashJoin,
    IndexScan,
    Limit,
    NestedLoopJoin,
    PhysicalNode,
    Project,
    SeqScan,
    Sort,
    UnionAll,
)

RowDict = Dict[str, Any]

#: Sentinel: the vector kernel declined this batch (fell back).
_FALLBACK = object()


class BatchedInterpreter:
    """Interprets a physical plan batch-at-a-time.

    One instance serves one execution: it carries the ``batch_size``
    (and the columnar/worker switches) and, when instrumented, records
    per-node actual row *and batch* counts for EXPLAIN ANALYZE.
    """

    def __init__(
        self,
        database: Database,
        batch_size: int = DEFAULT_BATCH_SIZE,
        instrument: bool = False,
        collect: bool = False,
        guard: Any = None,
        columnar: bool = True,
        workers: int = 1,
    ) -> None:
        if batch_size < 1:
            raise ExecutionError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if workers < 1:
            raise ExecutionError(f"workers must be >= 1, got {workers}")
        self.database = database
        self.batch_size = batch_size
        # Feedback collection implies instrumentation and additionally
        # counts scan input rows and join pairs (see repro.feedback).
        self.collect = collect
        self.instrument = instrument or collect
        # An armed ActiveGuard (repro.resilience.guards) or None; threaded
        # to the operators that can burn unbounded work.
        self.guard = guard
        self.columnar = columnar
        self.workers = workers

    def rows(self, root: PhysicalNode) -> List[RowDict]:
        """Run the plan and materialize the result as row dicts."""
        out: List[RowDict] = []
        for batch in self.run(root):
            out.extend(batch.to_rows())
        return out

    # -- dispatch -------------------------------------------------------------

    def run(
        self, node: PhysicalNode, quota: Optional[ScanQuota] = None
    ) -> Iterator[RowBatch]:
        if not self.instrument:
            return self._run_raw(node, quota)
        return self._counted(node, quota)

    def _counted(
        self, node: PhysicalNode, quota: Optional[ScanQuota]
    ) -> Iterator[RowBatch]:
        rows = 0
        batches = 0
        for batch in self._run_raw(node, quota):
            rows += len(batch)
            batches += 1
            yield batch
        node.actual_rows = rows
        node.actual_batches = batches

    def _run_raw(
        self, node: PhysicalNode, quota: Optional[ScanQuota] = None
    ) -> Iterator[RowBatch]:
        # ``quota`` is a LIMIT clamp, forwarded only through streaming
        # at-most-one-output-per-input operators; blocking operators
        # (joins, sorts, grouping) materialize fully in both pipelines
        # and therefore drop it.
        if isinstance(node, EmptyResult):
            return iter(())
        if isinstance(node, SeqScan):
            if self.columnar:
                return run_seq_scan_columnar(
                    self.database,
                    node,
                    self.batch_size,
                    count_input=self.collect,
                    guard=self.guard,
                    quota=quota,
                    workers=self.workers,
                )
            return run_seq_scan_batched(
                self.database,
                node,
                self.batch_size,
                count_input=self.collect,
                guard=self.guard,
                quota=quota,
            )
        if isinstance(node, IndexScan):
            if self.columnar:
                return run_index_scan_columnar(
                    self.database,
                    node,
                    self.batch_size,
                    count_input=self.collect,
                    guard=self.guard,
                    quota=quota,
                )
            return run_index_scan_batched(
                self.database,
                node,
                self.batch_size,
                count_input=self.collect,
                guard=self.guard,
                quota=quota,
            )
        if isinstance(node, Filter):
            return self._run_filter(node, quota)
        if isinstance(node, NestedLoopJoin):
            return run_nested_loop_join_batched(
                node,
                self.run,
                self.batch_size,
                count_pairs=self.collect,
                guard=self.guard,
            )
        if isinstance(node, HashJoin):
            return run_hash_join_batched(
                node,
                self.run,
                self.batch_size,
                count_pairs=self.collect,
                guard=self.guard,
                columnar=self.columnar,
            )
        if isinstance(node, GroupBy):
            return self._run_group_by(node)
        if isinstance(node, Extend):
            return self._run_extend(node, quota)
        if isinstance(node, Sort):
            return run_sort_batched(
                node,
                self.run(node.child),
                self.batch_size,
                count_input=self.collect,
                guard=self.guard,
            )
        if isinstance(node, Project):
            return self._run_project(node, quota)
        if isinstance(node, Distinct):
            return self._run_distinct(node, quota)
        if isinstance(node, Limit):
            return self._run_limit(node, quota)
        if isinstance(node, UnionAll):
            return itertools.chain.from_iterable(
                self.run(child, quota) for child in node.inputs
            )
        raise ExecutionError(f"cannot execute {type(node).__name__}")

    # -- operators ----------------------------------------------------------------

    def _run_filter(
        self, node: Filter, quota: Optional[ScanQuota]
    ) -> Iterator[RowBatch]:
        kernel = (
            compile_vector(node.predicate)
            if self.columnar and node.predicate is not None
            else None
        )
        batch_fn = (
            node.compiled_predicate[1]
            if node.compiled_predicate is not None
            else None
        )
        for batch in self.run(node.child, quota):
            if kernel is not None:
                survivors = self._vector_filter(kernel, batch)
                if survivors is not _FALLBACK:
                    if survivors is not None and len(survivors):
                        yield survivors
                    continue
            if batch_fn is not None:
                filtered = batch.filter_true(batch_fn(batch))
            else:
                filtered = batch.filter_true(
                    evaluate_batch(node.predicate, batch)
                )
            if len(filtered):
                yield filtered

    @staticmethod
    def _vector_filter(kernel: Any, batch: RowBatch) -> Any:
        """Kernel-filter one batch; ``_FALLBACK`` when the kernel declines."""
        try:
            indices = filter_indices(
                kernel, ColumnarBatch.from_row_batch(batch)
            )
        except VectorFallback:
            return _FALLBACK
        if indices is None:
            return batch
        if not len(indices):
            return None
        return batch.take(indices.tolist())

    def _run_extend(
        self, node: Extend, quota: Optional[ScanQuota]
    ) -> Iterator[RowBatch]:
        compiled = node.compiled_outputs
        for batch in self.run(node.child, quota):
            columns = list(batch.columns)
            data = dict(batch.data)
            present = set(columns)
            for index, output in enumerate(node.outputs):
                # Evaluated against the child batch, as the row form
                # evaluates against the original row.
                if compiled is not None:
                    data[output.name] = compiled[index][1](batch)
                else:
                    data[output.name] = evaluate_batch(
                        output.expression, batch
                    )
                if output.name not in present:
                    columns.append(output.name)
                    present.add(output.name)
            yield RowBatch(columns, data, len(batch))

    def _run_project(
        self, node: Project, quota: Optional[ScanQuota]
    ) -> Iterator[RowBatch]:
        for batch in self.run(node.child, quota):
            data: Dict[str, List[Any]] = {}
            for name, source in zip(node.names, node.source_names):
                column = batch.data.get(source)
                data[name] = (
                    column if column is not None else [None] * len(batch)
                )
            yield RowBatch(node.names, data, len(batch))

    def _run_distinct(
        self, node: Distinct, quota: Optional[ScanQuota]
    ) -> Iterator[RowBatch]:
        seen: set = set()
        for batch in self.run(node.child, quota):
            # Same key as the row form's tuple(sorted(row.items())).
            names = sorted(batch.columns)
            columns = [batch.data[name] for name in names]
            keep: List[int] = []
            for i in range(len(batch)):
                key = tuple(
                    (name, column[i]) for name, column in zip(names, columns)
                )
                if key in seen:
                    continue
                seen.add(key)
                keep.append(i)
            if not keep:
                continue
            yield batch if len(keep) == len(batch) else batch.take(keep)

    def _run_limit(
        self, node: Limit, quota: Optional[ScanQuota]
    ) -> Iterator[RowBatch]:
        # The quota clamps upstream scan fetches to the rows still
        # needed.  Every forwarding operator emits at most one row per
        # fetched row, so a received batch can never exceed
        # ``inner.remaining`` — the slice below only fires for blocking
        # subtrees (which do not forward the quota).
        count = node.count
        if quota is not None:
            count = min(count, quota.remaining)
        inner = ScanQuota(count)
        if inner.remaining <= 0:
            return
        for batch in self.run(node.child, inner):
            if len(batch) < inner.remaining:
                inner.remaining -= len(batch)
                yield batch
            else:
                yield batch.slice(0, inner.remaining)
                inner.remaining = 0
                return

    def _run_group_by(self, node: GroupBy) -> Iterator[RowBatch]:
        groups: Dict[Tuple[Any, ...], Tuple[RowDict, List[AggregateState]]] = {}
        order: List[Tuple[Any, ...]] = []
        has_keys = bool(node.keys)
        compiled_args = node.compiled_aggregate_args
        compiled_keys = node.compiled_keys
        fold_vec = self.columnar
        for batch in self.run(node.child):
            n = len(batch)
            if compiled_args is not None:
                aggregate_columns = [
                    None if pair is None else pair[1](batch)
                    for pair in compiled_args
                ]
            else:
                aggregate_columns = [
                    None
                    if spec.argument is None
                    else evaluate_batch(spec.argument, batch)
                    for spec in node.aggregates
                ]
            # Partition the batch's rows by group key, preserving
            # first-seen order so the global group order matches the
            # row-at-a-time interpreter.
            local: Dict[Tuple[Any, ...], List[int]] = {}
            if has_keys:
                if compiled_keys is not None:
                    key_columns = [
                        pair[1](batch) for pair in compiled_keys
                    ]
                else:
                    key_columns = [
                        evaluate_batch(key, batch) for key in node.keys
                    ]
                if len(key_columns) == 1:
                    for i, value in enumerate(key_columns[0]):
                        key = (value,)
                        bucket = local.get(key)
                        if bucket is None:
                            local[key] = [i]
                        else:
                            bucket.append(i)
                else:
                    for i in range(n):
                        key = tuple(column[i] for column in key_columns)
                        bucket = local.get(key)
                        if bucket is None:
                            local[key] = [i]
                        else:
                            bucket.append(i)
            else:
                local[()] = list(range(n))
            for key, indices in local.items():
                entry = groups.get(key)
                if entry is None:
                    entry = (
                        batch.row(indices[0]),
                        new_states(node.aggregates, compiled_args),
                    )
                    groups[key] = entry
                    order.append(key)
                whole_batch = len(indices) == n
                for state, column in zip(entry[1], aggregate_columns):
                    if column is None:
                        state.update_count_star(len(indices))
                    elif whole_batch:
                        if fold_vec:
                            state.update_vec(column)
                        else:
                            state.update_values(column)
                    else:
                        state.update_values([column[i] for i in indices])

        out_rows: List[RowDict] = []
        if not groups and not has_keys:
            # Scalar aggregation over an empty input: one all-default row.
            empty: RowDict = {}
            for state in new_states(node.aggregates):
                empty[state.spec.output_name] = state.result()
            if node.having is None or self._having_ok(node, empty):
                out_rows.append(empty)
        else:
            for key in order:
                first_row, states = groups[key]
                out: RowDict = {}
                for column, value in zip(node.keys, key):
                    out[column.qualified] = value
                    out[column.column] = value
                for index, column in enumerate(node.carried):
                    if node.compiled_carried is not None:
                        value = node.compiled_carried[index][0](first_row)
                    else:
                        value = evaluate(column, first_row)
                    out[column.qualified] = value
                    out[column.column] = value
                for state in states:
                    out[state.spec.output_name] = state.result()
                if node.having is None or self._having_ok(node, out):
                    out_rows.append(out)
        for start in range(0, len(out_rows), self.batch_size):
            yield RowBatch.from_rows(out_rows[start : start + self.batch_size])

    @staticmethod
    def _having_ok(node: GroupBy, row: RowDict) -> bool:
        if node.compiled_having is not None:
            return node.compiled_having[0](row) is True
        return evaluate(node.having, row) is True
