"""The batched (vectorized) plan interpreter.

Operators exchange :class:`~repro.executor.batch.RowBatch` objects instead
of single row dicts: predicates, projections and join keys are evaluated
once per batch via :func:`repro.expr.eval.evaluate_batch`, and the
per-row interpreter overhead (dict materialization, recursive expression
dispatch) is amortized over ``batch_size`` rows.

Semantics — result rows and their order, row counts, and page-I/O
accounting — match the row-at-a-time interpreter in
:mod:`repro.executor.runtime` exactly; the differential harness in
``tests/executor/test_batched_differential.py`` pins the two together.
The one intentional divergence: under LIMIT, a batched scan may fetch up
to one batch of rows beyond the limit (read-ahead), so *LIMIT queries*
can charge more page reads than the row-at-a-time pipeline.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Tuple

from repro.engine.database import Database
from repro.errors import ExecutionError
from repro.executor.aggregates import AggregateState, new_states
from repro.executor.batch import DEFAULT_BATCH_SIZE, RowBatch
from repro.executor.joins import (
    run_hash_join_batched,
    run_nested_loop_join_batched,
)
from repro.executor.scans import run_index_scan_batched, run_seq_scan_batched
from repro.executor.sorts import run_sort_batched
from repro.expr.eval import evaluate, evaluate_batch
from repro.optimizer.physical import (
    Distinct,
    EmptyResult,
    Extend,
    Filter,
    GroupBy,
    HashJoin,
    IndexScan,
    Limit,
    NestedLoopJoin,
    PhysicalNode,
    Project,
    SeqScan,
    Sort,
    UnionAll,
)

RowDict = Dict[str, Any]


class BatchedInterpreter:
    """Interprets a physical plan batch-at-a-time.

    One instance serves one execution: it carries the ``batch_size`` and,
    when instrumented, records per-node actual row *and batch* counts for
    EXPLAIN ANALYZE.
    """

    def __init__(
        self,
        database: Database,
        batch_size: int = DEFAULT_BATCH_SIZE,
        instrument: bool = False,
        collect: bool = False,
        guard: Any = None,
    ) -> None:
        if batch_size < 1:
            raise ExecutionError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self.database = database
        self.batch_size = batch_size
        # Feedback collection implies instrumentation and additionally
        # counts scan input rows and join pairs (see repro.feedback).
        self.collect = collect
        self.instrument = instrument or collect
        # An armed ActiveGuard (repro.resilience.guards) or None; threaded
        # to the operators that can burn unbounded work.
        self.guard = guard

    def rows(self, root: PhysicalNode) -> List[RowDict]:
        """Run the plan and materialize the result as row dicts."""
        out: List[RowDict] = []
        for batch in self.run(root):
            out.extend(batch.to_rows())
        return out

    # -- dispatch -------------------------------------------------------------

    def run(self, node: PhysicalNode) -> Iterator[RowBatch]:
        if not self.instrument:
            return self._run_raw(node)
        return self._counted(node)

    def _counted(self, node: PhysicalNode) -> Iterator[RowBatch]:
        rows = 0
        batches = 0
        for batch in self._run_raw(node):
            rows += len(batch)
            batches += 1
            yield batch
        node.actual_rows = rows
        node.actual_batches = batches

    def _run_raw(self, node: PhysicalNode) -> Iterator[RowBatch]:
        if isinstance(node, EmptyResult):
            return iter(())
        if isinstance(node, SeqScan):
            return run_seq_scan_batched(
                self.database,
                node,
                self.batch_size,
                count_input=self.collect,
                guard=self.guard,
            )
        if isinstance(node, IndexScan):
            return run_index_scan_batched(
                self.database,
                node,
                self.batch_size,
                count_input=self.collect,
                guard=self.guard,
            )
        if isinstance(node, Filter):
            return self._run_filter(node)
        if isinstance(node, NestedLoopJoin):
            return run_nested_loop_join_batched(
                node,
                self.run,
                self.batch_size,
                count_pairs=self.collect,
                guard=self.guard,
            )
        if isinstance(node, HashJoin):
            return run_hash_join_batched(
                node,
                self.run,
                self.batch_size,
                count_pairs=self.collect,
                guard=self.guard,
            )
        if isinstance(node, GroupBy):
            return self._run_group_by(node)
        if isinstance(node, Extend):
            return self._run_extend(node)
        if isinstance(node, Sort):
            return run_sort_batched(
                node,
                self.run(node.child),
                self.batch_size,
                count_input=self.collect,
                guard=self.guard,
            )
        if isinstance(node, Project):
            return self._run_project(node)
        if isinstance(node, Distinct):
            return self._run_distinct(node)
        if isinstance(node, Limit):
            return self._run_limit(node)
        if isinstance(node, UnionAll):
            return itertools.chain.from_iterable(
                self.run(child) for child in node.inputs
            )
        raise ExecutionError(f"cannot execute {type(node).__name__}")

    # -- operators ----------------------------------------------------------------

    def _run_filter(self, node: Filter) -> Iterator[RowBatch]:
        if node.compiled_predicate is not None:
            batch_fn = node.compiled_predicate[1]
            for batch in self.run(node.child):
                filtered = batch.filter_true(batch_fn(batch))
                if len(filtered):
                    yield filtered
        else:
            for batch in self.run(node.child):
                filtered = batch.filter_true(
                    evaluate_batch(node.predicate, batch)
                )
                if len(filtered):
                    yield filtered

    def _run_extend(self, node: Extend) -> Iterator[RowBatch]:
        compiled = node.compiled_outputs
        for batch in self.run(node.child):
            columns = list(batch.columns)
            data = dict(batch.data)
            present = set(columns)
            for index, output in enumerate(node.outputs):
                # Evaluated against the child batch, as the row form
                # evaluates against the original row.
                if compiled is not None:
                    data[output.name] = compiled[index][1](batch)
                else:
                    data[output.name] = evaluate_batch(
                        output.expression, batch
                    )
                if output.name not in present:
                    columns.append(output.name)
                    present.add(output.name)
            yield RowBatch(columns, data, len(batch))

    def _run_project(self, node: Project) -> Iterator[RowBatch]:
        for batch in self.run(node.child):
            data: Dict[str, List[Any]] = {}
            for name, source in zip(node.names, node.source_names):
                column = batch.data.get(source)
                data[name] = (
                    column if column is not None else [None] * len(batch)
                )
            yield RowBatch(node.names, data, len(batch))

    def _run_distinct(self, node: Distinct) -> Iterator[RowBatch]:
        seen: set = set()
        for batch in self.run(node.child):
            # Same key as the row form's tuple(sorted(row.items())).
            names = sorted(batch.columns)
            columns = [batch.data[name] for name in names]
            keep: List[int] = []
            for i in range(len(batch)):
                key = tuple(
                    (name, column[i]) for name, column in zip(names, columns)
                )
                if key in seen:
                    continue
                seen.add(key)
                keep.append(i)
            if not keep:
                continue
            yield batch if len(keep) == len(batch) else batch.take(keep)

    def _run_limit(self, node: Limit) -> Iterator[RowBatch]:
        remaining = node.count
        if remaining <= 0:
            return
        for batch in self.run(node.child):
            if len(batch) < remaining:
                remaining -= len(batch)
                yield batch
            else:
                yield batch.slice(0, remaining)
                return

    def _run_group_by(self, node: GroupBy) -> Iterator[RowBatch]:
        groups: Dict[Tuple[Any, ...], Tuple[RowDict, List[AggregateState]]] = {}
        order: List[Tuple[Any, ...]] = []
        has_keys = bool(node.keys)
        compiled_args = node.compiled_aggregate_args
        compiled_keys = node.compiled_keys
        for batch in self.run(node.child):
            n = len(batch)
            if compiled_args is not None:
                aggregate_columns = [
                    None if pair is None else pair[1](batch)
                    for pair in compiled_args
                ]
            else:
                aggregate_columns = [
                    None
                    if spec.argument is None
                    else evaluate_batch(spec.argument, batch)
                    for spec in node.aggregates
                ]
            # Partition the batch's rows by group key, preserving
            # first-seen order so the global group order matches the
            # row-at-a-time interpreter.
            local: Dict[Tuple[Any, ...], List[int]] = {}
            if has_keys:
                if compiled_keys is not None:
                    key_columns = [
                        pair[1](batch) for pair in compiled_keys
                    ]
                else:
                    key_columns = [
                        evaluate_batch(key, batch) for key in node.keys
                    ]
                if len(key_columns) == 1:
                    for i, value in enumerate(key_columns[0]):
                        key = (value,)
                        bucket = local.get(key)
                        if bucket is None:
                            local[key] = [i]
                        else:
                            bucket.append(i)
                else:
                    for i in range(n):
                        key = tuple(column[i] for column in key_columns)
                        bucket = local.get(key)
                        if bucket is None:
                            local[key] = [i]
                        else:
                            bucket.append(i)
            else:
                local[()] = list(range(n))
            for key, indices in local.items():
                entry = groups.get(key)
                if entry is None:
                    entry = (
                        batch.row(indices[0]),
                        new_states(node.aggregates, compiled_args),
                    )
                    groups[key] = entry
                    order.append(key)
                whole_batch = len(indices) == n
                for state, column in zip(entry[1], aggregate_columns):
                    if column is None:
                        state.update_count_star(len(indices))
                    elif whole_batch:
                        state.update_values(column)
                    else:
                        state.update_values([column[i] for i in indices])

        out_rows: List[RowDict] = []
        if not groups and not has_keys:
            # Scalar aggregation over an empty input: one all-default row.
            empty: RowDict = {}
            for state in new_states(node.aggregates):
                empty[state.spec.output_name] = state.result()
            if node.having is None or self._having_ok(node, empty):
                out_rows.append(empty)
        else:
            for key in order:
                first_row, states = groups[key]
                out: RowDict = {}
                for column, value in zip(node.keys, key):
                    out[column.qualified] = value
                    out[column.column] = value
                for index, column in enumerate(node.carried):
                    if node.compiled_carried is not None:
                        value = node.compiled_carried[index][0](first_row)
                    else:
                        value = evaluate(column, first_row)
                    out[column.qualified] = value
                    out[column.column] = value
                for state in states:
                    out[state.spec.output_name] = state.result()
                if node.having is None or self._having_ok(node, out):
                    out_rows.append(out)
        for start in range(0, len(out_rows), self.batch_size):
            yield RowBatch.from_rows(out_rows[start : start + self.batch_size])

    @staticmethod
    def _having_ok(node: GroupBy, row: RowDict) -> bool:
        if node.compiled_having is not None:
            return node.compiled_having[0](row) is True
        return evaluate(node.having, row) is True
