"""The durability manager: logging hooks, checkpoints, and recovery.

One :class:`DurabilityManager` owns a database directory (WAL +
checkpoint image) and is attached to a :class:`~repro.engine.database.
Database` (plus, through the :class:`~repro.api.SoftDB` facade, the
soft-constraint registry and the feedback store).  Three roles:

**Logging.**  The engine's DML/DDL paths call the ``log_*`` hooks after
each mutation; the registry snapshots a soft constraint's full state on
every lifecycle/statement change.  Records are *physiological*: logical
row content plus the physical RowId it landed at, so redo replay forces
rows back to their original slots.  Consecutive row changes with the
same op/table/transaction are coalesced into one *run* record (an
``insert_many`` batch is a single framed line).  Statement boundaries
group records into implicit transactions — a record without a matching
commit record is invisible to recovery, which is what makes a crash
mid-statement leave zero trace.

**Checkpoints.**  :meth:`checkpoint` serializes the entire database
(pages, indexes, catalog, SC registry with policies/currency/exception-
AST bindings, feedback state) into one CRC-guarded image installed by
atomic rename, recording the WAL offset it is consistent with.  The WAL
is never truncated by a checkpoint — replay is offset-based — so a
checkpoint that is later lost still leaves full redo history.

**Recovery.**  :meth:`recover` restores the last checkpoint (if any),
replays the WAL's committed records from its offset, truncates a torn
tail, then runs an integrity pass: per-page checksum verification,
index-versus-heap cross-checks (mismatching indexes are rebuilt, or
quarantined when the rebuild itself fails), and re-validation of every
recovered ACTIVE absolute soft constraint against the recovered data —
violations route through the constraint's
:class:`~repro.softcon.maintenance.MaintenancePolicy`, so an overturned
ASC can never outlive a crash.
"""

from __future__ import annotations

import json
import threading
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Optional, Set

from repro.durability import codec
from repro.durability.checkpoint import load_checkpoint, write_checkpoint
from repro.durability.wal import WriteAheadLog
from repro.engine.table import HeapTable
from repro.errors import (
    RecoveryError,
    ReproError,
    TransactionError,
)
from repro.resilience.faults import CrashSchedule, SimulatedCrash
from repro.softcon.base import SCState

WAL_NAME = "wal.log"
CHECKPOINT_NAME = "checkpoint.img"

#: Bound on repair rounds per constraint during post-recovery
#: re-validation; a constraint still violated after this many policy
#: applications is overturned outright.
MAX_REPAIR_ROUNDS = 1000

#: Compact JSON encoder for the hot row-record path.  ``json.dumps``
#: with non-default separators builds a fresh encoder per call; one
#: shared instance keeps the C-accelerated encode.
_ENCODE = json.JSONEncoder(separators=(",", ":")).encode

__all__ = ["DurabilityManager", "WAL_NAME", "CHECKPOINT_NAME"]


class DurabilityManager:
    """WAL + checkpoint + recovery for one database directory."""

    def __init__(
        self,
        path: Any,
        crash_points: Optional[CrashSchedule] = None,
    ) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.crash_points = crash_points
        self.checkpoint_path = self.path / CHECKPOINT_NAME
        self.wal = WriteAheadLog(self.path / WAL_NAME, crash_points)
        self.database = None
        self.registry = None
        self.feedback = None
        # Extra facade-level sequences persisted through checkpoints.
        self.session_state: Dict[str, Any] = {}
        # Transaction contexts.  Single-session work uses the default
        # stack; each Session installs its own stack around statement
        # execution (see txn_context), so concurrent sessions tag WAL
        # records with their own transaction without sharing nesting
        # state.  The mutex serializes every append-side mutation.
        self._mutex = threading.RLock()
        self._tls = threading.local()
        self._default_stack: List[int] = []
        self._open_txns: Set[int] = set()
        self._txn_dirty: Set[int] = set()
        # Installed by the concurrency engine; None = flush per commit.
        self.group_commit = None
        # Failover fencing (see repro.replication.failover): the cluster
        # fence is the shared epoch authority, promotion_epoch is the
        # epoch THIS node last held.  A node whose epoch lags the fence
        # is deposed: every transaction begin and every commit re-checks,
        # so a woken-up old primary cannot write — split-brain safety.
        self.fence = None
        self.promotion_epoch = 0
        self._table_json: Dict[str, str] = {}
        # Pending row run: consecutive same-op/table/txn row hooks are
        # buffered and flushed as ONE framed record (see _flush_run).
        self._run: Optional[list] = None
        self._txn_counter = 0
        self._replaying = False
        self.records_logged = 0
        self.checkpoints_taken = 0
        self.last_recovery: Optional[Dict[str, Any]] = None

    def attach(self, database, registry=None, feedback=None) -> None:
        """Wire this manager into an engine stack (sets the hooks up)."""
        self.database = database
        self.registry = registry
        self.feedback = feedback
        database.durability = self

    def has_persisted_state(self) -> bool:
        return self.checkpoint_path.exists() or self.wal.offset() > 0

    def close(self) -> None:
        with self._mutex:
            self._flush_run()
            self.wal.close()

    # -- transactions -------------------------------------------------------

    @property
    def _txn_stack(self) -> List[int]:
        """This thread's transaction stack (a session's, or the default)."""
        stack = getattr(self._tls, "stack", None)
        return self._default_stack if stack is None else stack

    @contextmanager
    def txn_context(self, stack: List[int]):
        """Route this thread's transaction nesting through ``stack``.

        Sessions own one stack apiece and install it around each
        statement, so a session's open transaction follows the session —
        not the thread — even when its statements run on a pool.
        """
        previous = getattr(self._tls, "stack", None)
        self._tls.stack = stack
        try:
            yield
        finally:
            self._tls.stack = previous

    def check_fence(self) -> None:
        """Reject this node's write if the cluster has moved past it.

        Checked at every transaction begin (before the engine mutates
        anything) and again at every commit (an explicit transaction may
        straddle a promotion): a deposed primary raises
        :class:`~repro.errors.FencedError` instead of durably committing
        a second history.  Nodes outside a failover cluster carry no
        fence and pay nothing here.
        """
        fence = self.fence
        if fence is not None:
            fence.check(self.promotion_epoch, node=str(self.path))

    def _begin(self) -> int:
        self.check_fence()
        with self._mutex:
            self._txn_counter += 1
            txn_id = self._txn_counter
            self._open_txns.add(txn_id)
        self._txn_stack.append(txn_id)
        return txn_id

    def _finish(self, txn_id: int, op: str) -> None:
        if op == "commit":
            self.check_fence()
        committer = None
        seq = 0
        with self._mutex:
            stack = self._txn_stack
            if stack and stack[-1] == txn_id:
                stack.pop()
            self._open_txns.discard(txn_id)
            # Only a transaction that tagged records of its own writes a
            # commit/abort.  A statement scope around a nested transaction
            # (multi-row DML runs one Transaction per statement) must not
            # add a second commit record: the statement needs exactly one
            # durability point, or a crash between the two leaves replay
            # honouring the first while the client saw the statement fail.
            if txn_id not in self._txn_dirty:
                return
            self._txn_dirty.discard(txn_id)
            # The commit/abort record is the durability point: flush.
            # Cluster members stamp their promotion epoch into it — the
            # WAL-visible fencing token the chaos suite audits.
            if self.fence is not None:
                self._append(
                    {"op": op, "txn": txn_id, "epoch": self.promotion_epoch}
                )
            else:
                self._append({"op": op, "txn": txn_id})
            candidate = self.group_commit
            if candidate is not None and candidate.active:
                committer = candidate
                seq = self.wal.appended
        if committer is not None:
            # Group commit: the flush happens outside the mutex so N
            # committing transactions can share the leader's single
            # flush instead of serializing N flushes behind it.
            committer.commit(seq)
        else:
            self.wal.flush()

    def txn_begin(self) -> Optional[int]:
        """Called by :class:`~repro.engine.transactions.Transaction`."""
        if self._replaying:
            return None
        return self._begin()

    def txn_commit(self, txn_id: Optional[int]) -> None:
        if txn_id is not None:
            self._finish(txn_id, "commit")

    def txn_abort(self, txn_id: Optional[int]) -> None:
        if txn_id is not None:
            self._finish(txn_id, "abort")

    @contextmanager
    def statement(self):
        """Implicit per-statement transaction (see Database DML paths).

        Top-level statements get their own WAL transaction so that a
        crash mid-statement (even mid-publish, after the row record was
        appended) leaves no committed trace.  Inside an open explicit
        transaction the scope is a no-op — the outer commit decides.
        """
        if self._replaying or self._txn_stack:
            yield
            return
        txn_id = self._begin()
        try:
            yield
        except BaseException:
            self._finish(txn_id, "abort")
            raise
        else:
            self._finish(txn_id, "commit")

    def current_txn(self) -> Optional[int]:
        return self._txn_stack[-1] if self._txn_stack else None

    # -- logging hooks ------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        with self._mutex:
            if self._run is not None:
                self._flush_run()
            self.wal.append(record)
            self.records_logged += 1

    def _log(self, record: Dict[str, Any]) -> None:
        if self._replaying:
            return
        txn_id = self.current_txn()
        record["txn"] = txn_id
        if txn_id is not None:
            self._txn_dirty.add(txn_id)
        self._append(record)

    # The three row hooks below are the engine's hottest logging calls —
    # one per DML row.  Consecutive rows with the same op, table, and
    # transaction are buffered and flushed as ONE framed *run* record
    # (one C-level JSON encode, one CRC, one write for a whole
    # insert_many batch), which is what keeps WAL-on churn inside its
    # steady-state overhead budget.  Any other append — a different run,
    # a DDL record, the commit itself — flushes the pending run first,
    # so the on-disk record order always equals the logical order and a
    # run can never escape its transaction's commit/abort decision.

    def _buffer(self, op: str, table_name: str, rid_entry, row) -> None:
        with self._mutex:
            stack = self._txn_stack
            txn_id = stack[-1] if stack else None
            if txn_id is not None:
                self._txn_dirty.add(txn_id)
            run = self._run
            if run is not None:
                if run[0] is op and run[1] == table_name and run[2] == txn_id:
                    run[3].append(rid_entry)
                    if row is not None:
                        run[4].append(row)
                    return
                self._flush_run()
            self._run = [
                op,
                table_name,
                txn_id,
                [rid_entry],
                [] if row is None else [row],
            ]

    def _flush_run(self) -> None:
        """Frame and append the pending row run, if any (mutex held).

        A crash mid-append leaves the whole run torn — exactly the
        statement-atomicity a real crash gives, since the run's commit
        record could not have been written yet.
        """
        run = self._run
        if run is None:
            return
        self._run = None
        op, table_name, txn_id, rids, rows = run
        table_json = self._table_json.get(table_name)
        if table_json is None:
            table_json = self._table_json[table_name] = _ENCODE(table_name)
        txn_json = "null" if txn_id is None else str(txn_id)
        if op == "delete_run":
            payload_str = (
                '{"op":"delete_run","rids":%s,"table":%s,"txn":%s}'
                % (_ENCODE(rids), table_json, txn_json)
            )
        else:
            payload_str = (
                '{"op":"%s","rids":%s,"rows":%s,"table":%s,"txn":%s}'
                % (op, _ENCODE(rids), _ENCODE(rows), table_json, txn_json)
            )
        payload = payload_str.encode("utf-8")
        self.wal.append_line(b"%08x %s\n" % (zlib.crc32(payload), payload))
        self.records_logged += len(rids)

    def log_insert(self, table_name: str, row_id, row) -> None:
        if self._replaying:
            return
        self._buffer(
            "insert_run", table_name, (row_id.page_id, row_id.slot_no), row
        )

    def log_delete(self, table_name: str, row_id, row) -> None:
        if self._replaying:
            return
        self._buffer(
            "delete_run", table_name, (row_id.page_id, row_id.slot_no), None
        )

    def log_update(self, table_name: str, old_rid, new_rid, new_row) -> None:
        if self._replaying:
            return
        self._buffer(
            "update_run",
            table_name,
            (
                (old_rid.page_id, old_rid.slot_no),
                (new_rid.page_id, new_rid.slot_no),
            ),
            new_row,
        )

    def log_create_table(self, schema) -> None:
        self._log(
            {"op": "create_table", "schema": codec.encode_schema(schema)}
        )

    def log_create_index(self, index) -> None:
        self._log(
            {
                "op": "create_index",
                "name": index.name,
                "table": index.table_name,
                "columns": list(index.column_names),
                "unique": index.unique,
            }
        )

    def log_add_constraint(self, constraint) -> None:
        # The record carries the backing index name: replay must install
        # the constraint via the catalog, *not* Database.add_constraint,
        # which would create a second backing index.
        self._log(
            {
                "op": "add_constraint",
                "constraint": codec.encode_constraint(constraint),
            }
        )

    def log_drop_table(self, table_name: str) -> None:
        self._log({"op": "drop_table", "table": table_name})

    def log_bind_exception_table(
        self, name: str, constraint_name: str, base_table: str
    ) -> None:
        self._log(
            {
                "op": "bind_exception_table",
                "name": name,
                "constraint": constraint_name,
                "base_table": base_table,
            }
        )

    def log_soft_constraint(self, constraint, policy, currency) -> None:
        """Full-state snapshot of one soft constraint (registry hook).

        Snapshotting the whole constraint on every lifecycle/statement
        change keeps replay trivial (install verbatim) and — because the
        record is tagged with the current transaction — makes SC
        mutations triggered by a losing transaction's changes vanish
        with it at recovery.
        """
        self._log(
            {
                "op": "sc_state",
                "sc": codec.encode_soft_constraint(constraint),
                "policy": codec.encode_policy(policy),
                "currency": codec.encode_currency(currency),
            }
        )

    def stamp_promotion(self, epoch: int, fence) -> None:
        """Install this node as the primary for promotion ``epoch``.

        Called by the promotion coordinator *after* the node drained its
        buffered transaction tail through recovery replay.  Attaches the
        cluster fence, adopts the epoch, persists it in the session
        state (so checkpoints and resync images carry it), and stamps a
        durable ``promote`` record into the WAL — the epoch bump is
        itself WAL-visible, so a crash right after promotion recovers
        the new epoch, and replicas streaming this log learn it in
        order with the commits it fences.
        """
        with self._mutex:
            self._flush_run()
            self.fence = fence
            self.promotion_epoch = epoch
            self.session_state["promotion_epoch"] = epoch
            self.wal.append({"op": "promote", "epoch": epoch, "txn": None})
            self.wal.flush()

    # -- checkpoints --------------------------------------------------------

    def checkpoint(self, compact: bool = False) -> int:
        """Write a full-state checkpoint; returns its sequence number.

        Taken at a statement boundary only (no open transaction — the
        image must be transaction-consistent, since replay starts *after*
        it).  A crash mid-checkpoint leaves the previous image installed.

        With ``compact=True`` the WAL is truncated once the image is
        installed and restarted with an epoch record naming this
        checkpoint (see :meth:`WriteAheadLog.reset` for why that makes
        the two-file update crash-safe).  Compaction bumps the log
        generation, so any replication cursor into the old log is
        invalidated and the shipper performs a full resync rather than
        shipping bytes across the discontinuity.
        """
        with self._mutex:
            if self._open_txns or self._txn_stack:
                raise TransactionError(
                    "cannot checkpoint with an open transaction"
                )
            self._flush_run()
            payload = self._build_payload()
            write_checkpoint(self.checkpoint_path, payload, self.crash_points)
            if compact:
                self.wal.reset(payload["sequence"])
            self.checkpoints_taken += 1
            return payload["sequence"]

    def _build_payload(self) -> Dict[str, Any]:
        database = self.database
        catalog = database.catalog
        schedule = self.crash_points
        if self.promotion_epoch:
            # The image must carry the epoch even when it was recovered
            # from a promote WAL record alone: a compacting checkpoint
            # discards that record, and an image without the epoch would
            # let a deposed primary forget it was ever fenced.
            self.session_state["promotion_epoch"] = self.promotion_epoch
        tables = []
        for table in catalog.tables.values():
            pages = []
            for page in table.pages.pages:
                if schedule is not None and schedule.should_crash(
                    "page_flush"
                ):
                    raise SimulatedCrash(
                        "simulated crash flushing a checkpoint page",
                        site="page_flush",
                    )
                pages.append(codec.encode_page(page))
            tables.append(
                {
                    "schema": codec.encode_schema(table.schema),
                    "pages": pages,
                    "row_count": table.row_count,
                    "insert_hint": table.pages._insert_hint,
                }
            )
        if schedule is not None and schedule.should_crash("catalog_serialize"):
            raise SimulatedCrash(
                "simulated crash serializing the catalog",
                site="catalog_serialize",
            )
        summary_tables = []
        for name, definition in catalog.summary_tables().items():
            constraint = getattr(definition, "constraint", None)
            base_table = getattr(definition, "base_table", None)
            if constraint is not None and base_table is not None:
                summary_tables.append(
                    {
                        "name": name,
                        "constraint": constraint.name,
                        "base_table": base_table,
                    }
                )
        return {
            "version": 1,
            "sequence": self.checkpoints_taken + 1,
            "wal_offset": self.wal.offset(),
            "txn_counter": self._txn_counter,
            "auto_index_sequence": database._auto_index_sequence,
            "session": dict(self.session_state),
            "tables": tables,
            "indexes": [
                codec.encode_index(index)
                for index in catalog.indexes.values()
            ],
            "constraints": [
                codec.encode_constraint(constraint)
                for constraint in catalog.all_constraints()
            ],
            "summary_tables": summary_tables,
            "registry": self._encode_registry(),
            "feedback": (
                self.feedback.state_dict()
                if self.feedback is not None
                else None
            ),
        }

    def _encode_registry(self) -> Optional[Dict[str, Any]]:
        registry = self.registry
        if registry is None:
            return None
        return {
            "constraints": [
                {
                    "sc": codec.encode_soft_constraint(sc),
                    "policy": codec.encode_policy(
                        registry._policies.get(sc.name)
                    ),
                    "currency": codec.encode_currency(
                        registry._currency.get(sc.name)
                    ),
                }
                for sc in registry._constraints.values()
            ],
            "default_policy": codec.encode_policy(registry._default_policy),
            "probation_uses": dict(registry.probation_uses),
            "counters": registry.instrumentation(),
        }

    # -- recovery -----------------------------------------------------------

    def recover(self) -> Dict[str, Any]:
        """Restore checkpoint + committed WAL suffix; verify; return a
        summary dict."""
        summary: Dict[str, Any] = {
            "checkpoint": False,
            "replayed": 0,
            "skipped": 0,
            "torn_tail": False,
            "indexes_rebuilt": [],
            "indexes_quarantined": [],
            "asc_actions": [],
            "warnings": [],
        }
        start_offset = 0
        if self.checkpoint_path.exists():
            payload = load_checkpoint(self.checkpoint_path)
            self._restore(payload, summary)
            start_offset = payload["wal_offset"]
            summary["checkpoint"] = True
            # Compaction check: a log that *begins* with an epoch record
            # naming this checkpoint was truncated by it, so the image's
            # recorded offset (measured in the pre-compaction log) is
            # stale — replay starts just past the marker instead.
            head = self.wal.head_record()
            if (
                head is not None
                and head[0].get("op") == "epoch"
                and head[0].get("sequence") == payload["sequence"]
            ):
                start_offset = head[1]
        records, end_offset, torn = self.wal.scan(start_offset)
        winners = {
            record["txn"]
            for record in records
            if record.get("op") == "commit"
        }
        self._replaying = True
        try:
            for position, record in enumerate(records):
                op = record.get("op")
                if op == "promote":
                    # The promotion-epoch bump is WAL-visible: recovery
                    # re-adopts the highest epoch this node ever held.
                    self.promotion_epoch = max(
                        self.promotion_epoch, record.get("epoch", 0)
                    )
                    continue
                if op in ("commit", "abort", "epoch"):
                    continue
                txn_id = record.get("txn")
                if txn_id is not None and txn_id not in winners:
                    summary["skipped"] += (
                        len(record["rids"]) if op.endswith("_run") else 1
                    )
                    continue
                try:
                    applied = self._apply(record, summary)
                except ReproError as error:
                    raise RecoveryError(
                        f"replay failed at record {position} "
                        f"(op={op!r}): {error}"
                    ) from error
                summary["replayed"] += applied
        finally:
            self._replaying = False
        if torn:
            self.wal.truncate_to(end_offset)
            summary["torn_tail"] = True
        self._txn_counter = max(
            [self._txn_counter]
            + [r["txn"] for r in records if r.get("txn") is not None]
        )
        self._verify_storage(summary)
        self._revalidate_soft_constraints(summary)
        self.database.reset_counters()
        self.last_recovery = summary
        return summary

    def _restore(
        self, payload: Dict[str, Any], summary: Dict[str, Any]
    ) -> None:
        database = self.database
        catalog = database.catalog
        for table_state in payload["tables"]:
            schema = codec.decode_schema(table_state["schema"])
            table = HeapTable(schema, database.counters)
            table.pages.pages = [
                codec.decode_page(page_state)
                for page_state in table_state["pages"]
            ]
            table.pages._insert_hint = min(
                table_state["insert_hint"],
                max(0, len(table.pages.pages) - 1),
            )
            table._row_count = table_state["row_count"]
            catalog.add_table(table)
        for index_state in payload["indexes"]:
            table = catalog.table(index_state["table"])
            catalog.add_index(
                codec.decode_index(
                    index_state, table.schema, database.counters
                )
            )
        for constraint_state in payload["constraints"]:
            catalog.add_constraint(
                codec.decode_constraint(constraint_state)
            )
        database._auto_index_sequence = payload["auto_index_sequence"]
        self._txn_counter = payload["txn_counter"]
        self.session_state = dict(payload["session"])
        self.promotion_epoch = self.session_state.get("promotion_epoch", 0)
        self._restore_registry(payload.get("registry"), summary)
        for binding in payload["summary_tables"]:
            self._rebind_exception_table(binding, summary)
        feedback_state = payload.get("feedback")
        if feedback_state is not None:
            if self.feedback is None:
                summary["warnings"].append(
                    "checkpoint carries feedback state but feedback "
                    "collection is disabled; state ignored"
                )
            else:
                self.feedback.load_state(feedback_state)

    def _restore_registry(
        self, state: Optional[Dict[str, Any]], summary: Dict[str, Any]
    ) -> None:
        registry = self.registry
        if state is None or registry is None:
            if state is not None:
                summary["warnings"].append(
                    "checkpoint carries a soft-constraint registry but "
                    "this session has none; state ignored"
                )
            return
        queued: List[tuple] = []
        for entry in state["constraints"]:
            sc = codec.decode_soft_constraint(entry["sc"])
            policy = codec.decode_policy(entry["policy"])
            currency = codec.decode_currency(entry["currency"])
            registry.adopt(sc, policy=policy, currency=currency)
            if entry["policy"] and entry["policy"].get("queue"):
                queued.append((policy, entry["policy"]["queue"]))
        # Async repair queues reference constraint objects: resolve the
        # logged names against what was just adopted.
        for policy, names in queued:
            policy.queue = [
                registry._constraints[name]
                for name in names
                if name in registry._constraints
            ]
        default_policy = codec.decode_policy(state["default_policy"])
        if default_policy is not None:
            registry._default_policy = default_policy
        registry.probation_uses.update(state["probation_uses"])
        for counter, value in state["counters"].items():
            setattr(registry, counter, value)

    def _rebind_exception_table(
        self, binding: Dict[str, Any], summary: Dict[str, Any]
    ) -> None:
        from repro.softcon.exceptions_ast import ExceptionTable

        registry = self.registry
        constraint = (
            registry._constraints.get(binding["constraint"])
            if registry is not None
            else None
        )
        if constraint is None:
            summary["warnings"].append(
                f"exception table {binding['name']!r} references unknown "
                f"soft constraint {binding['constraint']!r}; binding lost"
            )
            return
        ExceptionTable.rebind(self.database, constraint, binding["name"])

    # -- replay -------------------------------------------------------------

    def _apply(self, record: Dict[str, Any], summary: Dict[str, Any]) -> int:
        """Redo one record; returns the number of logical row changes
        it carried (run records bundle a whole statement's rows)."""
        op = record["op"]
        database = self.database
        if op == "insert_run":
            table = database.table(record["table"])
            indexes = database.catalog.indexes_on(table.name)
            for rid_state, row_state in zip(record["rids"], record["rows"]):
                rid = codec.decode_rid(rid_state)
                row = codec.decode_row(row_state)
                table.place_at(rid, row)
                for index in indexes:
                    index.insert(row, rid)
                self._replay_tick(table.name)
            return len(record["rids"])
        if op == "delete_run":
            table = database.table(record["table"])
            indexes = database.catalog.indexes_on(table.name)
            for rid_state in record["rids"]:
                rid = codec.decode_rid(rid_state)
                row = table.delete(rid)
                for index in indexes:
                    index.delete(row, rid)
                self._replay_tick(table.name)
            return len(record["rids"])
        if op == "update_run":
            table = database.table(record["table"])
            indexes = database.catalog.indexes_on(table.name)
            for rid_pair, row_state in zip(record["rids"], record["rows"]):
                old_rid = codec.decode_rid(rid_pair[0])
                new_rid = codec.decode_rid(rid_pair[1])
                row = codec.decode_row(row_state)
                old_row = table.apply_update(old_rid, new_rid, row)
                for index in indexes:
                    index.update(old_row, old_rid, row, new_rid)
                self._replay_tick(table.name)
            return len(record["rids"])
        if op == "insert":
            table = database.table(record["table"])
            rid = codec.decode_rid(record["rid"])
            row = codec.decode_row(record["row"])
            table.place_at(rid, row)
            for index in database.catalog.indexes_on(table.name):
                index.insert(row, rid)
            self._replay_tick(table.name)
        elif op == "delete":
            table = database.table(record["table"])
            rid = codec.decode_rid(record["rid"])
            row = table.delete(rid)
            for index in database.catalog.indexes_on(table.name):
                index.delete(row, rid)
            self._replay_tick(table.name)
        elif op == "update":
            table = database.table(record["table"])
            old_rid = codec.decode_rid(record["old_rid"])
            new_rid = codec.decode_rid(record["new_rid"])
            row = codec.decode_row(record["row"])
            old_row = table.apply_update(old_rid, new_rid, row)
            for index in database.catalog.indexes_on(table.name):
                index.update(old_row, old_rid, row, new_rid)
            self._replay_tick(table.name)
        elif op == "create_table":
            database.create_table(codec.decode_schema(record["schema"]))
        elif op == "create_index":
            database.create_index(
                record["name"],
                record["table"],
                record["columns"],
                unique=record["unique"],
            )
        elif op == "add_constraint":
            database.catalog.add_constraint(
                codec.decode_constraint(record["constraint"])
            )
        elif op == "drop_table":
            database.drop_table(record["table"])
        elif op == "sc_state":
            if self.registry is None:
                summary["warnings"].append(
                    "sc_state record ignored: no registry attached"
                )
                return 1
            self.registry.adopt(
                codec.decode_soft_constraint(record["sc"]),
                policy=codec.decode_policy(record["policy"]),
                currency=codec.decode_currency(record["currency"]),
            )
        elif op == "bind_exception_table":
            self._rebind_exception_table(record, summary)
        else:
            raise RecoveryError(f"unknown WAL record op {op!r}")
        return 1

    def _replay_tick(self, table_name: str) -> None:
        """Advance SC staleness counters for one replayed row change.

        Live row changes tick the registry through the change-event
        observer, which replay suppresses; without this, recovered
        currency models would freeze at their last logged snapshot and
        diverge from a never-crashed run.
        """
        if self.registry is not None:
            self.registry.replay_tick(table_name)

    # -- post-recovery integrity -------------------------------------------

    def _verify_storage(self, summary: Dict[str, Any]) -> None:
        database = self.database
        catalog = database.catalog
        for name in catalog.table_names():
            table = catalog.table(name)
            for page in table.pages.pages:
                try:
                    page.verify()
                except ReproError as error:
                    raise RecoveryError(
                        f"recovered page failed verification in table "
                        f"{name!r}: {error}"
                    ) from error
            live = sum(
                1
                for page in table.pages.pages
                for slot in page.slots
                if slot is not None
            )
            if live != table.row_count:
                raise RecoveryError(
                    f"recovered table {name!r} counts {table.row_count} "
                    f"rows but holds {live}"
                )
        for index in list(catalog.indexes.values()):
            table = catalog.table(index.table_name)
            expected = []
            for row_id, row in table.scan():
                key = index.key_of(row)
                if key is not None:
                    expected.append((key, row_id))
            expected.sort()
            actual = sorted(zip(index._keys, index._rids))
            if expected == actual:
                continue
            try:
                database.rebuild_index(index.name)
                summary["indexes_rebuilt"].append(index.name)
            except ReproError:
                index.quarantined = True
                summary["indexes_quarantined"].append(index.name)

    def _revalidate_soft_constraints(self, summary: Dict[str, Any]) -> None:
        """Recovered ACTIVE ASCs must not contradict recovered data.

        Every violation found is routed through the constraint's
        maintenance policy — the same code path a live violation takes —
        until the constraint is clean, repaired into cleanliness, or no
        longer an absolute rewrite candidate.
        """
        registry = self.registry
        if registry is None:
            return
        for sc in list(registry._constraints.values()):
            if sc.state is not SCState.ACTIVE or not sc.is_absolute:
                continue
            for _round in range(MAX_REPAIR_ROUNDS):
                violating_row = self._find_violation(sc)
                if violating_row is None:
                    break
                registry.violations_seen += 1
                registry.policy_for(sc).on_violation(
                    registry, sc, violating_row
                )
                summary["asc_actions"].append(
                    (sc.name, sc.state.value, round(sc.confidence, 9))
                )
                if sc.state is not SCState.ACTIVE or not sc.is_absolute:
                    break
            else:
                registry.overturn(sc)
                summary["asc_actions"].append(
                    (sc.name, sc.state.value, round(sc.confidence, 9))
                )

    def _find_violation(self, sc) -> Optional[Dict[str, Any]]:
        from repro.engine.database import ChangeEvent

        # Scanning the first constrained table covers every case: for
        # join constraints each violating pair contains a table-one row,
        # and _synchronous_check joins it to the other side.
        table_name = sc.table_names()[0]
        table = self.database.table(table_name)
        for row in table.scan_rows():
            event = ChangeEvent("insert", table_name, None, tuple(row))
            violating = self.registry._synchronous_check(sc, event)
            if violating is not None:
                return violating
        return None

    # -- reporting ----------------------------------------------------------

    def describe(self) -> str:
        """One-line status for EXPLAIN/describe output."""
        recovered = ""
        if self.last_recovery is not None:
            recovered = (
                f", recovered {self.last_recovery['replayed']} records"
                f"{' from checkpoint' if self.last_recovery['checkpoint'] else ''}"
            )
        return (
            f"wal: on ({self.path}, {self.records_logged} records, "
            f"{self.checkpoints_taken} checkpoints{recovered})"
        )

    def __repr__(self) -> str:
        return (
            f"DurabilityManager({self.path}, records={self.records_logged}, "
            f"checkpoints={self.checkpoints_taken})"
        )
