"""The write-ahead log: CRC-framed, append-only, torn-tail tolerant.

Framing is one record per line::

    <crc32 hex, 8 chars> <canonical JSON payload>\\n

Canonical JSON never contains a raw newline (``json.dumps`` escapes
them inside strings), so the line framing is unambiguous.  The CRC is
over the payload bytes; a record whose CRC does not match — or whose
line has no terminator — is *torn*.

A torn **final** record is the expected signature of a crash mid-append:
:meth:`WriteAheadLog.scan` stops cleanly before it and reports the torn
tail so recovery can truncate it (the record's transaction never
committed, by WAL ordering, so nothing is lost).  A torn record anywhere
*before* the tail means real corruption and raises
:class:`~repro.errors.WALCorruptionError`.

Crash injection: when a :class:`~repro.resilience.faults.CrashSchedule`
fires at the ``wal_append`` site, the log writes only a prefix of the
framed record — a torn final record, exactly what a real crash leaves —
and raises :class:`~repro.resilience.faults.SimulatedCrash`.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.durability.codec import canonical_dumps
from repro.errors import WALCorruptionError
from repro.resilience.faults import CrashSchedule, SimulatedCrash

__all__ = ["WriteAheadLog"]


def _frame(record: Dict[str, Any]) -> bytes:
    payload = canonical_dumps(record).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return b"%08x %s\n" % (crc, payload)


class WriteAheadLog:
    """Append-only redo log with CRC framing and offset-based replay.

    Checkpoints store a byte offset into this log rather than truncating
    it, so a checkpoint that later turns out unreadable still leaves the
    full redo history behind it.
    """

    def __init__(
        self, path: Path, crash_points: Optional[CrashSchedule] = None
    ) -> None:
        self.path = Path(path)
        self.crash_points = crash_points
        self._file = open(self.path, "ab")
        self.appended = 0
        # Flush calls actually issued — the group-commit amortization
        # metric (flushes per commit) reads this.
        self.flushes = 0
        # The durable frontier: byte offset (and appended-record count)
        # covered by the last flush.  This is the replication shipping
        # horizon — records past it are buffered only, so a crash could
        # still revoke them, and the WAL shipper must never send them
        # (the byte-granular twin of the group committer's
        # ``_flushed_seq`` publication point).
        self.durable_offset = self._file.tell()
        self.durable_seq = 0
        # Bumped by :meth:`reset` (log compaction).  Byte offsets are
        # only comparable within one generation; a replication cursor
        # carried across a bump is meaningless and forces a full resync.
        self.generation = 0
        # Latched by a simulated crash: a dead process writes nothing
        # more, so cleanup code unwinding through the SimulatedCrash
        # (e.g. a transaction rollback) must not reach the disk either.
        self.dead = False

    # -- writing ------------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        """Frame and buffer one record; may simulate a torn-write crash."""
        self.append_line(_frame(record))

    def append_line(self, line: bytes) -> None:
        """Buffer one pre-framed line (the hot DML fast path).

        The durability manager composes row *run* records as framed
        bytes directly — they dominate the log, and the generic
        dict-encode path costs more than the engine work being logged.
        Crash-site accounting is identical to :meth:`append`: every
        record append is one ``wal_append`` visit.
        """
        if self.dead:
            return
        schedule = self.crash_points
        if schedule is not None and schedule.should_crash("wal_append"):
            # A crash mid-append leaves a prefix of the framed bytes on
            # disk: the torn final record recovery must tolerate.
            self._file.write(line[: max(1, len(line) // 2)])
            self._file.flush()
            self.dead = True
            raise SimulatedCrash(
                "simulated crash during WAL append", site="wal_append"
            )
        self._file.write(line)
        self.appended += 1

    def mirror_line(self, line: bytes) -> None:
        """Append one already-framed line verbatim (the replica path).

        No crash-site consult and no re-framing: a replica's log must
        stay a byte prefix of the primary's, and the replica's ingest
        layer owns its own crash simulation (see :meth:`tear`).
        """
        if self.dead:
            return
        self._file.write(line)
        self.appended += 1

    def tear(self, line: bytes) -> None:
        """Simulate dying mid-append of ``line``: a torn prefix reaches
        the disk and the log is latched dead (replica kill support)."""
        if self.dead:
            return
        self._file.write(line[: max(1, len(line) // 2)])
        self._file.flush()
        self.dead = True

    def flush(self) -> None:
        if self.dead:
            return
        self.flushes += 1
        self._file.flush()
        self._mark_durable()

    def _mark_durable(self) -> None:
        """Publish the flushed frontier (never past a simulated death —
        a torn crash prefix is on disk but must not ship)."""
        if not self.dead:
            self.durable_offset = self._file.tell()
            self.durable_seq = self.appended

    def offset(self) -> int:
        """Current end-of-log byte offset (everything flushed first)."""
        self._file.flush()
        self._mark_durable()
        return self._file.tell()

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    # -- reading ------------------------------------------------------------

    def scan(
        self, from_offset: int = 0
    ) -> Tuple[List[Dict[str, Any]], int, bool]:
        """Decode records from ``from_offset`` to the end of the log.

        Returns ``(records, end_offset, torn_tail)`` where ``end_offset``
        is the offset just past the last intact record and ``torn_tail``
        reports whether trailing bytes past it had to be ignored.
        Corruption anywhere before the tail raises
        :class:`WALCorruptionError`.
        """
        self._file.flush()
        self._mark_durable()
        with open(self.path, "rb") as handle:
            handle.seek(from_offset)
            data = handle.read()
        records: List[Dict[str, Any]] = []
        offset = from_offset
        position = 0
        while position < len(data):
            newline = data.find(b"\n", position)
            if newline == -1:
                return records, offset, True  # unterminated tail
            line = data[position:newline]
            record = _decode_line(line)
            if record is None:
                # A bad record is crash-consistent only as the very last
                # line of the log.
                remainder = data[newline + 1 :]
                if remainder.strip(b"\n"):
                    raise WALCorruptionError(
                        f"WAL record at byte {offset} of {self.path} failed "
                        f"its CRC with further records after it"
                    )
                return records, offset, True
            records.append(record)
            position = newline + 1
            offset = from_offset + position
        return records, offset, False

    def truncate_to(self, offset: int) -> None:
        """Drop everything past ``offset`` (discarding a torn tail).

        The durable frontier is pulled back with the file: a shipper
        cursor past the new end now points at bytes that no longer
        exist, which its next pump detects as a full-resync condition
        rather than a silent gap.
        """
        self._file.flush()
        self._file.close()
        with open(self.path, "r+b") as handle:
            handle.truncate(offset)
        self._file = open(self.path, "ab")
        self.durable_offset = min(self.durable_offset, offset)

    def reset(self, epoch_sequence: int) -> None:
        """Compact: truncate to empty and stamp a new epoch record.

        Called by a compacting checkpoint *after* its image is
        installed.  The epoch record carries the checkpoint's sequence
        number, which is what makes compaction crash-safe without a
        cross-file atomic update: recovery trusts the checkpoint's
        recorded ``wal_offset`` unless the log *begins* with an epoch
        record naming that same checkpoint, in which case replay starts
        just past the marker (the log was compacted by the checkpoint it
        is being replayed against).  A crash before this call leaves the
        full log behind an image whose offset points at its end — also
        consistent.  The epoch write skips the crash-site consult: it is
        not a workload append, and simulated crashes fire only at the
        declared sites.
        """
        self._file.close()
        open(self.path, "wb").close()
        self._file = open(self.path, "ab")
        self._file.write(
            _frame({"op": "epoch", "sequence": epoch_sequence, "txn": None})
        )
        self._file.flush()
        self.appended += 1
        self.generation += 1
        self.durable_offset = self._file.tell()
        self.durable_seq = self.appended

    def head_record(self) -> Optional[Tuple[Dict[str, Any], int]]:
        """Decode the log's first framed record.

        Returns ``(record, end_offset)`` — the offset just past it — or
        None when the log is empty or its head is torn/corrupt.
        """
        self._file.flush()
        with open(self.path, "rb") as handle:
            head = handle.readline()
        if not head.endswith(b"\n"):
            return None
        record = _decode_line(head[:-1])
        if record is None:
            return None
        return record, len(head)

    def __repr__(self) -> str:
        return f"WriteAheadLog({self.path}, appended={self.appended})"


def _decode_line(line: bytes) -> Optional[Dict[str, Any]]:
    """One framed record, or None when the line is torn/corrupt."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        expected = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:]
    if zlib.crc32(payload) & 0xFFFFFFFF != expected:
        return None
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    return record if isinstance(record, dict) else None
