"""Durability: write-ahead logging, checkpoints, and crash recovery.

The engine is an in-memory storage simulation; this package gives it the
durability contract of a real one.  Every committed mutation is first
described by a *physiological* redo record — logical row content plus
the physical :class:`~repro.engine.row.RowId` it landed at — in a
CRC-framed write-ahead log.  A fuzzy checkpoint snapshots heap pages,
B-tree indexes, the system catalog, the soft-constraint registry
(including exception-AST bindings and confidence/currency state) and the
FeedbackStore; recovery replays the log's committed suffix from the last
checkpoint, verifies per-page checksums, rebuilds or quarantines indexes
that fail verification, and re-validates recovered ASCs against the
recovered data so an overturned soft constraint can never outlive a
crash.

Layout:

* :mod:`~repro.durability.codec` — deterministic JSON codecs + CRCs for
  every persisted structure;
* :mod:`~repro.durability.wal` — the log itself (append, scan,
  torn-tail handling);
* :mod:`~repro.durability.checkpoint` — atomic checkpoint write/load;
* :mod:`~repro.durability.manager` — the :class:`DurabilityManager`
  gluing logging hooks, checkpointing, and the recovery path together.
"""

from repro.durability.manager import DurabilityManager
from repro.durability.wal import WriteAheadLog

__all__ = ["DurabilityManager", "WriteAheadLog"]
