"""Checkpoint images: atomic write, CRC-verified load.

A checkpoint is one JSON document — the full serialized database state
plus the WAL byte offset it is consistent with — written to a temporary
file and installed with an atomic rename.  A crash at any point of the
write leaves either the previous checkpoint or the new one, never a
torn hybrid; recovery then replays the WAL from the installed image's
``wal_offset``.

File format::

    <crc32 hex of body, 8 chars>\\n
    <canonical JSON body>

The two durability crash points here are ``checkpoint_write`` (after
the tmp image is complete, before the rename — the previous checkpoint
must survive) and, upstream in the payload builders, ``page_flush`` /
``catalog_serialize`` (mid-serialization — no tmp rename ever happens).
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Dict, Optional

from repro.durability.codec import canonical_dumps
from repro.errors import WALCorruptionError
from repro.resilience.faults import CrashSchedule, SimulatedCrash

__all__ = ["write_checkpoint", "load_checkpoint"]


def write_checkpoint(
    path: Path,
    payload: Dict[str, Any],
    crash_points: Optional[CrashSchedule] = None,
) -> None:
    """Write ``payload`` to ``path`` via tmp-file + atomic rename."""
    path = Path(path)
    body = canonical_dumps(payload).encode("utf-8")
    header = b"%08x\n" % (zlib.crc32(body) & 0xFFFFFFFF)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(header)
        handle.write(body)
        handle.flush()
        os.fsync(handle.fileno())
    if crash_points is not None and crash_points.should_crash(
        "checkpoint_write"
    ):
        raise SimulatedCrash(
            "simulated crash before checkpoint rename", site="checkpoint_write"
        )
    os.replace(tmp, path)


def load_checkpoint(path: Path) -> Dict[str, Any]:
    """Load and CRC-verify a checkpoint image."""
    path = Path(path)
    raw = path.read_bytes()
    newline = raw.find(b"\n")
    if newline != 8:
        raise WALCorruptionError(f"malformed checkpoint header in {path}")
    try:
        expected = int(raw[:8], 16)
    except ValueError:
        raise WALCorruptionError(f"malformed checkpoint header in {path}")
    body = raw[9:]
    if zlib.crc32(body) & 0xFFFFFFFF != expected:
        raise WALCorruptionError(f"checkpoint body in {path} failed its CRC")
    payload = json.loads(body.decode("utf-8"))
    if not isinstance(payload, dict) or "wal_offset" not in payload:
        raise WALCorruptionError(f"checkpoint in {path} is not a valid image")
    return payload
