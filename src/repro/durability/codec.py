"""Deterministic serialization codecs for the durability layer.

Everything the WAL and checkpoints persist goes through this module, so
the on-disk encoding has a single definition.  The encoding is canonical
JSON — sorted keys, no whitespace — which makes every structure
CRC-stable: the same logical value always produces the same bytes, and
:func:`crc_of` over those bytes is the integrity check both the log
framing and the checkpoint loader use.

Values are restricted to the engine's scalar universe (int, float, str,
bool, None — dates are stored as int day counts by the type layer), so
JSON round-trips them exactly; rows come back as tuples, row ids as
:class:`~repro.engine.row.RowId`.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.constraints import (
    CheckConstraint,
    Constraint,
    ConstraintMode,
    ForeignKeyConstraint,
    NotNullConstraint,
    PrimaryKeyConstraint,
    UniqueConstraint,
)
from repro.engine.index import BTreeIndex
from repro.engine.page import Page
from repro.engine.row import RowId
from repro.engine.schema import Column, TableSchema
from repro.engine.types import SqlType
from repro.errors import WALCorruptionError
from repro.expr.eval import compile_predicate
from repro.softcon.base import SCState, SoftConstraint
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.currency import CurrencyModel
from repro.softcon.fd import FunctionalDependencySC
from repro.softcon.holes import JoinHolesSC, Rectangle
from repro.softcon.joinlinear import JoinLinearSC
from repro.softcon.linear import LinearCorrelationSC
from repro.softcon.maintenance import (
    AsyncRepairPolicy,
    DropPolicy,
    MaintenancePolicy,
    RepairPolicy,
)
from repro.softcon.minmax import MinMaxSC
from repro.sql.parser import parse_expression
from repro.sql.printer import sql_of

__all__ = [
    "canonical_dumps",
    "crc_of",
    "encode_row",
    "decode_row",
    "encode_rid",
    "decode_rid",
    "encode_schema",
    "decode_schema",
    "encode_page",
    "decode_page",
    "encode_index",
    "decode_index",
    "encode_constraint",
    "decode_constraint",
    "encode_soft_constraint",
    "decode_soft_constraint",
    "encode_policy",
    "decode_policy",
    "encode_currency",
    "decode_currency",
]


def canonical_dumps(value: Any) -> str:
    """Canonical JSON: sorted keys, minimal separators, CRC-stable."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def crc_of(value: Any) -> int:
    """CRC32 of the canonical encoding — the portable integrity check.

    (The engine's in-memory page/index checksums use Python ``hash``,
    which is salted per process for strings; anything that crosses a
    process boundary is guarded by this CRC instead, and the in-memory
    checksums are recomputed after load.)
    """
    return zlib.crc32(canonical_dumps(value).encode("utf-8")) & 0xFFFFFFFF


# -- rows and row ids -------------------------------------------------------


def encode_row(row: Tuple[Any, ...]) -> List[Any]:
    return list(row)


def decode_row(values: List[Any]) -> Tuple[Any, ...]:
    return tuple(values)


def encode_rid(rid: RowId) -> List[int]:
    return [rid.page_id, rid.slot_no]


def decode_rid(pair: List[int]) -> RowId:
    return RowId(pair[0], pair[1])


# -- schemas ----------------------------------------------------------------


def encode_schema(schema: TableSchema) -> Dict[str, Any]:
    return {
        "name": schema.name,
        "columns": [
            {
                "name": column.name,
                "kind": column.type.kind,
                "length": column.type.length,
                "nullable": column.nullable,
            }
            for column in schema.columns
        ],
    }


def decode_schema(state: Dict[str, Any]) -> TableSchema:
    columns = [
        Column(
            spec["name"],
            SqlType(spec["kind"], spec["length"]),
            nullable=spec["nullable"],
        )
        for spec in state["columns"]
    ]
    return TableSchema(state["name"], columns)


# -- heap pages -------------------------------------------------------------


def encode_page(page: Page) -> Dict[str, Any]:
    body = {
        "page_id": page.page_id,
        "slots": [
            None if slot is None else encode_row(slot) for slot in page.slots
        ],
        "slot_sizes": list(page.slot_sizes),
        "used_bytes": page.used_bytes,
    }
    body["crc"] = crc_of([body["slots"], body["slot_sizes"]])
    return body


def decode_page(state: Dict[str, Any]) -> Page:
    slots = [
        None if slot is None else decode_row(slot) for slot in state["slots"]
    ]
    if state.get("crc") != crc_of([state["slots"], state["slot_sizes"]]):
        raise WALCorruptionError(
            f"checkpoint page image {state.get('page_id')} failed its CRC"
        )
    page = Page(state["page_id"])
    page.slots = slots
    page.slot_sizes = list(state["slot_sizes"])
    page.used_bytes = state["used_bytes"]
    # In-memory XOR checksums are process-local (hash salting); rebuild.
    page.checksum = page.compute_checksum()
    return page


# -- B-tree indexes ---------------------------------------------------------


def encode_index(index: BTreeIndex) -> Dict[str, Any]:
    body = {
        "name": index.name,
        "table": index.table_name,
        "columns": list(index.column_names),
        "unique": index.unique,
        "quarantined": index.quarantined,
        "keys": [encode_row(key) for key in index._keys],
        "rids": [encode_rid(rid) for rid in index._rids],
    }
    body["crc"] = crc_of([body["keys"], body["rids"]])
    return body


def decode_index(
    state: Dict[str, Any], table_schema: TableSchema, counters: Any
) -> BTreeIndex:
    if state.get("crc") != crc_of([state["keys"], state["rids"]]):
        raise WALCorruptionError(
            f"checkpoint index image {state.get('name')!r} failed its CRC"
        )
    index = BTreeIndex(
        state["name"],
        table_schema,
        state["columns"],
        unique=state["unique"],
        counters=counters,
    )
    index.load_entries(
        [decode_row(key) for key in state["keys"]],
        [decode_rid(rid) for rid in state["rids"]],
        quarantined=state["quarantined"],
    )
    return index


# -- hard constraints -------------------------------------------------------


def encode_constraint(constraint: Constraint) -> Dict[str, Any]:
    state: Dict[str, Any] = {
        "kind": constraint.kind,
        "name": constraint.name,
        "table": constraint.table_name,
        "mode": constraint.mode.name,
    }
    if constraint.kind == "not_null":
        state["column"] = constraint.column_name
    elif constraint.kind in ("unique", "primary_key"):
        state["columns"] = list(constraint.column_names)
        state["backing_index"] = constraint.backing_index_name
    elif constraint.kind == "foreign_key":
        state["columns"] = list(constraint.column_names)
        state["parent_table"] = constraint.parent_table
        state["parent_columns"] = list(constraint.parent_columns)
    elif constraint.kind == "check":
        state["sql_text"] = constraint.sql_text or sql_of(
            constraint.expression
        )
    else:
        raise WALCorruptionError(
            f"cannot serialize constraint kind {constraint.kind!r}"
        )
    return state


def decode_constraint(state: Dict[str, Any]) -> Constraint:
    kind = state["kind"]
    mode = ConstraintMode[state["mode"]]
    name = state["name"]
    table = state["table"]
    if kind == "not_null":
        return NotNullConstraint(name, table, state["column"], mode)
    if kind in ("unique", "primary_key"):
        cls = PrimaryKeyConstraint if kind == "primary_key" else UniqueConstraint
        constraint = cls(name, table, state["columns"], mode)
        constraint.backing_index_name = state["backing_index"]
        return constraint
    if kind == "foreign_key":
        return ForeignKeyConstraint(
            name,
            table,
            state["columns"],
            state["parent_table"],
            state["parent_columns"],
            mode,
        )
    if kind == "check":
        expression = parse_expression(state["sql_text"])
        return CheckConstraint(
            name,
            table,
            compile_predicate(expression),
            expression,
            state["sql_text"],
            mode,
        )
    raise WALCorruptionError(f"cannot deserialize constraint kind {kind!r}")


# -- soft constraints -------------------------------------------------------


def encode_soft_constraint(sc: SoftConstraint) -> Dict[str, Any]:
    state: Dict[str, Any] = {
        "class": type(sc).__name__,
        "name": sc.name,
        "confidence": sc.confidence,
        "state": sc.state.value,
        "updates_since_verified": sc.updates_since_verified,
        "verified_epoch": sc.verified_epoch,
        "violation_count": sc.violation_count,
        "validity_version": sc.validity_version,
        "values_version": sc.values_version,
    }
    if isinstance(sc, MinMaxSC):
        state.update(
            table=sc.table_name, column=sc.column_name, low=sc.low,
            high=sc.high,
        )
    elif isinstance(sc, CheckSoftConstraint):
        state.update(table=sc.table_name, condition=sql_of(sc.expression))
    elif isinstance(sc, FunctionalDependencySC):
        state.update(
            table=sc.table_name,
            determinants=list(sc.determinants),
            dependents=list(sc.dependents),
        )
    elif isinstance(sc, LinearCorrelationSC):
        state.update(
            table=sc.table_name, column_a=sc.column_a, column_b=sc.column_b,
            slope=sc.slope, intercept=sc.intercept, epsilon=sc.epsilon,
        )
    elif isinstance(sc, JoinHolesSC):
        state.update(
            table_one=sc.table_one, column_a=sc.column_a,
            table_two=sc.table_two, column_b=sc.column_b,
            join_column_one=sc.join_column_one,
            join_column_two=sc.join_column_two,
            holes=[
                [hole.a_low, hole.a_high, hole.b_low, hole.b_high]
                for hole in sc.holes
            ],
        )
    elif isinstance(sc, JoinLinearSC):
        state.update(
            table_one=sc.path.table_one, column_a=sc.path.column_a,
            table_two=sc.path.table_two, column_b=sc.path.column_b,
            join_column_one=sc.path.join_column_one,
            join_column_two=sc.path.join_column_two,
            slope=sc.slope, intercept=sc.intercept, epsilon=sc.epsilon,
        )
    else:
        raise WALCorruptionError(
            f"cannot serialize soft constraint class {type(sc).__name__}"
        )
    return state


def decode_soft_constraint(state: Dict[str, Any]) -> SoftConstraint:
    cls_name = state["class"]
    name = state["name"]
    confidence = state["confidence"]
    if cls_name == "MinMaxSC":
        sc: SoftConstraint = MinMaxSC(
            name, state["table"], state["column"], state["low"],
            state["high"], confidence,
        )
    elif cls_name == "CheckSoftConstraint":
        sc = CheckSoftConstraint(
            name, state["table"], state["condition"], confidence
        )
    elif cls_name == "FunctionalDependencySC":
        sc = FunctionalDependencySC(
            name, state["table"], state["determinants"],
            state["dependents"], confidence,
        )
    elif cls_name == "LinearCorrelationSC":
        sc = LinearCorrelationSC(
            name, state["table"], state["column_a"], state["column_b"],
            state["slope"], state["intercept"], state["epsilon"], confidence,
        )
    elif cls_name == "JoinHolesSC":
        sc = JoinHolesSC(
            name, state["table_one"], state["column_a"], state["table_two"],
            state["column_b"], state["join_column_one"],
            state["join_column_two"],
            holes=[Rectangle(*hole) for hole in state["holes"]],
            confidence=confidence,
        )
    elif cls_name == "JoinLinearSC":
        sc = JoinLinearSC(
            name, state["table_one"], state["column_a"], state["table_two"],
            state["column_b"], state["join_column_one"],
            state["join_column_two"], state["slope"], state["intercept"],
            state["epsilon"], confidence,
        )
    else:
        raise WALCorruptionError(
            f"cannot deserialize soft constraint class {cls_name!r}"
        )
    sc.state = SCState(state["state"])
    sc.updates_since_verified = state["updates_since_verified"]
    sc.verified_epoch = state["verified_epoch"]
    sc.violation_count = state["violation_count"]
    sc.validity_version = state["validity_version"]
    sc.values_version = state["values_version"]
    return sc


# -- maintenance policies / currency ---------------------------------------


def encode_policy(policy: Optional[MaintenancePolicy]) -> Optional[Dict]:
    if policy is None:
        return None
    if isinstance(policy, AsyncRepairPolicy):
        return {
            "type": "AsyncRepairPolicy",
            "drop_threshold": policy.drop_threshold,
            "queue": [sc.name for sc in policy.queue],
        }
    if isinstance(policy, RepairPolicy):
        return {"type": "RepairPolicy"}
    if isinstance(policy, DropPolicy):
        return {"type": "DropPolicy"}
    # Unknown user-defined policy: fall back to the registry default.
    return None


def decode_policy(state: Optional[Dict]) -> Optional[MaintenancePolicy]:
    if state is None:
        return None
    if state["type"] == "AsyncRepairPolicy":
        return AsyncRepairPolicy(drop_threshold=state["drop_threshold"])
    if state["type"] == "RepairPolicy":
        return RepairPolicy()
    if state["type"] == "DropPolicy":
        return DropPolicy()
    return None


def encode_currency(model: Optional[CurrencyModel]) -> Optional[Dict]:
    if model is None:
        return None
    return {
        "row_count": model.row_count,
        "updates_seen": model.updates_seen,
        "total_updates": model.total_updates,
    }


def decode_currency(state: Optional[Dict]) -> Optional[CurrencyModel]:
    if state is None:
        return None
    model = CurrencyModel(state["row_count"])
    model.updates_seen = state["updates_seen"]
    model._total_updates = state["total_updates"]
    return model
