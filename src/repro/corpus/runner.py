"""The corpus runner: execute, measure, validate and classify every query.

For each :class:`~repro.corpus.generator.CorpusQuery` the runner executes
four configurations over one database:

* **SC-on** — the session's full optimizer (every constraint-driven
  rewrite armed), batched + compiled: the candidate;
* **SC-off** — :func:`repro.harness.runner.all_off`: the baseline;
* both again through a plan cache (the cached axis, isolating optimize
  cost from execution cost in the wall-clock ratios);
* the **oracle** — the row-at-a-time *interpreted* executor under the
  SC-off plan, an independently-implemented path the candidate's answers
  are validated against (row count + order-insensitive checksum).

Classification follows :mod:`repro.harness.classify`.  The status-bearing
ratio defaults to logical **page reads** (deterministic, so the CI gate
is noise-free); wall-clock ratios are recorded alongside.  A guard
truncation on either side tags the outcome ``vs_timeout_ceiling`` (or
``both_timeout``) — ceiling-bounded outcomes are excluded from measured
aggregates and skip validation (a truncated row set is not an answer).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from repro.api import SoftDB
from repro.errors import CatalogError, OptimizerError, SqlError
from repro.executor.runtime import ExecutionResult, Executor
from repro.harness.classify import (
    ERROR,
    FAIL,
    MEASURED,
    QueryOutcome,
    classify_speedup,
    qerror,
    speedup_type,
    summarize,
    validate_rows,
)
from repro.harness.runner import all_off
from repro.optimizer.planner import Optimizer, PlanCache
from repro.corpus.generator import CorpusQuery

#: Structural failures (parse / bind / plan) route to FAIL; SqlError
#: covers lex/parse/bind, CatalogError covers unknown tables/columns
#: surfaced during binding, OptimizerError covers planning.
_STRUCTURAL_ERRORS = (SqlError, CatalogError, OptimizerError)


class CorpusRunner:
    """Runs a corpus against one database, producing classified outcomes.

    Parameters
    ----------
    db:
        The populated session (soft constraints registered and ACTIVE
        for the SC-on side).
    metric:
        ``"pages"`` (default) classifies on the page-read ratio —
        deterministic, the CI-gated signal; ``"wall"`` classifies on the
        wall-clock ratio (querytorque's original contract, noisier).
    guard:
        Optional :class:`~repro.resilience.guards.QueryGuard` armed on
        the measured executions.  Use the ``"partial"`` breach policy:
        truncations are then tagged ceiling-bounded instead of raising.
    validate:
        Switch the oracle comparison off entirely (timing sweeps only).
    """

    def __init__(
        self,
        db: SoftDB,
        metric: str = "pages",
        guard: Optional[Any] = None,
        validate: bool = True,
    ) -> None:
        if metric not in ("pages", "wall"):
            raise ValueError(f"unknown metric {metric!r}")
        self.db = db
        self.metric = metric
        self.guard = guard
        self.validate = validate
        self.sc_on = db.optimizer
        self.sc_off = Optimizer(db.database, db.registry, all_off())
        # The oracle plans without any registry at all and interprets
        # row-at-a-time: maximum independence from the candidate path.
        self.oracle_optimizer = Optimizer(
            db.database,
            None,
            all_off(batch_size=0, compile_expressions=False),
        )
        self.oracle_executor = Executor(db.database, batch_size=0)
        self.executor = db.executor
        self.sc_on_cache = PlanCache(self.sc_on)
        self.sc_off_cache = PlanCache(self.sc_off)

    # -- per-query protocol ---------------------------------------------------

    def run_query(self, query: CorpusQuery) -> QueryOutcome:
        outcome = QueryOutcome(query.query_id, query.sql, query.family)
        try:
            candidate, candidate_s = self._measure(self.sc_on, query.sql)
            baseline, baseline_s = self._measure(self.sc_off, query.sql)
        except _STRUCTURAL_ERRORS as error:
            outcome.status = FAIL
            outcome.error = f"{type(error).__name__}: {error}"
            return outcome
        except Exception as error:  # execution-time failure
            outcome.status = ERROR
            outcome.error = f"{type(error).__name__}: {error}"
            return outcome
        plan = candidate.plan
        outcome.rewrites = list(plan.rewrites_applied)
        outcome.candidate_pages = candidate.result.page_reads
        outcome.baseline_pages = baseline.result.page_reads
        outcome.candidate_s = candidate_s
        outcome.baseline_s = baseline_s
        outcome.page_ratio = _ratio(
            baseline.result.page_reads, candidate.result.page_reads
        )
        outcome.wall_ratio = _wall_ratio(baseline_s, candidate_s)
        outcome.speedup_type = speedup_type(
            candidate.result.truncated, baseline.result.truncated
        )
        outcome.row_count = candidate.result.row_count
        if outcome.speedup_type != MEASURED:
            # Ceiling-bounded: the ratio is a bound, not a measurement,
            # and a truncated row set cannot be validated.
            outcome.speedup = (
                1.0
                if candidate.result.truncated and baseline.result.truncated
                else outcome.speedup_for(self.metric)
            )
            outcome.status = classify_speedup(outcome.speedup)
            return outcome
        outcome.qerror = qerror(
            plan.estimated_rows, candidate.result.row_count
        )
        outcome.speedup = outcome.speedup_for(self.metric)
        outcome.status = classify_speedup(outcome.speedup)
        if self.validate:
            self._validate(outcome, candidate.result, baseline.result)
        outcome.cached_wall_ratio = self._cached_ratio(query.sql)
        return outcome

    def run(
        self, queries: Sequence[CorpusQuery]
    ) -> List[QueryOutcome]:
        return [self.run_query(query) for query in queries]

    def run_and_summarize(
        self, queries: Sequence[CorpusQuery]
    ) -> Dict[str, Any]:
        outcomes = self.run(queries)
        return {
            "outcomes": outcomes,
            "summary": summarize(outcomes),
        }

    def columnar_axis(
        self, queries: Sequence[CorpusQuery], repetitions: int = 2
    ) -> Dict[str, Any]:
        """Wall-clock speedup of the columnar kernels across the corpus.

        Plans each query once through the SC-on optimizer and times pure
        execution (plan reused, so optimize cost is excluded) with the
        columnar kernels on vs off.  Page-read classification is
        untouched by this axis — both modes fetch the identical pages —
        so the result is reported alongside the corpus, not gated by it.
        """
        entries: List[Dict[str, Any]] = []
        total_columnar = 0.0
        total_list = 0.0
        for query in queries:
            try:
                plan = self.sc_on.optimize(query.sql)
                self.executor.execute(plan, columnar=True)  # warm-up
                columnar_s = min(
                    self._timed(plan, columnar=True)
                    for _ in range(repetitions)
                )
                list_s = min(
                    self._timed(plan, columnar=False)
                    for _ in range(repetitions)
                )
            except Exception as error:  # noqa: BLE001 - axis is advisory
                entries.append(
                    {
                        "query_id": query.query_id,
                        "error": f"{type(error).__name__}: {error}",
                    }
                )
                continue
            total_columnar += columnar_s
            total_list += list_s
            entries.append(
                {
                    "query_id": query.query_id,
                    "family": query.family,
                    "columnar_s": round(columnar_s, 5),
                    "list_batched_s": round(list_s, 5),
                    "speedup": round(_wall_ratio(list_s, columnar_s), 2),
                }
            )
        return {
            "queries": entries,
            "columnar_s": round(total_columnar, 4),
            "list_batched_s": round(total_list, 4),
            "speedup": round(_wall_ratio(total_list, total_columnar), 2),
        }

    # -- internals ------------------------------------------------------------

    def _timed(self, plan: Any, columnar: bool) -> float:
        start = time.perf_counter()
        self.executor.execute(plan, columnar=columnar)
        return time.perf_counter() - start

    def _measure(self, optimizer: Optimizer, sql: str):
        """Optimize + execute once; wall-clock covers both phases."""
        start = time.perf_counter()
        plan = optimizer.optimize(sql)
        result = self.executor.execute(plan, guard=self.guard)
        elapsed = time.perf_counter() - start
        return _Measured(plan, result), elapsed

    def _validate(
        self,
        outcome: QueryOutcome,
        candidate: ExecutionResult,
        baseline: ExecutionResult,
    ) -> None:
        try:
            oracle_plan = self.oracle_optimizer.optimize(outcome.sql)
            oracle = self.oracle_executor.execute(oracle_plan)
        except Exception as error:
            outcome.status = ERROR
            outcome.error = f"oracle: {type(error).__name__}: {error}"
            return
        validation = validate_rows(candidate.tuples(), oracle.tuples())
        outcome.validation = validation
        if not validation.ok or baseline.row_count != oracle.row_count:
            outcome.status = ERROR
            outcome.error = (
                "validation mismatch vs oracle "
                f"(candidate {candidate.row_count} rows, "
                f"baseline {baseline.row_count}, oracle {oracle.row_count})"
            )

    def _cached_ratio(self, sql: str) -> Optional[float]:
        """SC-off/SC-on wall ratio through the plan caches (second
        executions, optimize cost amortized away)."""
        try:
            on_s = self._cached_time(self.sc_on_cache, sql)
            off_s = self._cached_time(self.sc_off_cache, sql)
        except Exception:
            return None
        return _wall_ratio(off_s, on_s)

    def _cached_time(self, cache: PlanCache, sql: str) -> float:
        cache.get_plan(sql)  # populate outside the timed region
        start = time.perf_counter()
        self.executor.execute(cache.get_plan(sql))
        return time.perf_counter() - start


class _Measured:
    __slots__ = ("plan", "result")

    def __init__(self, plan: Any, result: ExecutionResult) -> None:
        self.plan = plan
        self.result = result


def _ratio(baseline: float, candidate: float) -> float:
    """baseline/candidate with both sides floored at one page, so empty
    scans (0 pages read) stay finite."""
    return max(baseline, 1.0) / max(candidate, 1.0)


def _wall_ratio(baseline_s: float, candidate_s: float) -> float:
    """baseline/candidate over seconds, floored at clock resolution."""
    return max(baseline_s, 1e-9) / max(candidate_s, 1e-9)


def run_corpus(
    db: SoftDB,
    queries: Sequence[CorpusQuery],
    metric: str = "pages",
    guard: Optional[Any] = None,
) -> Dict[str, Any]:
    """One-call convenience: run + summarize."""
    return CorpusRunner(db, metric=metric, guard=guard).run_and_summarize(
        queries
    )
