"""The TPC-style query corpus: 100+ generated queries over the warehouse.

Queries are emitted from family templates with constants sampled through
a seeded :class:`~repro.workload.datagen.DataGenerator`, so the corpus
text is a pure function of the seed (held by the determinism property
tests).  Families cover the dialect the engine speaks — selections
(point, range, IN, LIKE, IS NULL), multi-way joins in *both* syntaxes
(comma-WHERE and explicit JOIN ... ON), group-bys with HAVING, DISTINCT,
and ORDER BY / LIMIT top-k — and deliberately split into

* queries the planted characterizations should accelerate (ship-lag and
  charge-band predicate introduction, min/max abbreviation, habit-join
  elimination), and
* broad-coverage queries expected to be NEUTRAL, which is what makes the
  zero-REGRESSION gate meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.workload.datagen import DataGenerator
from repro.workload.schemas import YEAR_START
from repro.workload.tpc import (
    CATEGORIES,
    DATE_DAYS,
    PRICE_HIGH,
    PRICE_LOW,
    PRIORITIES,
    QUANTITY_HIGH,
    SEGMENTS,
    TOTAL_HIGH,
    TOTAL_LOW,
)


@dataclass(frozen=True)
class CorpusQuery:
    """One generated corpus query."""

    query_id: str
    family: str
    sql: str


class CorpusGenerator:
    """Deterministic corpus emission for one seed."""

    def __init__(self, seed: int = 0) -> None:
        self.generator = DataGenerator(seed)
        self.seed = seed

    # -- sampled constants ---------------------------------------------------

    def _day(self, margin: int = 40) -> int:
        """A day comfortably inside the populated two-year span."""
        return YEAR_START + self.generator.integer(
            margin, DATE_DAYS - margin
        )

    def _total(self) -> float:
        return round(
            self.generator.uniform(TOTAL_LOW + 500, TOTAL_HIGH - 500), 2
        )

    def _price_band(self, width_low: float, width_high: float):
        width = self.generator.uniform(width_low, width_high)
        low = self.generator.uniform(
            PRICE_LOW, PRICE_HIGH - width_high - 1.0
        )
        return round(low, 2), round(low + width, 2)

    # -- families ------------------------------------------------------------

    def generate(self) -> List[CorpusQuery]:
        """The full corpus, in a stable order with stable ids."""
        queries: List[CorpusQuery] = []

        def emit(family: str, sqls: Iterable[str]) -> None:
            for sql in sqls:
                queries.append(
                    CorpusQuery(f"q{len(queries) + 1:03d}", family, sql)
                )

        emit("sel_shipdate", self._ship_date_selections())
        emit("sel_charge", self._charge_band_selections())
        emit("sel_bounds", self._out_of_bounds_selections())
        emit("sel_misc", self._misc_selections())
        emit("join_habit", self._habit_joins())
        emit("join_multi", self._multiway_joins())
        emit("aggregate", self._aggregates())
        emit("topk", self._topk())
        emit("distinct", self._distinct())
        return queries

    def _ship_date_selections(self) -> List[str]:
        """Constrain ship_date only; the ship-lag ASC opens the
        order_date index."""
        sqls = []
        for _ in range(10):
            day = self._day()
            width = self.generator.choice([3, 7, 10, 14])
            sqls.append(
                f"SELECT id, total FROM orders "
                f"WHERE ship_date BETWEEN {day} AND {day + width}"
            )
        for _ in range(4):
            day = self._day()
            sqls.append(
                f"SELECT id, customer_id, total FROM orders "
                f"WHERE ship_date = {day}"
            )
        for _ in range(4):
            day = self._day()
            total = self._total()
            sqls.append(
                f"SELECT id, total FROM orders "
                f"WHERE ship_date BETWEEN {day} AND {day + 12} "
                f"AND total > {total}"
            )
        return sqls

    def _charge_band_selections(self) -> List[str]:
        """Constrain price only; the charge-band ASC opens the charge
        index (the lineitem heap is clustered on charge)."""
        sqls = []
        for _ in range(9):
            low, high = self._price_band(25.0, 70.0)
            sqls.append(
                f"SELECT id, quantity, price FROM lineitem "
                f"WHERE price BETWEEN {low} AND {high}"
            )
        for _ in range(5):
            low, high = self._price_band(15.0, 40.0)
            quantity = self.generator.integer(5, 40)
            sqls.append(
                f"SELECT id, price FROM lineitem "
                f"WHERE price BETWEEN {low} AND {high} "
                f"AND quantity >= {quantity}"
            )
        return sqls

    def _out_of_bounds_selections(self) -> List[str]:
        """Ranges outside the registered min/max bounds abbreviate to
        constant-FALSE scans (and exercise zero_row_unverified)."""
        beyond_total = round(TOTAL_HIGH + 500.0, 1)
        return [
            f"SELECT id FROM orders WHERE total > {TOTAL_HIGH + 1.0}",
            f"SELECT id FROM orders WHERE total < {TOTAL_LOW}",
            f"SELECT id, total FROM orders "
            f"WHERE total BETWEEN {beyond_total} AND {beyond_total + 400.0}",
            f"SELECT id FROM lineitem WHERE quantity > {QUANTITY_HIGH}",
            "SELECT id FROM lineitem WHERE quantity < 1",
            f"SELECT count(*) AS n FROM orders WHERE total > {TOTAL_HIGH + 1.0}",
            f"SELECT id FROM orders WHERE total > {beyond_total} "
            f"AND priority = 1",
            f"SELECT sum(price) AS s FROM lineitem "
            f"WHERE quantity > {QUANTITY_HIGH + 5}",
        ]

    def _misc_selections(self) -> List[str]:
        """Broad dialect coverage with no characterization to exploit —
        the NEUTRAL ballast of the corpus."""
        sqls = []
        for _ in range(3):
            segment = self.generator.integer(0, SEGMENTS - 1)
            sqls.append(
                f"SELECT id, name FROM customer WHERE segment = {segment}"
            )
        picks = sorted(
            {self.generator.integer(0, CATEGORIES - 1) for _ in range(3)}
        )
        sqls.append(
            "SELECT id, category FROM part "
            f"WHERE category IN ({', '.join(map(str, picks))})"
        )
        sqls.extend(
            [
                "SELECT id, name FROM customer WHERE name LIKE 'cust00%'",
                "SELECT id FROM customer WHERE balance IS NULL",
                "SELECT id, balance FROM customer "
                "WHERE balance IS NOT NULL AND balance < 0.0",
                "SELECT id FROM supplier WHERE rating >= 3",
                "SELECT id, size FROM part WHERE size BETWEEN 10 AND 20",
                "SELECT id FROM lineitem "
                "WHERE discount > 0.05 AND quantity < 10",
                "SELECT id, priority FROM orders "
                "WHERE priority <> 0 AND customer_id < 50",
                "SELECT id FROM part WHERE NOT (category = 0) AND size > 45",
            ]
        )
        for _ in range(3):
            day = self._day()
            sqls.append(
                f"SELECT id, ship_date FROM orders "
                f"WHERE order_date BETWEEN {day} AND {day + 10}"
            )
        return sqls

    def _habit_joins(self) -> List[str]:
        """Dimensions joined out of habit: only fact columns are used, so
        the informational FKs let join elimination drop the dimension.
        Every shape is emitted in both join syntaxes."""
        sqls = []
        for _ in range(3):
            total = self._total()
            sqls.append(
                "SELECT o.id, o.total FROM orders o, customer c "
                f"WHERE o.customer_id = c.id AND o.total > {total}"
            )
            sqls.append(
                "SELECT o.id, o.total FROM orders o "
                "JOIN customer c ON o.customer_id = c.id "
                f"WHERE o.total > {total}"
            )
        for _ in range(2):
            quantity = self.generator.integer(30, 45)
            sqls.append(
                "SELECT sum(l.price) AS s FROM lineitem l, part p "
                f"WHERE l.part_id = p.id AND l.quantity > {quantity}"
            )
            sqls.append(
                "SELECT sum(l.price) AS s FROM lineitem l "
                "INNER JOIN part p ON l.part_id = p.id "
                f"WHERE l.quantity > {quantity}"
            )
        day = self._day()
        sqls.append(
            "SELECT o.id, o.total FROM orders o, customer c "
            f"WHERE o.customer_id = c.id AND o.ship_date BETWEEN {day} "
            f"AND {day + 14}"
        )
        sqls.append(
            "SELECT o.id, o.total FROM orders o "
            "JOIN customer c ON o.customer_id = c.id "
            f"WHERE o.ship_date BETWEEN {day} AND {day + 14}"
        )
        return sqls

    def _multiway_joins(self) -> List[str]:
        """Joins whose dimension columns are genuinely used (no
        elimination), two- to four-way, in both syntaxes."""
        sqls = []
        for _ in range(2):
            day = self._day()
            sqls.append(
                "SELECT c.segment, sum(o.total) AS revenue "
                "FROM orders o, customer c "
                f"WHERE o.customer_id = c.id AND o.ship_date BETWEEN {day} "
                f"AND {day + 20} GROUP BY c.segment"
            )
            sqls.append(
                "SELECT c.segment, sum(o.total) AS revenue "
                "FROM orders o JOIN customer c ON o.customer_id = c.id "
                f"WHERE o.ship_date BETWEEN {day} AND {day + 20} "
                "GROUP BY c.segment"
            )
        for _ in range(2):
            category = self.generator.integer(0, CATEGORIES - 1)
            sqls.append(
                "SELECT p.category, count(*) AS n "
                "FROM lineitem l, part p "
                f"WHERE l.part_id = p.id AND p.category = {category} "
                "GROUP BY p.category"
            )
        quantity = self.generator.integer(20, 40)
        sqls.append(
            "SELECT s.rating, sum(l.price) AS total_price "
            "FROM lineitem l JOIN supplier s ON l.supplier_id = s.id "
            f"WHERE l.quantity > {quantity} GROUP BY s.rating"
        )
        day = self._day()
        sqls.append(
            "SELECT c.segment, count(*) AS n "
            "FROM lineitem l, orders o, customer c "
            "WHERE l.order_id = o.id AND o.customer_id = c.id "
            f"AND o.ship_date BETWEEN {day} AND {day + 10} "
            "GROUP BY c.segment"
        )
        sqls.append(
            "SELECT c.segment, count(*) AS n "
            "FROM lineitem l "
            "JOIN orders o ON l.order_id = o.id "
            "JOIN customer c ON o.customer_id = c.id "
            f"WHERE o.ship_date BETWEEN {day} AND {day + 10} "
            "GROUP BY c.segment"
        )
        category = self.generator.integer(0, CATEGORIES - 1)
        sqls.append(
            "SELECT s.nation_id, p.category, sum(l.price) AS revenue "
            "FROM lineitem l "
            "JOIN part p ON l.part_id = p.id "
            "JOIN supplier s ON l.supplier_id = s.id "
            f"WHERE p.category = {category} "
            "GROUP BY s.nation_id, p.category"
        )
        sqls.append(
            "SELECT p.category, avg(o.total) AS avg_total "
            "FROM lineitem l, part p, orders o "
            "WHERE l.part_id = p.id AND l.order_id = o.id "
            "AND l.discount > 0.08 GROUP BY p.category"
        )
        return sqls

    def _aggregates(self) -> List[str]:
        sqls = []
        for _ in range(3):
            day = self._day()
            sqls.append(
                "SELECT priority, count(*) AS n, avg(total) AS avg_total "
                f"FROM orders WHERE ship_date BETWEEN {day} AND {day + 25} "
                "GROUP BY priority"
            )
        for _ in range(2):
            low, high = self._price_band(60.0, 120.0)
            sqls.append(
                "SELECT quantity, sum(charge) AS total_charge "
                f"FROM lineitem WHERE price BETWEEN {low} AND {high} "
                "GROUP BY quantity"
            )
        sqls.extend(
            [
                "SELECT segment, count(*) AS n, min(balance) AS lo, "
                "max(balance) AS hi FROM customer GROUP BY segment",
                "SELECT nation_id, count(*) AS n FROM supplier "
                "GROUP BY nation_id HAVING count(*) > 1",
                "SELECT category, avg(retail_price) AS avg_price "
                "FROM part GROUP BY category "
                "HAVING avg(retail_price) > 300.0",
                "SELECT count(*) AS n, sum(total) AS s, avg(total) AS a "
                "FROM orders",
                "SELECT count(distinct priority) AS priorities FROM orders",
                "SELECT max(charge) AS worst FROM lineitem "
                "WHERE quantity = 25",
            ]
        )
        for _ in range(3):
            priority = self.generator.integer(0, PRIORITIES - 1)
            sqls.append(
                "SELECT customer_id, count(*) AS n FROM orders "
                f"WHERE priority = {priority} GROUP BY customer_id "
                "HAVING count(*) >= 3"
            )
        return sqls

    def _topk(self) -> List[str]:
        sqls = []
        for _ in range(3):
            day = self._day()
            limit = self.generator.choice([5, 10, 20])
            sqls.append(
                f"SELECT id, total FROM orders "
                f"WHERE ship_date BETWEEN {day} AND {day + 15} "
                f"ORDER BY total DESC LIMIT {limit}"
            )
        for _ in range(2):
            low, high = self._price_band(40.0, 90.0)
            sqls.append(
                f"SELECT id, price, charge FROM lineitem "
                f"WHERE price BETWEEN {low} AND {high} "
                f"ORDER BY charge DESC, id ASC LIMIT 15"
            )
        sqls.extend(
            [
                "SELECT id, balance FROM customer "
                "WHERE balance IS NOT NULL ORDER BY balance ASC LIMIT 10",
                "SELECT id, retail_price FROM part "
                "ORDER BY retail_price DESC, id ASC LIMIT 8",
                "SELECT o.id, o.total FROM orders o, customer c "
                "WHERE o.customer_id = c.id "
                "ORDER BY o.total DESC, o.id ASC LIMIT 12",
            ]
        )
        return sqls

    def _distinct(self) -> List[str]:
        return [
            "SELECT DISTINCT segment FROM customer",
            "SELECT DISTINCT priority FROM orders WHERE total > 5000.0",
            "SELECT DISTINCT category, size FROM part WHERE size > 40",
            "SELECT DISTINCT nation_id FROM supplier WHERE rating >= 2",
            "SELECT DISTINCT c.segment FROM orders o "
            "JOIN customer c ON o.customer_id = c.id "
            "WHERE o.priority = 0",
            "SELECT DISTINCT quantity FROM lineitem WHERE discount < 0.01",
        ]


def generate_corpus(seed: int = 0) -> List[CorpusQuery]:
    """The corpus for one seed (stable ids ``q001..``)."""
    return CorpusGenerator(seed).generate()


def corpus_text(queries: Iterable[CorpusQuery]) -> str:
    """Canonical one-query-per-line rendering (determinism fingerprint)."""
    return "\n".join(
        f"{query.query_id} [{query.family}] {query.sql}" for query in queries
    )
