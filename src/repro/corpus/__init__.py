"""The TPC-style corpus and its WIN/REGRESSION classification harness.

``repro.corpus`` is the standing correctness-and-quality instrument of
the repository: a 100+ query corpus generated over the TPC-flavored
warehouse (:mod:`repro.workload.tpc`), executed under SC-on vs SC-off
(and cached vs uncached) configurations, validated per query against the
row-at-a-time interpreted oracle, and classified per the
WIN/IMPROVED/NEUTRAL/REGRESSION contract of
:mod:`repro.harness.classify`.  ``benchmarks/bench_e15_corpus.py`` runs
it end to end and records ``BENCH_e15.json`` for the CI regression gate.
"""

from repro.corpus.generator import (
    CorpusGenerator,
    CorpusQuery,
    corpus_text,
    generate_corpus,
)
from repro.corpus.runner import CorpusRunner, run_corpus

__all__ = [
    "CorpusGenerator",
    "CorpusQuery",
    "CorpusRunner",
    "corpus_text",
    "generate_corpus",
    "run_corpus",
]
