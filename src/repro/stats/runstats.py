"""RUNSTATS: collect table and column statistics into the catalog.

:func:`runstats` scans a table once and produces a :class:`TableStats`
holding, per column: null count, distinct count, low/high values, top-k
frequent values, and (for ordered domains) an equi-depth histogram.  The
statistics carry a logical *collection epoch* — a monotonically increasing
counter of statements run against the database is unavailable, so the
caller may pass its own epoch (the soft-constraint currency model in
:mod:`repro.softcon.currency` uses simulated days).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.engine.database import Database
from repro.engine.schema import TableSchema
from repro.stats.frequent import FrequentValues
from repro.stats.histogram import EquiDepthHistogram


class ColumnStats:
    """Statistics for one column."""

    def __init__(
        self,
        column_name: str,
        row_count: int,
        null_count: int,
        distinct_count: int,
        low: Any = None,
        high: Any = None,
        frequent: Optional[FrequentValues] = None,
        histogram: Optional[EquiDepthHistogram] = None,
    ) -> None:
        self.column_name = column_name
        self.row_count = row_count
        self.null_count = null_count
        self.distinct_count = distinct_count
        self.low = low
        self.high = high
        self.frequent = frequent
        self.histogram = histogram

    @property
    def non_null_count(self) -> int:
        return self.row_count - self.null_count

    @property
    def null_fraction(self) -> float:
        if self.row_count == 0:
            return 0.0
        return self.null_count / self.row_count

    def __repr__(self) -> str:
        return (
            f"ColumnStats({self.column_name}: rows={self.row_count}, "
            f"nulls={self.null_count}, distinct={self.distinct_count}, "
            f"range={self.low!r}..{self.high!r})"
        )


class VirtualColumnStats(ColumnStats):
    """Statistics over a *derived expression* (paper Section 5.1's second
    mechanism: virtual columns).

    ``expression`` is the defining scalar expression over the table's
    (bare-named) columns — e.g. ``end_date - start_date``.  The estimator
    matches query predicates whose left side equals this expression and
    prices them with the virtual histogram.
    """

    def __init__(self, expression: Any, sql_text: str, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.expression = expression
        self.sql_text = sql_text

    def __repr__(self) -> str:
        return (
            f"VirtualColumnStats({self.column_name} = {self.sql_text}: "
            f"rows={self.row_count}, distinct={self.distinct_count})"
        )


class TableStats:
    """Statistics for one table (rows, pages, per-column stats).

    ``virtual`` holds statistics over derived expressions (virtual
    columns), keyed by the virtual column's name.
    """

    def __init__(
        self,
        table_name: str,
        row_count: int,
        page_count: int,
        columns: Dict[str, ColumnStats],
        epoch: int = 0,
    ) -> None:
        self.table_name = table_name
        self.row_count = row_count
        self.page_count = page_count
        self.columns = columns
        self.virtual: Dict[str, VirtualColumnStats] = {}
        self.epoch = epoch
        # Raised when the table's physical layout changed under these
        # stats (e.g. an index rebuild); RUNSTATS clears it by replacing
        # the whole object.
        self.stale = False

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name.lower())

    def virtual_columns(self) -> List[VirtualColumnStats]:
        return list(self.virtual.values())

    def __repr__(self) -> str:
        return (
            f"TableStats({self.table_name}: rows={self.row_count}, "
            f"pages={self.page_count}, columns={sorted(self.columns)})"
        )


def runstats(
    database: Database,
    table_name: str,
    num_buckets: int = 20,
    num_frequent: int = 10,
    epoch: int = 0,
    store: bool = True,
) -> TableStats:
    """Collect statistics for a table; optionally store them in the catalog.

    Histograms are built for every ordered column type; frequent values
    for every column.  The scan's page reads are counted like any other
    access (RUNSTATS costs I/O in real systems too).
    """
    table = database.table(table_name)
    schema: TableSchema = table.schema
    column_values: Dict[str, List[Any]] = {
        column.name: [] for column in schema.columns
    }
    null_counts: Dict[str, int] = {column.name: 0 for column in schema.columns}
    row_count = 0
    for row in table.scan_rows():
        row_count += 1
        for column, value in zip(schema.columns, row):
            if value is None:
                null_counts[column.name] += 1
            else:
                column_values[column.name].append(value)

    columns: Dict[str, ColumnStats] = {}
    for column in schema.columns:
        values = column_values[column.name]
        histogram = None
        if values and column.type.is_ordered:
            histogram = EquiDepthHistogram.build(values, num_buckets)
        frequent = FrequentValues.build(values, num_frequent)
        distinct = len(set(values))
        columns[column.name] = ColumnStats(
            column_name=column.name,
            row_count=row_count,
            null_count=null_counts[column.name],
            distinct_count=distinct,
            low=min(values) if values else None,
            high=max(values) if values else None,
            frequent=frequent,
            histogram=histogram,
        )

    stats = TableStats(
        table_name=schema.name,
        row_count=row_count,
        page_count=table.page_count,
        columns=columns,
        epoch=epoch,
    )
    if store:
        database.catalog.set_statistics(schema.name, stats)
    return stats


def runstats_virtual(
    database: Database,
    table_name: str,
    virtual_name: str,
    expression: Any,
    num_buckets: int = 20,
    num_frequent: int = 10,
) -> VirtualColumnStats:
    """Collect statistics over a derived expression (a *virtual column*).

    Paper Section 5.1's second mechanism for conveying SSC-like
    information to the optimizer: "combine multiple SSCs in virtual
    columns where the distribution statistics on the virtual column can be
    broken down into the individual SSCs."  E.g. a virtual column
    ``duration = end_date - start_date`` gives the estimator an exact
    histogram for predicates like ``end_date - start_date <= 5``.

    ``expression`` may be SQL text or a parsed expression over the
    table's bare column names.  The base table must already have RUNSTATS
    (the virtual stats attach to its :class:`TableStats`).
    """
    from repro.expr.eval import evaluate
    from repro.sql.parser import parse_expression
    from repro.sql.printer import sql_of

    if isinstance(expression, str):
        parsed = parse_expression(expression)
    else:
        parsed = expression
    stats = database.catalog.statistics(table_name)
    if stats is None:
        stats = runstats(database, table_name)
    table = database.table(table_name)
    names = table.schema.column_names()
    values = []
    null_count = 0
    row_count = 0
    for row in table.scan_rows():
        row_count += 1
        value = evaluate(parsed, dict(zip(names, row)))
        if value is None:
            null_count += 1
        else:
            values.append(value)
    histogram = EquiDepthHistogram.build(values, num_buckets) if values else None
    frequent = FrequentValues.build(values, num_frequent)
    virtual = VirtualColumnStats(
        expression=parsed,
        sql_text=sql_of(parsed),
        column_name=virtual_name.lower(),
        row_count=row_count,
        null_count=null_count,
        distinct_count=len(set(values)),
        low=min(values) if values else None,
        high=max(values) if values else None,
        frequent=frequent,
        histogram=histogram,
    )
    stats.virtual[virtual.column_name] = virtual
    return virtual
