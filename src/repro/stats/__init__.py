"""Catalog statistics: RUNSTATS collection, histograms, frequent values,
and selectivity estimation — the raw material of cardinality estimation
(paper Section 5: "Commercial database systems like DB2 keep various
statistics of the data within columns ... the number of distinct values,
high and low values, frequency and histogram statistics").
"""

from repro.stats.histogram import EquiDepthHistogram
from repro.stats.frequent import FrequentValues
from repro.stats.runstats import (
    ColumnStats,
    TableStats,
    VirtualColumnStats,
    runstats,
    runstats_virtual,
)
from repro.stats.selectivity import SelectivityEstimator
from repro.stats.errors import q_error, relative_error

__all__ = [
    "ColumnStats",
    "EquiDepthHistogram",
    "FrequentValues",
    "SelectivityEstimator",
    "TableStats",
    "VirtualColumnStats",
    "q_error",
    "relative_error",
    "runstats",
    "runstats_virtual",
]
