"""Equi-depth histograms over ordered column values.

An equi-depth (equi-height) histogram splits the sorted non-NULL values of
a column into buckets holding roughly equal row counts.  Range selectivity
is estimated by summing fully-covered buckets and linearly interpolating in
partially-covered ones — the standard assumption of uniformity within a
bucket.
"""

from __future__ import annotations

import bisect
from typing import Any, List, Optional, Sequence

from repro.expr.intervals import Interval


class Bucket:
    """One histogram bucket: values in (low, high], with ``high`` included.

    The first bucket also includes its low bound.  ``distinct`` is the
    number of distinct values observed in the bucket (used for equality
    estimates inside a bucket).
    """

    __slots__ = ("low", "high", "count", "distinct")

    def __init__(self, low: Any, high: Any, count: int, distinct: int) -> None:
        self.low = low
        self.high = high
        self.count = count
        self.distinct = distinct

    def __repr__(self) -> str:
        return f"Bucket({self.low!r}..{self.high!r}, n={self.count}, d={self.distinct})"


class EquiDepthHistogram:
    """Equi-depth histogram built from a sample or full column scan."""

    def __init__(self, buckets: List[Bucket], total_count: int) -> None:
        self.buckets = buckets
        self.total_count = total_count
        self._highs = [bucket.high for bucket in buckets]

    # -- construction -----------------------------------------------------

    @classmethod
    def build(
        cls, values: Sequence[Any], num_buckets: int = 20
    ) -> Optional["EquiDepthHistogram"]:
        """Build from non-NULL values; returns None for an empty column.

        ``values`` need not be sorted; NULLs must already be filtered out.
        """
        if not values:
            return None
        ordered = sorted(values)
        total = len(ordered)
        num_buckets = max(1, min(num_buckets, total))
        target = total / num_buckets
        buckets: List[Bucket] = []
        start = 0
        for bucket_no in range(num_buckets):
            end = round((bucket_no + 1) * target)
            end = min(max(end, start + 1), total)
            # Extend to include all duplicates of the boundary value so a
            # value never straddles two buckets.
            while end < total and ordered[end] == ordered[end - 1]:
                end += 1
            if start >= total:
                break
            chunk = ordered[start:end]
            distinct = 1
            for left, right in zip(chunk, chunk[1:]):
                if left != right:
                    distinct += 1
            buckets.append(Bucket(chunk[0], chunk[-1], len(chunk), distinct))
            start = end
        return cls(buckets, total)

    # -- estimation ----------------------------------------------------------

    @property
    def low(self) -> Any:
        return self.buckets[0].low

    @property
    def high(self) -> Any:
        return self.buckets[-1].high

    def equality_fraction(self, value: Any) -> float:
        """Estimated fraction of (non-NULL) rows equal to ``value``."""
        bucket = self._bucket_for(value)
        if bucket is None:
            return 0.0
        share = bucket.count / max(1, bucket.distinct)
        return share / self.total_count

    def range_fraction(self, interval: Interval) -> float:
        """Estimated fraction of (non-NULL) rows inside ``interval``."""
        if interval.is_empty or self.total_count == 0:
            return 0.0
        covered = 0.0
        for bucket in self.buckets:
            covered += self._bucket_overlap(bucket, interval)
        return min(1.0, covered / self.total_count)

    def _bucket_for(self, value: Any) -> Optional[Bucket]:
        if value is None or not self.buckets:
            return None
        if value < self.buckets[0].low or value > self.buckets[-1].high:
            return None
        at = bisect.bisect_left(self._highs, value)
        if at >= len(self.buckets):
            return None
        return self.buckets[at]

    def _bucket_overlap(self, bucket: Bucket, interval: Interval) -> float:
        """Estimated number of the bucket's rows falling in ``interval``."""
        bucket_interval = Interval(bucket.low, bucket.high)
        if not bucket_interval.overlaps(interval):
            return 0.0
        if interval.contains_interval(bucket_interval):
            return float(bucket.count)
        clipped = bucket_interval.intersect(interval)
        width = bucket_interval.width()
        clipped_width = clipped.width()
        if not width or clipped_width is None:
            # Single-valued bucket or non-numeric domain: all-or-nothing on
            # the bucket midpoint.
            return float(bucket.count) if clipped.contains(bucket.low) else 0.0
        fraction = max(0.0, min(1.0, clipped_width / width))
        if fraction == 0.0 and not clipped.is_empty:
            # A point overlap inside the bucket: one distinct value's share.
            fraction = 1.0 / max(1, bucket.distinct)
        return bucket.count * fraction

    def __repr__(self) -> str:
        return (
            f"EquiDepthHistogram(buckets={len(self.buckets)}, "
            f"rows={self.total_count}, range={self.low!r}..{self.high!r})"
        )
