"""Single-table selectivity estimation from catalog statistics.

:class:`SelectivityEstimator` answers "what fraction of this table's rows
satisfy this predicate?" using the column statistics collected by RUNSTATS:
frequent values for equality on tracked values, histograms for ranges, and
distinct counts otherwise.  Predicates over columns the estimator has no
statistics for fall back to the classic System-R default constants.

Conjunctions multiply selectivities — the *independence assumption* whose
failure on correlated columns is exactly what the paper's statistical soft
constraints repair (Section 5.1).  The SSC-aware combination lives in
:mod:`repro.optimizer.cardinality`; this module is deliberately SSC-blind
so experiments can compare the two.
"""

from __future__ import annotations

from typing import Optional

from repro.expr import analysis
from repro.expr.intervals import Interval
from repro.sql import ast
from repro.stats.runstats import ColumnStats, TableStats

DEFAULT_EQUALITY_SELECTIVITY = 0.04
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_OTHER_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.1


class SelectivityEstimator:
    """Estimates predicate selectivity against one table's statistics."""

    def __init__(self, stats: Optional[TableStats]) -> None:
        self.stats = stats

    # -- public API --------------------------------------------------------

    def selectivity(self, expression: Optional[ast.Expression]) -> float:
        """Fraction of rows satisfying ``expression`` (1.0 for None)."""
        if expression is None:
            return 1.0
        return self._estimate(expression)

    def interval_fraction(
        self, column_name: str, interval: Interval
    ) -> float:
        """Fraction of rows whose column value lies in ``interval``."""
        column = self._column(column_name)
        if column is None:
            return DEFAULT_RANGE_SELECTIVITY
        if interval.is_empty:
            return 0.0
        if interval.is_unbounded:
            return 1.0 - column.null_fraction
        if interval.is_point:
            return self._equality(column, interval.low)
        if column.histogram is not None:
            fraction = column.histogram.range_fraction(interval)
            return fraction * (1.0 - column.null_fraction)
        return DEFAULT_RANGE_SELECTIVITY

    # -- dispatch -------------------------------------------------------------

    def _estimate(self, node: ast.Expression) -> float:
        if isinstance(node, ast.BinaryOp):
            if node.op == "and":
                return self._estimate(node.left) * self._estimate(node.right)
            if node.op == "or":
                left = self._estimate(node.left)
                right = self._estimate(node.right)
                return min(1.0, left + right - left * right)
            if node.op == "like":
                return DEFAULT_LIKE_SELECTIVITY
            return self._comparison(node)
        if isinstance(node, ast.UnaryOp) and node.op == "not":
            return max(0.0, 1.0 - self._estimate(node.operand))
        if isinstance(node, ast.BetweenExpr):
            return self._between(node)
        if isinstance(node, ast.InExpr):
            return self._in_list(node)
        if isinstance(node, ast.IsNullExpr):
            return self._is_null(node)
        if isinstance(node, ast.Literal):
            if node.value is True:
                return 1.0
            if node.value in (False, None):
                return 0.0
        return DEFAULT_OTHER_SELECTIVITY

    # -- leaf predicates ---------------------------------------------------------

    def _comparison(self, node: ast.BinaryOp) -> float:
        match = analysis.match_column_comparison(node)
        if match is None:
            virtual = self._virtual_comparison(node)
            if virtual is not None:
                return virtual
            return DEFAULT_OTHER_SELECTIVITY
        column = self._column(match.column.column)
        if column is None or match.value is None:
            return (
                DEFAULT_EQUALITY_SELECTIVITY
                if match.op == "="
                else DEFAULT_RANGE_SELECTIVITY
            )
        if match.op == "=":
            return self._equality(column, match.value)
        if match.op == "<>":
            return max(0.0, (1.0 - column.null_fraction) - self._equality(column, match.value))
        interval = analysis.interval_of_predicate(node, match.column)
        if interval is None:
            return DEFAULT_RANGE_SELECTIVITY
        return self.interval_fraction(match.column.column, interval)

    def _between(self, node: ast.BetweenExpr) -> float:
        # Match structurally (match_column_between rejects negated forms;
        # here the negation is handled explicitly below).
        if not (
            isinstance(node.operand, ast.ColumnRef)
            and analysis.is_constant(node.low)
            and analysis.is_constant(node.high)
        ):
            virtual = self._virtual_between(node)
            if virtual is not None:
                return virtual
            return DEFAULT_RANGE_SELECTIVITY
        column_ref = node.operand
        low = analysis.constant_value(node.low)
        high = analysis.constant_value(node.high)
        fraction = self.interval_fraction(
            column_ref.column, Interval(low, high)
        )
        if node.negated:
            column = self._column(column_ref.column)
            non_null = 1.0 if column is None else 1.0 - column.null_fraction
            return max(0.0, non_null - fraction)
        return fraction

    def _in_list(self, node: ast.InExpr) -> float:
        match = analysis.match_column_in(node)
        if match is None:
            return DEFAULT_OTHER_SELECTIVITY
        column_ref, values = match
        column = self._column(column_ref.column)
        if column is None:
            total = DEFAULT_EQUALITY_SELECTIVITY * len(values)
        else:
            total = sum(
                self._equality(column, value)
                for value in values
                if value is not None
            )
        total = min(1.0, total)
        if node.negated:
            non_null = 1.0 if column is None else 1.0 - column.null_fraction
            return max(0.0, non_null - total)
        return total

    def _is_null(self, node: ast.IsNullExpr) -> float:
        if not isinstance(node.operand, ast.ColumnRef):
            return DEFAULT_OTHER_SELECTIVITY
        column = self._column(node.operand.column)
        if column is None:
            return DEFAULT_OTHER_SELECTIVITY
        fraction = column.null_fraction
        return 1.0 - fraction if node.negated else fraction

    # -- helpers ----------------------------------------------------------------

    def _column(self, name: str) -> Optional[ColumnStats]:
        if self.stats is None:
            return None
        return self.stats.column(name)

    def _equality(self, column: ColumnStats, value: object) -> float:
        if column.row_count == 0:
            return 0.0
        if column.low is not None and column.high is not None:
            try:
                if value < column.low or value > column.high:  # type: ignore[operator]
                    return 0.0
            except TypeError:
                pass
        non_null_share = 1.0 - column.null_fraction
        if column.frequent is not None:
            return column.frequent.equality_fraction(value) * non_null_share
        if column.histogram is not None:
            return column.histogram.equality_fraction(value) * non_null_share
        if column.distinct_count > 0:
            return non_null_share / column.distinct_count
        return DEFAULT_EQUALITY_SELECTIVITY

    # -- virtual columns (paper Section 5.1, second mechanism) ---------------

    def _find_virtual(self, lhs: ast.Expression):
        """The virtual column whose defining expression matches ``lhs``."""
        if self.stats is None or not getattr(self.stats, "virtual", None):
            return None
        bare = analysis.strip_qualifiers(lhs)
        for virtual in self.stats.virtual.values():
            if virtual.expression == bare:
                return virtual
        return None

    def _virtual_comparison(self, node: ast.BinaryOp) -> Optional[float]:
        """Estimate ``<derived-expr> op const`` from virtual-column stats."""
        match = analysis.match_expression_comparison(node)
        if match is None:
            return None
        lhs, op, value = match
        virtual = self._find_virtual(lhs)
        if virtual is None or value is None:
            return None
        non_null = 1.0 - virtual.null_fraction
        if op == "=":
            if virtual.histogram is None:
                return None
            return virtual.histogram.equality_fraction(value) * non_null
        if op == "<>":
            if virtual.histogram is None:
                return None
            return max(
                0.0,
                non_null
                - virtual.histogram.equality_fraction(value) * non_null,
            )
        interval = {
            "<": Interval.at_most(value, inclusive=False),
            "<=": Interval.at_most(value),
            ">": Interval.at_least(value, inclusive=False),
            ">=": Interval.at_least(value),
        }.get(op)
        if interval is None or virtual.histogram is None:
            return None
        return virtual.histogram.range_fraction(interval) * non_null

    def _virtual_between(self, node: ast.BetweenExpr) -> Optional[float]:
        if not (
            analysis.is_constant(node.low) and analysis.is_constant(node.high)
        ):
            return None
        virtual = self._find_virtual(node.operand)
        if virtual is None or virtual.histogram is None:
            return None
        low = analysis.constant_value(node.low)
        high = analysis.constant_value(node.high)
        non_null = 1.0 - virtual.null_fraction
        fraction = virtual.histogram.range_fraction(Interval(low, high))
        fraction *= non_null
        if node.negated:
            return max(0.0, non_null - fraction)
        return fraction
