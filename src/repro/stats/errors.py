"""Estimation-error metrics used by the cardinality experiments (E5).

The *q-error* is the standard metric for cardinality estimation quality:
``max(est/actual, actual/est)`` with both sides clamped to at least 1 row.
A q-error of 1.0 is a perfect estimate.
"""

from __future__ import annotations


def q_error(estimate: float, actual: float) -> float:
    """Multiplicative estimation error, >= 1.0 (1.0 is perfect)."""
    est = max(1.0, float(estimate))
    act = max(1.0, float(actual))
    return max(est / act, act / est)


def relative_error(estimate: float, actual: float) -> float:
    """Signed relative error ``(est - actual) / max(actual, 1)``."""
    return (float(estimate) - float(actual)) / max(float(actual), 1.0)
