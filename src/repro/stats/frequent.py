"""Frequent-value (most-common-value) statistics.

DB2-style frequency statistics: the top-k most frequent values of a column
with their counts.  Equality selectivity on a tracked value uses its exact
frequency; untracked values spread the remaining rows over the remaining
distinct values.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple


class FrequentValues:
    """Top-k value frequencies of one column."""

    def __init__(
        self,
        entries: List[Tuple[Any, int]],
        total_count: int,
        total_distinct: int,
    ) -> None:
        self.entries = entries
        self.total_count = total_count
        self.total_distinct = total_distinct
        self._by_value: Dict[Any, int] = dict(entries)

    @classmethod
    def build(
        cls, values: Sequence[Any], k: int = 10
    ) -> Optional["FrequentValues"]:
        """Collect top-k frequencies from non-NULL values (None if empty)."""
        if not values:
            return None
        counts = Counter(values)
        top = counts.most_common(k)
        return cls(top, len(values), len(counts))

    @property
    def tracked_count(self) -> int:
        return sum(count for _, count in self.entries)

    def frequency_of(self, value: Any) -> Optional[int]:
        """Exact count when tracked, else None."""
        return self._by_value.get(value)

    def equality_fraction(self, value: Any) -> float:
        """Estimated fraction of (non-NULL) rows equal to ``value``."""
        if self.total_count == 0:
            return 0.0
        tracked = self.frequency_of(value)
        if tracked is not None:
            return tracked / self.total_count
        remaining_rows = self.total_count - self.tracked_count
        remaining_distinct = self.total_distinct - len(self.entries)
        if remaining_distinct <= 0 or remaining_rows <= 0:
            return 0.0
        return (remaining_rows / remaining_distinct) / self.total_count

    def __repr__(self) -> str:
        preview = ", ".join(f"{v!r}:{c}" for v, c in self.entries[:3])
        return (
            f"FrequentValues(top={len(self.entries)} [{preview}...], "
            f"rows={self.total_count}, distinct={self.total_distinct})"
        )
