"""MVCC snapshots and the undo-based version store.

The heap stays authoritative for the *current* image of every row (the
single-session fast path never pays a versioning cost); concurrency adds
an overlay that remembers, per touched RowId, the newest writer's stamp
and a chain of before-images.  A snapshot reader reconstructs the image
it should see by walking a row's chain newest-to-oldest until it crosses
the first writer the snapshot considers visible:

* start with ``after`` = the current heap image (possibly None when the
  row is deleted right now);
* for each chain entry ``(writer, before)`` newest first: if ``writer``
  is visible, the reconstruction is ``after``; otherwise the entry's
  change must be undone, so ``after`` becomes ``before``;
* past the oldest entry, every writer was invisible and ``after`` holds
  the pre-history image.

Visibility is PostgreSQL-style snapshot isolation against a transaction
id watermark: a writer is visible when it is the snapshot's owner, or it
began before the snapshot's ``xmax`` watermark, was not in flight at
snapshot time, and did not abort.  Aborted transactions stay invisible
forever — their rollback compensations are recorded under the *same*
stamp, so a chain containing an aborted writer reconstructs to the same
image the restored heap holds, and vacuum can drop it wholesale.

Rollback of an open transaction therefore needs no special handling
here: the undo log restores the heap, the compensating operations extend
the chains under the aborted stamp, and both roads lead to the same row.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.engine.row import RowId
from repro.errors import TransactionError

__all__ = ["Snapshot", "TransactionManager", "VersionStore"]

Image = Optional[Tuple[Any, ...]]


class Snapshot:
    """A frozen view of which transactions' effects are visible.

    ``xmax`` is the next-to-be-assigned transaction id at snapshot time
    (everything at or past it began later); ``in_flight`` are the ids
    that were active; ``owner`` is the reading transaction's own id (its
    own uncommitted writes are always visible to it).
    """

    __slots__ = ("xmax", "in_flight", "owner", "_aborted")

    def __init__(
        self,
        xmax: int,
        in_flight: FrozenSet[int],
        owner: Optional[int],
        aborted: Set[int],
    ) -> None:
        self.xmax = xmax
        self.in_flight = in_flight
        self.owner = owner
        # Shared (growing) abort set from the TransactionManager: an id
        # aborts *after* a snapshot observed it in flight, and must stay
        # invisible to snapshots taken later as well.
        self._aborted = aborted

    def visible(self, writer: Optional[int]) -> bool:
        """Is a change stamped by ``writer`` part of this snapshot?"""
        if writer is None:
            return True
        if writer == self.owner:
            return True
        if writer >= self.xmax:
            return False
        if writer in self.in_flight:
            return False
        if writer in self._aborted:
            return False
        return True

    def horizon(self) -> int:
        """Oldest id whose commit status this snapshot still questions."""
        return min(self.in_flight, default=self.xmax)

    def __repr__(self) -> str:
        return (
            f"Snapshot(xmax={self.xmax}, in_flight={sorted(self.in_flight)}, "
            f"owner={self.owner})"
        )


class TransactionManager:
    """Allocates MVCC transaction ids and tracks their fates.

    The id space is private to the concurrency engine (durability keeps
    its own WAL transaction ids); all that matters for visibility is a
    total begin order, which the single counter provides.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._next_id = 1
        self._active: Set[int] = set()
        self._aborted: Set[int] = set()
        self.begun = 0
        self.committed = 0
        self.aborted_count = 0

    def begin(self) -> int:
        with self._mutex:
            txn_id = self._next_id
            self._next_id += 1
            self._active.add(txn_id)
            self.begun += 1
            return txn_id

    def commit(self, txn_id: int) -> None:
        """Flip a transaction to committed (call *after* its WAL flush:
        the visibility flip is what makes the commit observable)."""
        with self._mutex:
            if txn_id not in self._active:
                raise TransactionError(
                    f"transaction {txn_id} is not active"
                )
            self._active.discard(txn_id)
            self.committed += 1

    def abort(self, txn_id: int) -> None:
        with self._mutex:
            if txn_id not in self._active:
                raise TransactionError(
                    f"transaction {txn_id} is not active"
                )
            self._active.discard(txn_id)
            self._aborted.add(txn_id)
            self.aborted_count += 1

    def snapshot(self, owner: Optional[int] = None) -> Snapshot:
        with self._mutex:
            return Snapshot(
                self._next_id,
                frozenset(self._active),
                owner,
                self._aborted,
            )

    def is_active(self, txn_id: int) -> bool:
        with self._mutex:
            return txn_id in self._active

    def is_aborted(self, txn_id: int) -> bool:
        with self._mutex:
            return txn_id in self._aborted

    @property
    def active_count(self) -> int:
        return len(self._active)

    def prune_aborted(self, horizon: int) -> None:
        """Forget aborted ids below ``horizon`` (their chains are gone;
        the restored heap image is what any snapshot reconstructs)."""
        with self._mutex:
            self._aborted = {a for a in self._aborted if a >= horizon}


class _TableVersions:
    """Per-table overlay: newest stamp and before-image chain per rid."""

    __slots__ = ("stamps", "chains", "by_page")

    def __init__(self) -> None:
        self.stamps: Dict[RowId, int] = {}
        # Chronological (oldest..newest) list of (writer, before_image).
        self.chains: Dict[RowId, List[Tuple[int, Image]]] = {}
        self.by_page: Dict[int, Set[int]] = {}

    def note(self, rid: RowId, writer: int, before: Image) -> None:
        self.stamps[rid] = writer
        self.chains.setdefault(rid, []).append((writer, before))
        self.by_page.setdefault(rid.page_id, set()).add(rid.slot_no)

    def drop(self, rid: RowId) -> None:
        self.stamps.pop(rid, None)
        self.chains.pop(rid, None)
        slots = self.by_page.get(rid.page_id)
        if slots is not None:
            slots.discard(rid.slot_no)
            if not slots:
                del self.by_page[rid.page_id]


class VersionStore:
    """The whole database's MVCC overlay, keyed by table name.

    All mutation happens under the concurrency engine's latch; readers
    take the latch per page (see
    :meth:`~repro.concurrency.engine.ConcurrencyEngine.visible_row_runs`)
    so a reconstruction never races a chain append.
    """

    def __init__(self) -> None:
        self._tables: Dict[str, _TableVersions] = {}
        self.versions_recorded = 0
        self.vacuumed = 0

    def table(self, table_name: str) -> Optional[_TableVersions]:
        return self._tables.get(table_name)

    def note_insert(self, table_name: str, rid: RowId, writer: int) -> None:
        self._entry(table_name).note(rid, writer, None)
        self.versions_recorded += 1

    def note_delete(
        self, table_name: str, rid: RowId, old_row: Tuple[Any, ...],
        writer: int,
    ) -> None:
        self._entry(table_name).note(rid, writer, old_row)
        self.versions_recorded += 1

    def note_update(
        self,
        table_name: str,
        old_rid: RowId,
        new_rid: RowId,
        old_row: Tuple[Any, ...],
        writer: int,
    ) -> None:
        entry = self._entry(table_name)
        if old_rid == new_rid:
            entry.note(old_rid, writer, old_row)
            self.versions_recorded += 1
            return
        # A forwarded update is a delete at the old slot plus an insert
        # at the new one, and versions as exactly that pair.
        entry.note(old_rid, writer, old_row)
        entry.note(new_rid, writer, None)
        self.versions_recorded += 2

    def _entry(self, table_name: str) -> _TableVersions:
        entry = self._tables.get(table_name)
        if entry is None:
            entry = self._tables[table_name] = _TableVersions()
        return entry

    # -- reconstruction -----------------------------------------------------

    def reconstruct(
        self,
        table_name: str,
        rid: RowId,
        heap_image: Image,
        snapshot: Snapshot,
    ) -> Image:
        """The image of ``rid`` as of ``snapshot`` (None = not visible)."""
        entry = self._tables.get(table_name)
        if entry is None:
            return heap_image
        chain = entry.chains.get(rid)
        if chain is None:
            return heap_image
        after = heap_image
        for writer, before in reversed(chain):
            if snapshot.visible(writer):
                return after
            after = before
        return after

    def stamp(self, table_name: str, rid: RowId) -> Optional[int]:
        entry = self._tables.get(table_name)
        if entry is None:
            return None
        return entry.stamps.get(rid)

    def touched_rids(self, table_name: str) -> Iterator[RowId]:
        entry = self._tables.get(table_name)
        if entry is None:
            return
        for rid in list(entry.chains.keys()):
            yield rid

    # -- vacuum -------------------------------------------------------------

    def vacuum(self, horizon: int, txns: TransactionManager) -> int:
        """Drop chains no active snapshot can ever need again.

        A chain is prunable when its newest writer resolved (committed
        or aborted) below ``horizon`` — every current and future
        snapshot then agrees with the heap image for that rid, because a
        committed writer below the horizon is visible to all of them and
        an aborted one reconstructs to the already-restored heap.
        """
        dropped = 0
        for entry in self._tables.values():
            for rid in list(entry.chains.keys()):
                newest = entry.stamps.get(rid)
                if newest is None:
                    continue
                if newest >= horizon or txns.is_active(newest):
                    continue
                entry.drop(rid)
                dropped += 1
        self.vacuumed += dropped
        txns.prune_aborted(horizon)
        return dropped

    @property
    def live_chains(self) -> int:
        return sum(len(entry.chains) for entry in self._tables.values())
