"""Sessions: one client's transactional view of a shared database.

A :class:`Session` wraps a :class:`~repro.api.SoftDB` that other
sessions share.  Each session owns:

* its **plan cache** and **executor** (the optimizer, registry, and
  feedback store stay shared — plans and execution state are the
  per-client parts);
* a **WAL transaction stack**, installed around every statement so the
  durability layer tags this session's records with this session's
  transaction no matter which thread runs the statement;
* its **transaction state**: a cc transaction id, a snapshot, and an
  undo-log :class:`~repro.engine.transactions.Transaction`.

Isolation is snapshot isolation.  ``BEGIN`` takes a snapshot that every
statement of the transaction reads; autocommit statements take a
per-statement snapshot (and, for DML, an implicit transaction) whenever
any other session could be watching.  With one session open and no
transaction active, every statement runs on the storage fast path —
no snapshot, no locks, no versioning.

Writers follow strict 2PL with first-updater-wins: a DML statement
locks each victim row exclusively before touching it, and a lock wait
that loses the race to a committed-but-invisible writer raises
:class:`~repro.errors.TransactionConflictError`.  A deadlock raises
:class:`~repro.errors.DeadlockError` on the requester.  Either error —
or any other failure inside a DML statement — rolls the *whole*
transaction back (victim rollback) before propagating, so a failed
statement can never leave half its rows inside a transaction that
later commits.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.row import RowId
from repro.engine.transactions import Transaction
from repro.errors import (
    DeadlockError,
    SessionError,
    ShutdownError,
    TransactionConflictError,
    TransactionError,
)
from repro.expr.eval import compile_predicate, evaluate
from repro.sql import ast
from repro.sql.parser import parse_statement

__all__ = ["Session"]

_session_sequence = 0
_sequence_mutex = threading.Lock()


def _next_session_name() -> str:
    global _session_sequence
    with _sequence_mutex:
        _session_sequence += 1
        return f"session-{_session_sequence}"


class Session:
    """One client connection's execution context over a shared SoftDB.

    Construct via :meth:`repro.api.SoftDB.session`.  Usage::

        with db.session() as s:
            s.execute("BEGIN")
            s.execute("UPDATE kv SET val = 1 WHERE id = 7")
            s.execute("COMMIT")
    """

    def __init__(self, db, name: Optional[str] = None) -> None:
        from repro.executor.runtime import Executor
        from repro.optimizer.planner import PlanCache

        self.db = db
        self.name = name or _next_session_name()
        self.cc = db.database.concurrency
        if self.cc is None:
            raise SessionError(
                "no concurrency engine attached; construct sessions "
                "through SoftDB.session()"
            )
        # Per-session planning/execution context (shared optimizer).
        self.plan_cache = PlanCache(
            db.optimizer,
            qerror_threshold=(
                db.config.feedback_qerror_threshold
                if db.feedback is not None
                else None
            ),
        )
        self.executor = Executor(
            db.database,
            db.registry,
            batch_size=db.config.batch_size,
            feedback=db.feedback,
            columnar=db.config.columnar,
            workers=db.config.workers if db.config.workers else None,
        )
        self.guard = None  # default QueryGuard applied to every statement
        # WAL transaction nesting follows the session, not the thread.
        self._wal_stack: List[int] = []
        # Open transaction state (None outside BEGIN..COMMIT/ROLLBACK).
        self._txn: Optional[Transaction] = None
        self._cc_id: Optional[int] = None
        self._snapshot = None
        self._closed = False
        # close() may be called while a statement is mid-flight on a
        # pool thread (the server's drain-deadline cleanup does exactly
        # that); these coordinate the hand-off so only one thread ever
        # touches the transaction state.
        self._close_requested = False
        self._active = False
        self._state_mutex = threading.Lock()
        # Instrumentation.
        self.statements = 0
        self.commits = 0
        self.rollbacks = 0
        self.conflicts = 0
        with self.cc._snap_mutex:
            self.cc.sessions_open += 1

    # -- lifecycle -----------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    def close(self) -> None:
        """Roll back any open transaction and release the session slot.

        Safe to call while a statement is mid-flight on another thread:
        asyncio cancellation cannot interrupt a pool thread, so the
        close is *deferred* to the statement thread — the statement
        aborts with :class:`~repro.errors.ShutdownError` at its next
        lock grant or commit point (it must never commit into a closed
        session) and then finishes the close itself.  Rolling back here
        while the statement thread still holds the transaction would
        race it.
        """
        with self._state_mutex:
            if self._closed:
                return
            self._close_requested = True
            if self._active:
                return
            self._closed = True
        self._teardown()

    def request_close(self) -> None:
        """Flag the session for close without tearing anything down.

        Shutdown calls this on *every* live session before any cleanup
        runs: once the flags are set, no in-flight statement can commit
        no matter what order the per-connection teardowns release locks
        in.  The actual close still happens via :meth:`close` (or the
        statement thread's deferred finish).
        """
        with self._state_mutex:
            if not self._closed:
                self._close_requested = True

    def _teardown(self) -> None:
        if self._txn is not None:
            try:
                with self._wal_context():
                    self._finish_rollback()
            finally:
                self._clear_txn_state()
        with self.cc._snap_mutex:
            self.cc.sessions_open -= 1

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type: Any, exc: Any, traceback: Any) -> None:
        self.close()

    # -- execution -----------------------------------------------------------

    def execute(
        self,
        sql: str,
        use_cache: bool = False,
        batch_size: Optional[int] = None,
        guard: Optional[Any] = None,
        cancel: Optional[Any] = None,
    ):
        """Run one SQL statement in this session's context.

        Same contract as :meth:`repro.api.SoftDB.execute`, plus the
        transaction-control statements ``BEGIN`` / ``COMMIT`` /
        ``ROLLBACK``.
        """
        with self._state_mutex:
            if self._closed or self._close_requested:
                raise SessionError(f"session {self.name!r} is closed")
            self._active = True
        try:
            return self._execute(
                sql, use_cache, batch_size, guard, cancel
            )
        finally:
            with self._state_mutex:
                self._active = False
                finish_close = self._close_requested and not self._closed
                if finish_close:
                    self._closed = True
            if finish_close:
                self._teardown()

    def _execute(self, sql, use_cache, batch_size, guard, cancel):
        self.statements += 1
        statement = parse_statement(sql)
        with self._wal_context():
            if isinstance(statement, ast.BeginTransaction):
                self._begin()
                return None
            if isinstance(statement, ast.CommitTransaction):
                self._commit()
                return None
            if isinstance(statement, ast.RollbackTransaction):
                self._rollback()
                return None
            if isinstance(statement, (ast.SelectStatement, ast.UnionAll)):
                return self._select(
                    statement, sql, use_cache, batch_size, guard, cancel
                )
            if isinstance(statement, (ast.Insert, ast.Delete, ast.Update)):
                return self._dml(statement)
        # DDL runs through the shared facade, outside any transaction.
        if self._txn is not None:
            raise TransactionError(
                "DDL is not supported inside an explicit transaction"
            )
        return self.db.execute(sql)

    def query(self, sql: str) -> List[Dict[str, Any]]:
        result = self.execute(sql)
        return result.rows

    # -- transaction control --------------------------------------------------

    def _wal_context(self):
        durability = self.db.durability
        if durability is None:
            return nullcontext()
        return durability.txn_context(self._wal_stack)

    def _begin(self) -> None:
        if self._txn is not None:
            raise TransactionError("a transaction is already open")
        self._cc_id = self.cc.begin()
        self._snapshot = self.cc.take_snapshot(owner=self._cc_id)
        self._txn = Transaction(self.db.database)

    def _commit(self) -> None:
        if self._txn is None:
            raise TransactionError("no transaction is open")
        txn, cc_id, snapshot = self._txn, self._cc_id, self._snapshot
        self._clear_txn_state()
        # Order matters: the WAL commit record must be durable (flushed,
        # possibly as part of a commit group) *before* the version flips
        # visible — a snapshot must never read a commit a crash could
        # still revoke.
        try:
            txn.commit()
        except BaseException:
            self.cc.abort(cc_id)
            self.cc.release_snapshot(snapshot)
            raise
        self.cc.commit(cc_id)
        self.cc.release_snapshot(snapshot)
        self.commits += 1

    def _rollback(self) -> None:
        if self._txn is None:
            raise TransactionError("no transaction is open")
        self._finish_rollback()
        self._clear_txn_state()

    def _finish_rollback(self) -> None:
        txn, cc_id, snapshot = self._txn, self._cc_id, self._snapshot
        try:
            # Compensations run under the same writer stamp, so the
            # version chains stay self-consistent for concurrent
            # snapshots; the cc abort then hides the whole chain.
            with self.cc.writing(cc_id):
                txn.rollback()
        finally:
            self.cc.abort(cc_id)
            self.cc.release_snapshot(snapshot)
            self.rollbacks += 1

    def _check_close_requested(self) -> None:
        """Abort the statement if the session was closed under it.

        A lock wait can outlive the connection that issued the
        statement (the server's drain deadline cancels the *awaiter*,
        never the pool thread).  Winning the lock after that must not
        turn into a commit — the caller's rollback path runs instead.
        """
        if self._close_requested:
            raise ShutdownError(
                f"session {self.name!r} was closed while the statement "
                f"was in flight; rolling back"
            )

    def _clear_txn_state(self) -> None:
        self._txn = None
        self._cc_id = None
        self._snapshot = None

    # -- SELECT ---------------------------------------------------------------

    def _select(self, statement, sql, use_cache, batch_size, guard, cancel):
        if use_cache:
            plan = self.plan_cache.get_plan(sql)
        else:
            plan = self.db.optimizer.optimize(statement)
        snapshot = self._snapshot
        release = False
        if snapshot is None and self.cc.tracking:
            snapshot = self.cc.take_snapshot()
            release = True
        try:
            with self.cc.reading(snapshot):
                result = self.executor.execute(
                    plan,
                    batch_size=batch_size,
                    guard=guard if guard is not None else self.guard,
                    cancel=cancel,
                )
        finally:
            if release:
                self.cc.release_snapshot(snapshot)
        if (
            use_cache
            and self.db.feedback is not None
            and not result.truncated
        ):
            self.plan_cache.note_execution(sql, result.max_qerror)
        return result

    # -- DML ------------------------------------------------------------------

    def _dml(self, statement) -> int:
        if self._txn is None and not self.cc.tracking:
            # Single-session fast path: identical to the facade's DML.
            with self.db.database._statement_scope():
                if isinstance(statement, ast.Insert):
                    return self.db._execute_insert(statement)
                if isinstance(statement, ast.Delete):
                    return self.db._execute_delete(statement)
                return self.db._execute_update(statement)
        own = self._txn is None
        if own:
            self._begin()
        try:
            count = self._apply_dml(statement)
            # The session may have been closed while this statement was
            # blocked on a lock; it must not commit into a closed
            # session.
            self._check_close_requested()
        except (DeadlockError, TransactionConflictError):
            self.conflicts += 1
            self._rollback()  # victim rollback — locks freed, waiters wake
            raise
        except BaseException:
            # Statement atomicity inside a transaction would require
            # partial undo; the engine's Transaction is all-or-nothing,
            # so any mid-statement failure aborts the transaction.
            self._rollback()
            raise
        if own:
            self._commit()
        return count

    def _apply_dml(self, statement) -> int:
        with self.cc.writing(self._cc_id), self.cc.reading(self._snapshot):
            if isinstance(statement, ast.Insert):
                return self._insert(statement)
            if isinstance(statement, ast.Delete):
                return self._delete(statement)
            return self._update(statement)

    def _insert(self, statement: ast.Insert) -> int:
        table = self.db.database.table(statement.table)
        rows: List[List[Any]] = []
        for row_expressions in statement.rows:
            values = [evaluate(expr, {}) for expr in row_expressions]
            if statement.columns:
                if len(values) != len(statement.columns):
                    from repro.errors import ExecutionError

                    raise ExecutionError(
                        "INSERT value count does not match column list"
                    )
                mapping = dict(zip(statement.columns, values))
                values = table.schema.row_from_mapping(mapping)
            rows.append(values)
        self.cc.locks.lock_table_ix(self._cc_id, table.name)
        for values in rows:
            rid = self._txn.insert(statement.table, values)
            # X-lock the fresh row: strict 2PL keeps it ours to commit.
            self.cc.locks.lock_row_x(self._cc_id, table.name, rid)
        return len(rows)

    def _victims(
        self, table, where
    ) -> List[Tuple[RowId, Tuple[Any, ...]]]:
        """Snapshot-visible rows matching ``where`` (rid, image) pairs."""
        names = table.schema.column_names()
        predicate = (
            (lambda row: True) if where is None else compile_predicate(where)
        )
        out = []
        for rid, row in self.cc.visible_scan(table, self._snapshot):
            if predicate(dict(zip(names, row))) is True:
                out.append((rid, row))
        return out

    def _lock_victim(self, table, rid: RowId) -> Tuple[Any, ...]:
        """X-lock one victim row; returns its current heap image.

        The lock may force a wait behind another writer; once granted,
        first-updater-wins is checked against this session's snapshot
        and the heap is re-read — a row forwarded away by the blocker's
        rollback surfaces as a conflict, not a silent miss.
        """
        self.cc.lock_row_for_write(
            self._cc_id, table.name, rid, self._snapshot
        )
        self._check_close_requested()
        with self.cc.latch:
            current = table.pages.pages[rid.page_id].slots[rid.slot_no]
        if current is None:
            raise TransactionConflictError(
                f"row {rid} of {table.name!r} moved or vanished while "
                f"waiting for its lock"
            )
        return current

    def _delete(self, statement: ast.Delete) -> int:
        table = self.db.database.table(statement.table)
        self.cc.locks.lock_table_ix(self._cc_id, table.name)
        victims = self._victims(table, statement.where)
        for rid, _snapshot_row in victims:
            self._lock_victim(table, rid)
            self._txn.delete(statement.table, rid)
        return len(victims)

    def _update(self, statement: ast.Update) -> int:
        table = self.db.database.table(statement.table)
        names = table.schema.column_names()
        assignments = statement.assignments
        self.cc.locks.lock_table_ix(self._cc_id, table.name)
        victims = self._victims(table, statement.where)
        for rid, _snapshot_row in victims:
            current = self._lock_victim(table, rid)
            row_dict = dict(zip(names, current))
            row_dict.update(
                {
                    column: evaluate(expression, dict(zip(names, current)))
                    for column, expression in assignments
                }
            )
            self._txn.update(
                statement.table, rid, [row_dict[name] for name in names]
            )
        return len(victims)

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "in-txn" if self._txn is not None else "idle"
        )
        return f"Session({self.name}, {state})"
