"""Concurrent multi-session execution: MVCC, locking, group commit.

The paper's Section 4.1 discusses concurrent transactions only insofar
as one can *overturn* an ASC another's plan relied on.  This package
supplies the machinery that makes the question real inside the repro:
multiple sessions over one :class:`~repro.engine.database.Database`,
snapshot-isolation reads via an undo-based version overlay, strict-2PL
writers with deadlock detection, and WAL group commit so concurrent
commits share flushes.

Entry points:

* :class:`~repro.concurrency.session.Session` — one client's view of
  the database (``SoftDB.session()`` constructs them);
* :class:`~repro.concurrency.engine.ConcurrencyEngine` — the shared
  per-database coordinator;
* :class:`~repro.concurrency.server.SessionServer` /
  :class:`~repro.concurrency.server.SessionClient` — the asyncio
  TCP front end (with :class:`~repro.concurrency.client.
  FailoverClient` layering retry/backoff/failover on top);
* :class:`~repro.concurrency.routing.RoutedSession` — primary/replica
  statement routing under a per-query currency (staleness) bound.

The asyncio server and client live in their submodules
(``repro.concurrency.server`` / ``repro.concurrency.client``) and are
not re-exported here, keeping package import synchronous-only.
"""

from repro.concurrency.engine import ConcurrencyEngine
from repro.concurrency.groupcommit import GroupCommitter
from repro.concurrency.locks import LockManager
from repro.concurrency.mvcc import Snapshot, TransactionManager, VersionStore
from repro.concurrency.routing import RoutedSession
from repro.concurrency.session import Session

__all__ = [
    "ConcurrencyEngine",
    "GroupCommitter",
    "LockManager",
    "RoutedSession",
    "Session",
    "Snapshot",
    "TransactionManager",
    "VersionStore",
]
