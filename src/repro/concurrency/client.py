"""Failure-aware multi-endpoint client: retry, backoff, failover.

:class:`FailoverClient` wraps :class:`~repro.concurrency.server.
SessionClient` with the policies a client facing an unreliable fleet
needs:

* **typed retry classification** — :class:`~repro.errors.
  OverloadedError` (shed before execution: always safe to retry on the
  same endpoint), :class:`~repro.errors.ShutdownError` (orderly drain:
  fail over to the next endpoint), and :class:`~repro.errors.
  NetworkError` (outcome *unknown*: fail over, but only retry the
  statement when the caller declared it idempotent), and
  :class:`~repro.errors.FencedError` (a deposed primary rejected the
  write *before* any durability point: outcome known, so the client
  redirects to the next endpoint and may re-issue even non-idempotent
  statements);
* **capped exponential backoff with jitter** — seeded, so failover
  tests replay deterministically; jitter keeps a thundering herd of
  recovering clients from re-synchronizing on the server;
* **automatic failover** — endpoints are tried round-robin on
  connection loss or shutdown, and the typed
  :class:`~repro.errors.ReplicaUnavailableError` surfaces only when
  every endpoint has been exhausted across the attempt budget.

Every error raised is a :class:`~repro.errors.ReproError` subclass:
the chaos suite's "typed errors only" contract extends over the wire.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.concurrency.server import SessionClient
from repro.errors import (
    FencedError,
    NetworkError,
    OverloadedError,
    ReplicaUnavailableError,
    ShutdownError,
)
from repro.resilience.guards import VirtualClock

__all__ = ["BackoffPolicy", "FailoverClient"]


class BackoffPolicy:
    """Capped exponential backoff with seeded jitter and an overall
    elapsed-time budget.

    ``max_elapsed`` bounds the *total* virtual time a caller may spend
    backing off across a retry sequence: when granting one more delay
    would push the cumulative total past the budget, :meth:`delay`
    raises :class:`~repro.errors.ReplicaUnavailableError` instead —
    chained (``from cause``) to the failure that provoked the retry, so
    the caller's traceback still names the real problem.  A delay that
    lands the total exactly on ``max_elapsed`` is still granted; only
    exceeding it trips.  Time is accounted on a
    :class:`~repro.resilience.guards.VirtualClock`, so budget tests are
    deterministic and sleep-free.
    """

    def __init__(
        self,
        base_delay: float = 0.01,
        multiplier: float = 2.0,
        cap: float = 0.5,
        jitter: float = 0.5,
        seed: int = 0,
        max_elapsed: Optional[float] = None,
        clock: Optional[VirtualClock] = None,
    ) -> None:
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.cap = cap
        self.jitter = jitter
        self.rng = random.Random(seed)
        self.max_elapsed = max_elapsed
        self.clock = clock if clock is not None else VirtualClock()
        self.elapsed = 0.0
        self.exhaustions = 0

    def delay(
        self, attempt: int, cause: Optional[BaseException] = None
    ) -> float:
        """Sleep before retry number ``attempt`` (0-based): capped
        exponential, then jittered down by up to ``jitter`` of itself.

        Raises :class:`~repro.errors.ReplicaUnavailableError` (chained
        to ``cause``) when granting this delay would exceed the
        ``max_elapsed`` budget.
        """
        base = min(self.cap, self.base_delay * (self.multiplier ** attempt))
        chosen = base * (1.0 - self.jitter * self.rng.random())
        if (
            self.max_elapsed is not None
            and self.elapsed + chosen > self.max_elapsed
        ):
            self.exhaustions += 1
            raise ReplicaUnavailableError(
                f"retry budget exhausted: {self.elapsed:.4f}s of backoff "
                f"spent and the next {chosen:.4f}s delay would exceed "
                f"max_elapsed={self.max_elapsed}"
            ) from cause
        self.elapsed += chosen
        self.clock.sleep(chosen)
        return chosen

    def reset(self) -> None:
        """Open a fresh budget window (a new logical operation)."""
        self.elapsed = 0.0


class FailoverClient:
    """A session client over an ordered endpoint list.

    Parameters
    ----------
    endpoints:
        ``(host, port)`` pairs, preferred first.
    connect_timeout / statement_timeout:
        Bounds per attempt; breaches classify as
        :class:`~repro.errors.NetworkError`.
    max_attempts:
        Total statement attempts (across endpoints) before giving up
        with :class:`~repro.errors.ReplicaUnavailableError`.
    backoff:
        A :class:`BackoffPolicy`; defaults to a fast seeded one.
    """

    def __init__(
        self,
        endpoints: Sequence[Tuple[str, int]],
        connect_timeout: float = 2.0,
        statement_timeout: float = 10.0,
        max_attempts: int = 6,
        backoff: Optional[BackoffPolicy] = None,
    ) -> None:
        self.endpoints: List[Tuple[str, int]] = list(endpoints)
        if not self.endpoints:
            raise ReplicaUnavailableError(
                "FailoverClient needs at least one endpoint"
            )
        self.connect_timeout = connect_timeout
        self.statement_timeout = statement_timeout
        self.max_attempts = max_attempts
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self._client: Optional[SessionClient] = None
        self._endpoint_index = 0
        self.retries = 0
        self.failovers = 0
        self.sheds_seen = 0
        self.fenced_seen = 0

    @property
    def endpoint(self) -> Tuple[str, int]:
        """The endpoint the next attempt will use."""
        return self.endpoints[self._endpoint_index % len(self.endpoints)]

    async def execute(
        self, sql: str, idempotent: bool = True
    ) -> Dict[str, Any]:
        """Run one statement with retry/failover.

        ``idempotent=False`` marks a statement that must not be blindly
        re-run when its outcome is unknown (a ``NetworkError`` after
        send): the error propagates immediately instead of retrying —
        re-running a non-idempotent write could apply it twice.
        Overload and shutdown rejections happen *before* execution, so
        they retry regardless.
        """
        last_error: Optional[Exception] = None
        for attempt in range(self.max_attempts):
            if attempt:
                self.retries += 1
                await asyncio.sleep(
                    self.backoff.delay(attempt - 1, cause=last_error)
                )
            try:
                await self._ensure_connected()
                return await self._client.execute(
                    sql, timeout=self.statement_timeout
                )
            except OverloadedError as error:
                # Shed pre-execution: same endpoint, just back off.
                self.sheds_seen += 1
                last_error = error
            except FencedError as error:
                # The endpoint is a deposed primary: failover promoted
                # someone else, and the write was rejected *before* any
                # durability point.  The outcome is known (nothing
                # executed), so re-issuing on the next endpoint is safe
                # even for non-idempotent statements — this is the
                # primary-redirect path, not a blind retry.
                self.fenced_seen += 1
                last_error = error
                await self._fail_over()
            except ShutdownError as error:
                # Orderly drain: this endpoint is going away.
                last_error = error
                await self._fail_over()
            except NetworkError as error:
                last_error = error
                await self._fail_over()
                if not idempotent and self._statement_was_sent(error):
                    raise
        raise ReplicaUnavailableError(
            f"all {len(self.endpoints)} endpoint(s) failed after "
            f"{self.max_attempts} attempts: {last_error}"
        ) from last_error

    async def close(self) -> None:
        if self._client is not None:
            client, self._client = self._client, None
            await client.close()

    # -- internals -----------------------------------------------------------

    async def _ensure_connected(self) -> None:
        if self._client is None:
            host, port = self.endpoint
            self._client = await SessionClient.connect(
                host, port, timeout=self.connect_timeout
            )

    async def _fail_over(self) -> None:
        """Drop the current connection and advance to the next endpoint."""
        await self.close()
        self._endpoint_index = (self._endpoint_index + 1) % len(
            self.endpoints
        )
        self.failovers += 1

    def _statement_was_sent(self, error: NetworkError) -> bool:
        """Whether the failed attempt may have executed server-side.

        Connect-phase failures (no client existed yet when they raise,
        message carries the connect context) never sent the statement;
        everything else must be assumed in flight.
        """
        return not str(error).startswith("connect to ")

    def __repr__(self) -> str:
        return (
            f"FailoverClient(endpoints={self.endpoints}, "
            f"failovers={self.failovers})"
        )
