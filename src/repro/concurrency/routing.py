"""Primary/replica statement routing under a currency bound.

A :class:`RoutedSession` fronts one durable primary and the replicas a
:class:`~repro.replication.shipper.WalShipper` keeps caught up.  The
routing rule is the paper's staleness economics applied to placement:

* **writes** (DML, DDL, transaction control) always go to the primary —
  replicas are read-only twins;
* **reads** fan out round-robin across replicas whose currency margin
  (committed-records-behind over row count, the Section 3.3 ``u/n``
  arithmetic) is within the query's ``max_staleness`` bound;
* a replica that is too stale, dead, partitioned, or mid-resync is
  simply skipped; when none qualifies the read runs on the primary.

Degrading to the primary rather than answering from a too-stale twin is
the same contract soft constraints honor: a characterization outside
its stated currency bound is not used, it is *bypassed* — never a
silently wrong answer.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    ReplicationError,
    ReplicaUnavailableError,
)
from repro.sql import ast
from repro.sql.parser import parse_statement

__all__ = ["RoutedSession"]


class RoutedSession:
    """Route statements between one primary and its read replicas.

    Parameters
    ----------
    db:
        The primary :class:`~repro.api.SoftDB`.
    shipper:
        The :class:`~repro.replication.shipper.WalShipper` whose
        attached replicas serve reads.
    max_staleness:
        Default currency-margin bound for reads (0.0 = only replicas
        acknowledging the primary's full durable frontier may answer).
        Overridable per query.
    """

    def __init__(self, db, shipper, max_staleness: float = 0.0) -> None:
        self.db = db
        self.shipper = shipper
        self.max_staleness = max_staleness
        self._round_robin = 0
        # Where the last statement ran: ("replica", name, margin) or
        # ("primary", reason, 0.0).
        self.last_route: Optional[Tuple[str, str, float]] = None
        self.reads_on_replica = 0
        self.reads_on_primary = 0
        self.writes = 0
        self.degraded = 0  # reads skipped past a too-stale replica
        self.replica_errors = 0  # reads that failed over mid-route
        self.rebinds = 0  # write-target swaps (failover promotions)
        # Per-endpoint placement ledger: how many statements each
        # endpoint ("primary" or a replica name) actually served.
        self.route_counts: Dict[str, int] = {}
        # Why the most recent read skipped a replica (stale margin,
        # unavailable, mid-route failure); None until a skip happens.
        self.last_degradation: Optional[str] = None

    def execute(self, sql: str, max_staleness: Optional[float] = None):
        """Run one statement on the side of the fleet it belongs on."""
        statement = parse_statement(sql)
        if not isinstance(statement, (ast.SelectStatement, ast.UnionAll)):
            self.writes += 1
            self.last_route = ("primary", "write", 0.0)
            self._count_route("primary")
            return self.db.execute(sql)
        bound = self.max_staleness if max_staleness is None else max_staleness
        links = list(self.shipper.links.values())
        count = len(links)
        for step in range(count):
            link = links[(self._round_robin + step) % count]
            replica = link.replica
            # Fresh lag against the primary's *current* durable
            # frontier — trusting the last pump's lag would let a bound
            # of 0.0 route to a replica the primary has since outrun.
            lag = self.shipper.refresh_lag(link)
            if lag is None:
                self.last_degradation = (
                    f"{replica.name}: unavailable (dead, severed, or "
                    f"mid-resync)"
                )
                continue
            margin = lag.margin
            if margin > bound:
                self.degraded += 1
                self.last_degradation = (
                    f"{replica.name}: margin {margin:.4f} exceeds "
                    f"bound {bound:.4f}"
                )
                continue
            try:
                result = replica.execute(sql)
            except (ReplicaUnavailableError, ReplicationError) as error:
                # The replica died between the health check and the
                # read; fail over to the next candidate.
                self.replica_errors += 1
                self.last_degradation = (
                    f"{replica.name}: failed mid-route "
                    f"({type(error).__name__})"
                )
                continue
            self._round_robin = (self._round_robin + step + 1) % count
            self.reads_on_replica += 1
            self.last_route = ("replica", replica.name, margin)
            self._count_route(replica.name)
            return result
        self.reads_on_primary += 1
        self.last_route = ("primary", "fallback", 0.0)
        self._count_route("primary")
        return self.db.execute(sql)

    def query(
        self, sql: str, max_staleness: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        return self.execute(sql, max_staleness=max_staleness).rows

    def rebind(self, db, shipper) -> None:
        """Swap the write target after a failover promotion.

        The promotion coordinator hands the session the new primary and
        its fresh :class:`~repro.replication.shipper.WalShipper`;
        subsequent writes go to the promoted node and reads fan out over
        the re-attached survivors.  The round-robin cursor resets (the
        link set changed) but the placement ledgers persist — a failover
        should be visible in the counters, not erase them.
        """
        self.db = db
        self.shipper = shipper
        self._round_robin = 0
        self.rebinds += 1

    def snapshot(self) -> Dict[str, Any]:
        """Routing counters for reporting."""
        return {
            "reads_on_replica": self.reads_on_replica,
            "reads_on_primary": self.reads_on_primary,
            "writes": self.writes,
            "degraded": self.degraded,
            "replica_errors": self.replica_errors,
            "rebinds": self.rebinds,
            "route_counts": dict(sorted(self.route_counts.items())),
            "last_degradation": self.last_degradation,
        }

    def _count_route(self, endpoint: str) -> None:
        self.route_counts[endpoint] = self.route_counts.get(endpoint, 0) + 1

    def __repr__(self) -> str:
        return (
            f"RoutedSession(replicas={sorted(self.shipper.links)}, "
            f"max_staleness={self.max_staleness})"
        )
