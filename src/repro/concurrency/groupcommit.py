"""WAL group commit: N concurrently-committing transactions, one flush.

The durability manager appends each transaction's commit record under
its mutex and hands the resulting WAL sequence number (records appended
so far) to :meth:`GroupCommitter.commit`.  The first committer to arrive
becomes the *leader*: it sleeps a short gather window — during which
other committing threads append their own commit records and queue up as
*followers* — then flushes the log once and publishes the flushed
sequence.  Every follower whose commit record landed at or before the
flushed sequence returns without touching the disk; at most one thread
is ever inside ``flush()``.

Correctness does not depend on the window: a commit record is only
covered when its append *happened before* the leader read the target
sequence, and a follower that missed the flush simply leads (or joins)
the next round.  The window is a throughput/latency trade dialled by the
bench; single-session commits never come here at all (the manager calls
``wal.flush()`` directly when the committer is inactive).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

__all__ = ["GroupCommitter"]

#: Default gather window in seconds.  Long enough for a burst of
#: committing threads to pile in behind the leader, short enough to be
#: invisible next to any real fsync.
DEFAULT_WINDOW = 0.002


class GroupCommitter:
    """Leader/follower commit flushing for one write-ahead log."""

    def __init__(
        self,
        wal,
        window: float = DEFAULT_WINDOW,
        is_active: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.wal = wal
        self.window = window
        # When inactive (e.g. a single open session), the durability
        # manager bypasses the committer entirely — no gather latency.
        self._is_active = is_active
        self._cond = threading.Condition()
        self._flushed_seq = 0
        self._flushing = False
        self.commits = 0
        self.group_flushes = 0
        self.largest_group = 0

    @property
    def active(self) -> bool:
        return self._is_active is None or self._is_active()

    def commit(self, seq: int) -> None:
        """Make the WAL durable at least through sequence ``seq``.

        ``seq`` is ``wal.appended`` observed just after this
        transaction's commit record was appended (under the durability
        mutex), so covering ``seq`` covers the record.
        """
        with self._cond:
            self.commits += 1
            while True:
                if seq <= self._flushed_seq:
                    return
                if not self._flushing:
                    break
                self._cond.wait()
            self._flushing = True
            floor = self._flushed_seq
        target = floor
        try:
            if self.window > 0.0:
                time.sleep(self.window)
            target = self.wal.appended
            self.wal.flush()
        finally:
            with self._cond:
                self._flushing = False
                if target > self._flushed_seq:
                    self._flushed_seq = target
                self.group_flushes += 1
                group = target - floor
                if group > self.largest_group:
                    self.largest_group = group
                self._cond.notify_all()

    def stats(self) -> dict:
        return {
            "commits": self.commits,
            "group_flushes": self.group_flushes,
            "largest_group": self.largest_group,
        }
