"""The concurrency engine: latch, version overlay, locks, and contexts.

One :class:`ConcurrencyEngine` attaches to a
:class:`~repro.engine.database.Database` (``database.concurrency``) the
first time a session is opened.  It owns:

* the **engine latch** — a reentrant lock held for the duration of each
  DML row mutation and by snapshot readers for each page they
  reconstruct, so a reader never observes a half-applied row change;
* the **version store** and **transaction manager** (see
  :mod:`repro.concurrency.mvcc`);
* the **lock manager** for writers (strict 2PL, deadlock detection);
* per-thread **read/write contexts**: a scan consults
  :meth:`current_snapshot` once at scan start — when it is None (no
  session is reading under a snapshot on this thread) the storage fast
  path runs untouched, which is what keeps MVCC out of the hot loop for
  a single open session.

The database's DML paths call the ``note_*`` hooks after each heap
mutation; with no writer context and tracking off they return
immediately, so a session-free database pays one attribute check.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Tuple

from repro.concurrency.groupcommit import DEFAULT_WINDOW, GroupCommitter
from repro.concurrency.locks import LockManager
from repro.concurrency.mvcc import Snapshot, TransactionManager, VersionStore
from repro.engine.row import RowId
from repro.errors import TransactionConflictError

__all__ = ["ConcurrencyEngine"]


def _key_in_range(
    key: Tuple[Any, ...],
    low: Optional[Tuple[Any, ...]],
    high: Optional[Tuple[Any, ...]],
    low_inclusive: bool,
    high_inclusive: bool,
) -> bool:
    """Mirror of the B-tree's prefix-bound range semantics (an
    inclusive prefix bound admits every extension of the prefix)."""
    if low is not None:
        head = key[: len(low)]
        if head < low or (not low_inclusive and head <= low):
            return False
    if high is not None:
        head = key[: len(high)]
        if head > high or (not high_inclusive and head >= high):
            return False
    return True


class ConcurrencyEngine:
    """MVCC + locking + sessions for one database."""

    def __init__(self, database) -> None:
        self.database = database
        self.latch = threading.RLock()
        self.versions = VersionStore()
        self.txns = TransactionManager()
        self.locks = LockManager()
        self._tls = threading.local()
        self._snap_mutex = threading.Lock()
        self._active_snapshots: dict = {}
        self.sessions_open = 0
        self.group_commit: Optional[GroupCommitter] = None
        database.concurrency = self

    def attach_group_commit(
        self, durability, window: float = DEFAULT_WINDOW
    ) -> None:
        """Install group commit on the database's durability manager.

        The committer stays dormant (``wal.flush()`` direct) until more
        than one session is open — a lone session must not pay the
        gather window on every commit.
        """
        if durability is None or self.group_commit is not None:
            return
        self.group_commit = GroupCommitter(
            durability.wal,
            window=window,
            is_active=lambda: self.sessions_open > 1,
        )
        durability.group_commit = self.group_commit

    # -- per-thread contexts ------------------------------------------------

    def current_snapshot(self) -> Optional[Snapshot]:
        return getattr(self._tls, "snapshot", None)

    def current_writer(self) -> Optional[int]:
        return getattr(self._tls, "writer", None)

    @contextmanager
    def reading(self, snapshot: Optional[Snapshot]):
        """Install a snapshot as this thread's read context."""
        previous = getattr(self._tls, "snapshot", None)
        self._tls.snapshot = snapshot
        try:
            yield
        finally:
            self._tls.snapshot = previous

    @contextmanager
    def writing(self, txn_id: Optional[int]):
        """Install a transaction id as this thread's write context."""
        previous = getattr(self._tls, "writer", None)
        self._tls.writer = txn_id
        try:
            yield
        finally:
            self._tls.writer = previous

    # -- transaction lifecycle ----------------------------------------------

    def begin(self) -> int:
        return self.txns.begin()

    def commit(self, txn_id: int) -> None:
        """Flip visibility (call *after* the WAL flush) and unlock."""
        self.txns.commit(txn_id)
        self.locks.release_all(txn_id)
        self._maybe_vacuum()

    def abort(self, txn_id: int) -> None:
        self.txns.abort(txn_id)
        self.locks.release_all(txn_id)
        self._maybe_vacuum()

    @property
    def tracking(self) -> bool:
        """Whether writes must be versioned: true whenever another
        session could be holding a snapshot or a transaction is open."""
        return self.sessions_open > 1 or self.txns.active_count > 0

    # -- snapshots -----------------------------------------------------------

    def take_snapshot(self, owner: Optional[int] = None) -> Snapshot:
        snapshot = self.txns.snapshot(owner)
        with self._snap_mutex:
            self._active_snapshots[id(snapshot)] = snapshot
        return snapshot

    def release_snapshot(self, snapshot: Optional[Snapshot]) -> None:
        if snapshot is None:
            return
        with self._snap_mutex:
            self._active_snapshots.pop(id(snapshot), None)

    def horizon(self) -> int:
        """Oldest txn id any active snapshot (or transaction) questions."""
        floors = [self.txns.snapshot(None).xmax]
        with self._snap_mutex:
            floors.extend(
                s.horizon() for s in self._active_snapshots.values()
            )
        with self.txns._mutex:
            floors.extend(self.txns._active)
        return min(floors)

    def vacuum(self) -> int:
        """Drop version chains no snapshot can need; returns the count."""
        with self.latch:
            return self.versions.vacuum(self.horizon(), self.txns)

    def _maybe_vacuum(self) -> None:
        if self.txns.active_count == 0 and not self._active_snapshots:
            self.vacuum()

    # -- write hooks (called by Database DML under the latch) ---------------

    def _writer_for_note(self) -> Optional[int]:
        writer = getattr(self._tls, "writer", None)
        if writer is not None:
            return writer
        if not self.tracking:
            return None
        # A write outside any session transaction while others may hold
        # snapshots: stamp it with an instantly-committed transaction so
        # pre-existing snapshots (xmax below it) do not see it.
        txn_id = self.txns.begin()
        self.txns.commit(txn_id)
        return txn_id

    def note_insert(self, table_name: str, rid: RowId) -> None:
        writer = self._writer_for_note()
        if writer is None:
            return
        self.versions.note_insert(table_name, rid, writer)

    def note_delete(
        self, table_name: str, rid: RowId, old_row: Tuple[Any, ...]
    ) -> None:
        writer = self._writer_for_note()
        if writer is None:
            return
        self.versions.note_delete(table_name, rid, old_row, writer)

    def note_update(
        self,
        table_name: str,
        old_rid: RowId,
        new_rid: RowId,
        old_row: Tuple[Any, ...],
    ) -> None:
        writer = self._writer_for_note()
        if writer is None:
            return
        self.versions.note_update(table_name, old_rid, new_rid, old_row, writer)

    # -- write-write conflicts ----------------------------------------------

    def lock_row_for_write(
        self, txn_id: int, table_name: str, rid: RowId, snapshot: Snapshot
    ) -> None:
        """Strict-2PL row lock plus the first-updater-wins check.

        After the X lock is granted (possibly after waiting out another
        writer's commit), the row's newest stamp is re-read: a committed
        writer this snapshot cannot see means the wait lost the race,
        and proceeding would overwrite an update the transaction never
        observed.
        """
        self.locks.lock_table_ix(txn_id, table_name)
        self.locks.lock_row_x(txn_id, table_name, rid)
        with self.latch:
            stamp = self.versions.stamp(table_name, rid)
        if (
            stamp is not None
            and stamp != txn_id
            and not snapshot.visible(stamp)
            and not self.txns.is_aborted(stamp)
        ):
            raise TransactionConflictError(
                f"row {rid} of {table_name!r} was updated by transaction "
                f"{stamp}, which committed after this snapshot; first "
                f"updater wins"
            )

    # -- snapshot scans ------------------------------------------------------

    def visible_scan(
        self, table, snapshot: Snapshot
    ) -> Iterator[Tuple[RowId, Tuple[Any, ...]]]:
        """Full scan of ``table`` as of ``snapshot``: (rid, image) pairs.

        Page order and slot order match the raw heap scan; I/O is
        charged identically (one page read per page, one row read per
        visible row).  The latch is taken per page, so a concurrent
        writer can slip between pages but never into one.
        """
        for _page_id, rows in self._visible_pages(table, snapshot):
            for item in rows:
                yield item

    def visible_row_runs(
        self, table, snapshot: Snapshot
    ) -> Iterator[List[Tuple[Any, ...]]]:
        """Snapshot twin of :meth:`HeapTable.scan_row_runs`."""
        for _page_id, rows in self._visible_pages(table, snapshot):
            yield [row for _rid, row in rows]

    def _visible_pages(self, table, snapshot: Snapshot):
        pages = table.pages
        table_name = table.name
        for page_id in range(pages.page_count):
            with self.latch:
                page = pages.read_page(page_id)
                versions = self.versions.table(table_name)
                touched = (
                    versions.by_page.get(page_id)
                    if versions is not None
                    else None
                )
                out: List[Tuple[RowId, Tuple[Any, ...]]] = []
                if not touched:
                    for slot_no, row in enumerate(page.slots):
                        if row is not None:
                            out.append((RowId(page_id, slot_no), row))
                else:
                    for slot_no, row in enumerate(page.slots):
                        if slot_no in touched:
                            rid = RowId(page_id, slot_no)
                            image = self.versions.reconstruct(
                                table_name, rid, row, snapshot
                            )
                            if image is not None:
                                out.append((rid, image))
                        elif row is not None:
                            out.append((RowId(page_id, slot_no), row))
                if out:
                    pages.read_row(len(out))
            if out:
                yield page_id, out

    def visible_index_rows(
        self,
        table,
        index,
        low,
        high,
        low_inclusive: bool,
        high_inclusive: bool,
        snapshot: Snapshot,
    ) -> Iterator[Tuple[Any, ...]]:
        """Index range scan as of ``snapshot``, merged in key order.

        The index reflects the *current* heap, so entries for rows
        touched by any versioned writer are set aside and re-derived
        from their reconstructed images (a concurrent key update moves
        an entry; a concurrent delete removes one the snapshot must
        still see).  Untouched entries stream straight from the B-tree;
        the overlay's reconstructed keys are sorted and merged in.
        """
        table_name = table.name
        with self.latch:
            entries = list(
                index.range_scan(
                    low=low,
                    high=high,
                    low_inclusive=low_inclusive,
                    high_inclusive=high_inclusive,
                )
            )
            versions = self.versions.table(table_name)
            touched = (
                frozenset(versions.chains.keys())
                if versions is not None
                else frozenset()
            )
            overlay: List[Tuple[Any, RowId, Tuple[Any, ...]]] = []
            heap_pages = table.pages.pages
            for rid in touched:
                heap_image = heap_pages[rid.page_id].slots[rid.slot_no]
                image = self.versions.reconstruct(
                    table_name, rid, heap_image, snapshot
                )
                if image is None:
                    continue
                key = index.key_of(image)
                if key is None or not _key_in_range(
                    key, low, high, low_inclusive, high_inclusive
                ):
                    continue
                overlay.append((key, rid, image))
            overlay.sort(key=lambda item: (item[0], item[1]))
        counters = table.pages.counters
        buffered_page_id = None
        main = iter(
            [(key, rid) for key, rid in entries if rid not in touched]
        )
        over = iter(overlay)
        next_main = next(main, None)
        next_over = next(over, None)
        while next_main is not None or next_over is not None:
            take_main = next_over is None or (
                next_main is not None and next_main[0] <= next_over[0]
            )
            if take_main:
                key, rid = next_main
                with self.latch:
                    row = heap_pages[rid.page_id].slots[rid.slot_no]
                next_main = next(main, None)
                if row is None:
                    continue
            else:
                key, rid, row = next_over
                next_over = next(over, None)
            if rid.page_id != buffered_page_id:
                counters.page_reads += 1
                buffered_page_id = rid.page_id
            counters.rows_read += 1
            yield row
