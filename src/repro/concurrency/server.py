"""Asyncio TCP front end: one session per connection, JSON-lines wire.

The protocol is newline-delimited JSON.  Request::

    {"id": 1, "sql": "SELECT * FROM t"}

Response::

    {"id": 1, "ok": true, "rows": [...], "rowcount": 2}
    {"id": 2, "ok": false, "error": {"type": "DeadlockError",
                                     "message": "..."}}

``rows`` is present for queries, ``rowcount`` for DML; transaction
control and DDL return neither.  Statements execute on a thread pool
(the engine is synchronous), so slow queries never stall the event
loop — and two connections' statements genuinely interleave, which is
the whole point of the exercise.

Failure behavior is typed end to end:

* **load shedding** — past ``max_inflight`` concurrently-executing
  statements the server rejects *before* execution with
  :class:`~repro.errors.OverloadedError`, which clients treat as
  retryable (nothing ran, so retrying is always safe);
* **graceful shutdown** — :meth:`SessionServer.stop` stops accepting,
  lets in-flight statements finish within a drain deadline, cancels
  and rolls back stragglers, and answers anything that still arrives
  with :class:`~repro.errors.ShutdownError` instead of a reset socket;
* **client timeouts** — :class:`SessionClient` bounds connect and
  statement waits; a breach raises
  :class:`~repro.errors.NetworkError` and closes the connection, since
  the outcome of the in-flight statement is unknown;
* **rehydration** — a server error whose type the client cannot map
  onto the taxonomy becomes :class:`~repro.errors.RemoteError`, so
  callers always catch ``ReproError``, never a bare ``Exception``.

:class:`SessionServer` owns the listener; :class:`SessionClient` is the
matching line-protocol client (see
:class:`~repro.concurrency.client.FailoverClient` for the multi-
endpoint retry/failover layer).  Both are asyncio-native; the
traffic-simulator benchmark drives thousands of concurrent client
coroutines against one server.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from repro.errors import NetworkError, ReproError, RemoteError

__all__ = ["SessionServer", "SessionClient"]

_MAX_LINE = 2**22  # 4 MiB — a request or response line beyond this is a bug


def _encode(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload, default=str) + "\n").encode("utf-8")


def _error_response(
    request_id: Any, type_name: str, message: str
) -> Dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": type_name, "message": message},
    }


class SessionServer:
    """Serve sessions of one :class:`~repro.api.SoftDB` over TCP.

    ``max_inflight`` caps statements executing concurrently across all
    connections; excess requests are shed with a typed, retryable
    rejection instead of queueing without bound behind the thread pool.
    """

    def __init__(
        self,
        db,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: Optional[int] = None,
    ) -> None:
        self.db = db
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: set = set()
        self._sessions: set = set()
        self._inflight = 0
        self._draining = False
        self.connections = 0
        self.statements_served = 0
        self.shed = 0
        self.stragglers = 0

    async def start(self) -> None:
        self._draining = False
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=_MAX_LINE
        )
        # Resolve the OS-assigned port for port=0.
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, drain_timeout: float = 5.0) -> None:
        """Graceful shutdown: drain, then roll back stragglers.

        New connections and new statements are answered with
        :class:`~repro.errors.ShutdownError`; statements already
        executing get ``drain_timeout`` seconds to finish.  Handler
        tasks still alive after the deadline are cancelled — each one's
        cleanup rolls back its session's open transaction — so the
        database is left transaction-consistent either way.
        """
        if self._server is None:
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + drain_timeout
        while self._inflight and loop.time() < deadline:
            await asyncio.sleep(0.005)
        self.stragglers += self._inflight
        # Flag every live session *before* any teardown runs: a
        # straggler statement blocked on a lock must see the flag when
        # the lock holder's rollback wakes it, whatever order the
        # per-connection cleanups happen to run in.  Cancellation alone
        # cannot guarantee that — it never interrupts the pool thread.
        for session in list(self._sessions):
            session.request_close()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._server = None

    async def __aenter__(self) -> "SessionServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, traceback) -> None:
        await self.stop()

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        session = self.db.session()
        self._sessions.add(session)
        self.connections += 1
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                try:
                    request = json.loads(line)
                    sql = request["sql"]
                except (ValueError, KeyError, TypeError):
                    writer.write(
                        _encode(
                            _error_response(
                                None, "ProtocolError", "malformed request line"
                            )
                        )
                    )
                    await writer.drain()
                    continue
                request_id = request.get("id")
                if self._draining:
                    # Typed rejection instead of a reset socket: the
                    # client knows to fail over, not to suspect a crash.
                    writer.write(
                        _encode(
                            _error_response(
                                request_id,
                                "ShutdownError",
                                "server is draining for shutdown",
                            )
                        )
                    )
                    await writer.drain()
                    continue
                if (
                    self.max_inflight is not None
                    and self._inflight >= self.max_inflight
                ):
                    # Shed *before* execution: the statement never ran,
                    # so the client may retry it unconditionally.
                    self.shed += 1
                    writer.write(
                        _encode(
                            _error_response(
                                request_id,
                                "OverloadedError",
                                f"server at max_inflight="
                                f"{self.max_inflight}; retry after backoff",
                            )
                        )
                    )
                    await writer.drain()
                    continue
                response: Dict[str, Any] = {"id": request_id}
                self._inflight += 1
                try:
                    # The engine is synchronous: run the statement on
                    # the default thread pool so the loop keeps serving
                    # other connections meanwhile.
                    result = await loop.run_in_executor(
                        None, session.execute, sql
                    )
                except ReproError as error:
                    response["ok"] = False
                    response["error"] = {
                        "type": type(error).__name__,
                        "message": str(error),
                    }
                else:
                    response["ok"] = True
                    if result is None:
                        pass
                    elif isinstance(result, int):
                        response["rowcount"] = result
                    else:
                        response["rows"] = result.rows
                finally:
                    self._inflight -= 1
                self.statements_served += 1
                writer.write(_encode(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        except asyncio.CancelledError:
            # Shutdown cancelled this handler (drain deadline expired);
            # returning lets cleanup run without the event loop logging
            # an unretrieved-cancellation error for the task.
            pass
        finally:
            if task is not None:
                self._tasks.discard(task)
            self._sessions.discard(session)
            # Rolls back any open transaction — the straggler cleanup
            # the drain deadline promises.
            session.close()
            # close() alone: awaiting wait_closed here would race the
            # server shutdown's task cancellation.
            writer.close()


class SessionClient:
    """Line-protocol client for :class:`SessionServer`.

    Usage::

        client = await SessionClient.connect(host, port, timeout=1.0)
        rows = (await client.execute("SELECT * FROM t"))["rows"]
        await client.close()
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0

    @classmethod
    async def connect(
        cls, host: str, port: int, timeout: Optional[float] = None
    ) -> "SessionClient":
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port, limit=_MAX_LINE),
                timeout,
            )
        except asyncio.TimeoutError:
            raise NetworkError(
                f"connect to {host}:{port} timed out after {timeout}s"
            ) from None
        except (ConnectionError, OSError) as error:
            raise NetworkError(
                f"connect to {host}:{port} failed: {error}"
            ) from error
        return cls(reader, writer)

    async def execute(
        self, sql: str, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Send one statement; returns the decoded response dict.

        A server-side error response raises the matching typed error
        (``DeadlockError`` and friends re-raise as themselves; anything
        unmapped becomes :class:`~repro.errors.RemoteError`).  A
        ``timeout`` bounds the whole round trip; a breach — or any
        transport failure — raises :class:`~repro.errors.NetworkError`
        **and closes the connection**, because the statement's outcome
        is unknown and a late response must not be mistaken for the
        answer to a later request.
        """
        self._next_id += 1
        request_id = self._next_id
        try:
            self._writer.write(_encode({"id": request_id, "sql": sql}))
            line = await asyncio.wait_for(self._round_trip(), timeout)
        except asyncio.TimeoutError:
            await self.close()
            raise NetworkError(
                f"statement timed out after {timeout}s; outcome unknown"
            ) from None
        except (ConnectionError, OSError) as error:
            await self.close()
            raise NetworkError(f"connection failed: {error}") from error
        if not line:
            await self.close()
            raise NetworkError(
                "server closed the connection mid-statement; "
                "outcome unknown"
            )
        response = json.loads(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise _rehydrate(error.get("type"), error.get("message", ""))
        return response

    async def _round_trip(self) -> bytes:
        await self._writer.drain()
        return await self._reader.readline()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _rehydrate(type_name: Optional[str], message: str) -> ReproError:
    """Map a wire error back to the typed exception it started as.

    Only :class:`~repro.errors.ReproError` subclasses defined in the
    taxonomy rehydrate as themselves; an unknown name, a non-error
    attribute that happens to match, or a malformed error frame all
    become :class:`~repro.errors.RemoteError` — the wire can degrade
    *which* typed error the caller sees, never whether it is typed.
    """
    import repro.errors as errors_module

    candidate = getattr(errors_module, type_name or "", None)
    if isinstance(candidate, type) and issubclass(candidate, ReproError):
        return candidate(message)
    return RemoteError(
        f"{type_name}: {message}", remote_type=type_name or ""
    )
