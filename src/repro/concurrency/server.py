"""Asyncio TCP front end: one session per connection, JSON-lines wire.

The protocol is newline-delimited JSON.  Request::

    {"id": 1, "sql": "SELECT * FROM t"}

Response::

    {"id": 1, "ok": true, "rows": [...], "rowcount": 2}
    {"id": 2, "ok": false, "error": {"type": "DeadlockError",
                                     "message": "..."}}

``rows`` is present for queries, ``rowcount`` for DML; transaction
control and DDL return neither.  Statements execute on a thread pool
(the engine is synchronous), so slow queries never stall the event
loop — and two connections' statements genuinely interleave, which is
the whole point of the exercise.

:class:`SessionServer` owns the listener; :class:`SessionClient` is the
matching line-protocol client.  Both are asyncio-native; the
traffic-simulator benchmark drives thousands of concurrent client
coroutines against one server.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from repro.errors import ReproError, SessionError

__all__ = ["SessionServer", "SessionClient"]

_MAX_LINE = 2**22  # 4 MiB — a request or response line beyond this is a bug


def _encode(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload, default=str) + "\n").encode("utf-8")


class SessionServer:
    """Serve sessions of one :class:`~repro.api.SoftDB` over TCP."""

    def __init__(
        self, db, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.db = db
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.connections = 0
        self.statements_served = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=_MAX_LINE
        )
        # Resolve the OS-assigned port for port=0.
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "SessionServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, traceback) -> None:
        await self.stop()

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        session = self.db.session()
        self.connections += 1
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                try:
                    request = json.loads(line)
                    sql = request["sql"]
                except (ValueError, KeyError, TypeError):
                    writer.write(
                        _encode(
                            {
                                "id": None,
                                "ok": False,
                                "error": {
                                    "type": "ProtocolError",
                                    "message": "malformed request line",
                                },
                            }
                        )
                    )
                    await writer.drain()
                    continue
                response: Dict[str, Any] = {"id": request.get("id")}
                try:
                    # The engine is synchronous: run the statement on
                    # the default thread pool so the loop keeps serving
                    # other connections meanwhile.
                    result = await loop.run_in_executor(
                        None, session.execute, sql
                    )
                except ReproError as error:
                    response["ok"] = False
                    response["error"] = {
                        "type": type(error).__name__,
                        "message": str(error),
                    }
                else:
                    response["ok"] = True
                    if result is None:
                        pass
                    elif isinstance(result, int):
                        response["rowcount"] = result
                    else:
                        response["rows"] = result.rows
                self.statements_served += 1
                writer.write(_encode(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            session.close()
            # close() alone: awaiting wait_closed here would race the
            # server shutdown's task cancellation.
            writer.close()


class SessionClient:
    """Line-protocol client for :class:`SessionServer`.

    Usage::

        client = await SessionClient.connect(host, port)
        rows = (await client.execute("SELECT * FROM t"))["rows"]
        await client.close()
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "SessionClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=_MAX_LINE
        )
        return cls(reader, writer)

    async def execute(self, sql: str) -> Dict[str, Any]:
        """Send one statement; returns the decoded response dict.

        A server-side error response raises the matching typed error
        when it is one of ours (``DeadlockError`` and friends re-raise
        as themselves), otherwise :class:`SessionError`.
        """
        self._next_id += 1
        request_id = self._next_id
        self._writer.write(_encode({"id": request_id, "sql": sql}))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise SessionError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise _rehydrate(error.get("type"), error.get("message", ""))
        return response

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass


def _rehydrate(type_name: Optional[str], message: str) -> Exception:
    """Map a wire error back to the typed exception it started as."""
    import repro.errors as errors_module

    candidate = getattr(errors_module, type_name or "", None)
    if isinstance(candidate, type) and issubclass(candidate, Exception):
        return candidate(message)
    return SessionError(f"{type_name}: {message}")
