"""Lock manager: table/row locks, waits-for graph, deadlock detection.

Writers follow strict two-phase locking — an intention-exclusive (IX)
lock on the table plus an exclusive (X) lock per row, all held until
commit or rollback.  Snapshot readers never lock (MVCC gives them a
consistent view without blocking), so the compatibility matrix is tiny:

* IX is compatible with IX (two writers may update *different* rows of
  one table concurrently);
* X is compatible with nothing but itself-by-the-same-owner.

Deadlock handling is detection, not prevention: before a transaction
blocks, its would-be wait edges are added to the waits-for graph and a
DFS looks for a cycle through the requester.  Finding one raises
:class:`~repro.errors.DeadlockError` *in the requester* (victim = the
transaction that closed the cycle — it has done the least waiting), so
a deadlock can never manifest as a hang.  The session layer rolls the
victim back, which releases its locks and wakes the survivors.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import DeadlockError, TransactionError

__all__ = ["LockManager"]

#: Lock key shapes: ("t", table_name) or ("r", table_name, rid).
LockKey = Tuple


class _Lock:
    __slots__ = ("mode", "owners", "waiters")

    def __init__(self) -> None:
        self.mode: Optional[str] = None  # "IX" | "X" | None
        self.owners: Set[int] = set()
        self.waiters: List[int] = []


class LockManager:
    """All lock state behind one mutex + condition.

    Lock operations are short critical sections (set bookkeeping and a
    DFS over the waits-for graph); actual waiting happens on the shared
    condition, re-checking grantability on every wake.
    """

    def __init__(self, timeout: float = 10.0) -> None:
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        self._locks: Dict[LockKey, _Lock] = {}
        self._held: Dict[int, Set[LockKey]] = {}
        # txn -> the txns it is currently waiting on.
        self._waits_for: Dict[int, Set[int]] = {}
        #: Backstop only: a deadlock is *detected*, never timed out, but
        #: a bug must surface as an error rather than a silent hang.
        self.timeout = timeout
        self.deadlocks_detected = 0
        self.lock_waits = 0

    # -- acquisition --------------------------------------------------------

    def lock_table_ix(self, txn_id: int, table_name: str) -> None:
        self._acquire(txn_id, ("t", table_name), "IX")

    def lock_row_x(self, txn_id: int, table_name: str, rid) -> None:
        self._acquire(txn_id, ("r", table_name, rid), "X")

    def _acquire(self, txn_id: int, key: LockKey, mode: str) -> None:
        with self._cond:
            lock = self._locks.get(key)
            if lock is None:
                lock = self._locks[key] = _Lock()
            if self._grantable(lock, txn_id, mode):
                self._grant(lock, txn_id, key, mode)
                return
            self.lock_waits += 1
            lock.waiters.append(txn_id)
            try:
                while not self._grantable(lock, txn_id, mode):
                    blockers = lock.owners - {txn_id}
                    self._waits_for[txn_id] = set(blockers)
                    cycle = self._find_cycle(txn_id)
                    if cycle is not None:
                        self.deadlocks_detected += 1
                        raise DeadlockError(
                            f"deadlock: transaction {txn_id} waiting for "
                            f"{key!r} closes the cycle "
                            f"{' -> '.join(map(str, cycle))}",
                            cycle=cycle,
                        )
                    if not self._cond.wait(self.timeout):
                        raise TransactionError(
                            f"lock wait timed out after {self.timeout}s on "
                            f"{key!r} (transaction {txn_id}; this is a "
                            f"backstop — deadlocks are detected eagerly)"
                        )
            finally:
                self._waits_for.pop(txn_id, None)
                lock.waiters.remove(txn_id)
            self._grant(lock, txn_id, key, mode)

    def _grantable(self, lock: _Lock, txn_id: int, mode: str) -> bool:
        if not lock.owners or lock.owners == {txn_id}:
            return True
        return mode == "IX" and lock.mode == "IX"

    def _grant(
        self, lock: _Lock, txn_id: int, key: LockKey, mode: str
    ) -> None:
        lock.owners.add(txn_id)
        # X dominates: a txn upgrading its own IX/X keeps the strongest.
        if lock.mode is None or mode == "X":
            lock.mode = mode
        self._held.setdefault(txn_id, set()).add(key)

    # -- deadlock detection -------------------------------------------------

    def _find_cycle(self, start: int) -> Optional[Tuple[int, ...]]:
        """DFS from ``start`` through waits-for edges; a path returning
        to ``start`` is the deadlock cycle (victim first)."""
        path: List[int] = [start]
        seen: Set[int] = set()

        def walk(txn: int) -> Optional[Tuple[int, ...]]:
            for blocker in self._waits_for.get(txn, ()):
                if blocker == start:
                    return tuple(path)
                if blocker in seen:
                    continue
                seen.add(blocker)
                path.append(blocker)
                found = walk(blocker)
                if found is not None:
                    return found
                path.pop()
            return None

        return walk(start)

    # -- release ------------------------------------------------------------

    def release_all(self, txn_id: int) -> None:
        """Drop every lock a transaction holds (commit/rollback)."""
        with self._cond:
            keys = self._held.pop(txn_id, None)
            if not keys:
                return
            for key in keys:
                lock = self._locks.get(key)
                if lock is None:
                    continue
                lock.owners.discard(txn_id)
                if not lock.owners:
                    if lock.waiters:
                        lock.mode = None
                    else:
                        del self._locks[key]
            self._cond.notify_all()

    def held_by(self, txn_id: int) -> Set[LockKey]:
        with self._mutex:
            return set(self._held.get(txn_id, ()))

    @property
    def locks_held(self) -> int:
        with self._mutex:
            return sum(len(keys) for keys in self._held.values())
