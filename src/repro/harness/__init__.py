"""Experiment harness: shared measurement and reporting utilities used by
the ``benchmarks/`` suite and the examples."""

from repro.harness.runner import (
    PlanMeasurement,
    compare_optimizers,
    measure_query,
)
from repro.harness.reporting import format_table

__all__ = [
    "PlanMeasurement",
    "compare_optimizers",
    "format_table",
    "measure_query",
]
