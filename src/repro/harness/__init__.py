"""Experiment harness: shared measurement, classification and reporting
utilities used by the ``benchmarks/`` suite, the corpus runner
(:mod:`repro.corpus`) and the examples."""

from repro.harness.classify import (
    BOTH_TIMEOUT,
    ERROR,
    FAIL,
    IMPROVED,
    MEASURED,
    NEUTRAL,
    QueryOutcome,
    REGRESSION,
    VS_TIMEOUT_CEILING,
    Validation,
    WIN,
    classify_speedup,
    normalized_row_key,
    qerror,
    result_checksum,
    speedup_type,
    summarize,
    validate_rows,
)
from repro.harness.runner import (
    PlanMeasurement,
    all_off,
    compare_optimizers,
    measure_query,
)
from repro.harness.reporting import (
    format_corpus_summary,
    format_outcomes,
    format_table,
)

__all__ = [
    "BOTH_TIMEOUT",
    "ERROR",
    "FAIL",
    "IMPROVED",
    "MEASURED",
    "NEUTRAL",
    "PlanMeasurement",
    "QueryOutcome",
    "REGRESSION",
    "VS_TIMEOUT_CEILING",
    "Validation",
    "WIN",
    "all_off",
    "classify_speedup",
    "compare_optimizers",
    "format_corpus_summary",
    "format_outcomes",
    "format_table",
    "measure_query",
    "normalized_row_key",
    "qerror",
    "result_checksum",
    "speedup_type",
    "summarize",
    "validate_rows",
]
