"""Plain-text table formatting for benchmark and corpus reports."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.harness.classify import QueryOutcome


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned text table (the form the benches print)."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for at, cell in enumerate(row):
            widths[at] = max(widths[at], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(widths[at]) for at, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append(
            "  ".join(cell.ljust(widths[at]) for at, cell in enumerate(row))
        )
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{value:.1f}"
        return f"{value:.3g}" if abs(value) < 0.01 or abs(value) >= 1e6 else f"{value:.2f}"
    return str(value)


def format_outcomes(
    outcomes: Sequence[QueryOutcome],
    title: str = "",
    statuses: Sequence[str] = (),
) -> str:
    """The per-query classification table (optionally status-filtered)."""
    rows = []
    for outcome in outcomes:
        if statuses and outcome.status not in statuses:
            continue
        validation = (
            "-" if outcome.validation is None
            else outcome.validation.confidence
            + ("" if outcome.validation.ok else " MISMATCH")
        )
        rows.append(
            [
                outcome.query_id,
                outcome.family,
                outcome.status
                + (" (ceiling)" if outcome.ceiling_bounded else ""),
                outcome.speedup,
                "-" if outcome.page_ratio is None else outcome.page_ratio,
                "-" if outcome.wall_ratio is None else outcome.wall_ratio,
                validation,
            ]
        )
    return format_table(
        ["query", "family", "status", "speedup x", "pages x", "wall x",
         "validation"],
        rows,
        title=title,
    )


def format_corpus_summary(summary: Dict[str, Any], title: str = "") -> str:
    """The aggregate classification summary as a metric/value table.

    Nested dictionaries (status counts, per-status worst q-error,
    confidence counts) are flattened to dotted metric names.
    """
    rows: List[List[Any]] = []
    for key, value in summary.items():
        if isinstance(value, dict):
            for inner_key, inner_value in value.items():
                rows.append([f"{key}.{inner_key}", inner_value])
        elif isinstance(value, list):
            rows.append([key, ", ".join(map(str, value)) or "-"])
        else:
            rows.append([key, "-" if value is None else value])
    return format_table(["metric", "value"], rows, title=title)
