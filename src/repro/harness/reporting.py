"""Plain-text table formatting for benchmark reports."""

from __future__ import annotations

from typing import Any, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned text table (the form the benches print)."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for at, cell in enumerate(row):
            widths[at] = max(widths[at], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(widths[at]) for at, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append(
            "  ".join(cell.ljust(widths[at]) for at, cell in enumerate(row))
        )
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{value:.1f}"
        return f"{value:.3g}" if abs(value) < 0.01 or abs(value) >= 1e6 else f"{value:.2f}"
    return str(value)
