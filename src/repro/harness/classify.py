"""The WIN/REGRESSION classification layer for A/B query measurements.

This is the corpus harness's contract (borrowed from querytorque's
knowledge-engine vocabulary): every query run under a candidate vs. a
baseline configuration gets

* a **status** from its speedup ratio — WIN (>= 1.10x), IMPROVED
  (>= 1.05x), NEUTRAL (>= 0.95x), REGRESSION (below), with ERROR for
  execution/validation failures and FAIL for structural ones (parse or
  bind errors);
* a **speedup type** — ``measured`` when both sides ran to completion,
  ``vs_timeout_ceiling`` when the baseline was guard-truncated (the
  ratio is a lower bound computed against the ceiling, and is inflated),
  ``both_timeout`` when both sides tripped (the ratio is meaningless and
  pinned to 1.0).  The segregation rule: ceiling-bounded results never
  enter measured aggregates;
* a **validation confidence** against the oracle executor — ``high``
  (row count and order-insensitive checksum both match),
  ``row_count_only`` (counts compared, checksum skipped), and
  ``zero_row_unverified`` (both sides empty: nothing to checksum).

:func:`summarize` folds a list of :class:`QueryOutcome` into the
machine-readable shape ``BENCH_e15.json`` records and
``check_bench_regression.py`` gates.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

# -- status vocabulary (shared contract values; use exactly) ----------------

WIN = "WIN"
IMPROVED = "IMPROVED"
NEUTRAL = "NEUTRAL"
REGRESSION = "REGRESSION"
ERROR = "ERROR"
FAIL = "FAIL"

STATUSES = (WIN, IMPROVED, NEUTRAL, REGRESSION, ERROR, FAIL)

WIN_THRESHOLD = 1.10
IMPROVED_THRESHOLD = 1.05
NEUTRAL_THRESHOLD = 0.95

# -- speedup types ----------------------------------------------------------

MEASURED = "measured"
VS_TIMEOUT_CEILING = "vs_timeout_ceiling"
BOTH_TIMEOUT = "both_timeout"

# -- validation confidence ---------------------------------------------------

CONFIDENCE_HIGH = "high"
CONFIDENCE_ROW_COUNT_ONLY = "row_count_only"
CONFIDENCE_ZERO_ROW = "zero_row_unverified"


def classify_speedup(ratio: float) -> str:
    """Status for a measured baseline/candidate ratio (>1 = candidate won).

    Thresholds are inclusive: exactly 1.10x is a WIN, exactly 1.05x is
    IMPROVED, exactly 0.95x is NEUTRAL.
    """
    if ratio >= WIN_THRESHOLD:
        return WIN
    if ratio >= IMPROVED_THRESHOLD:
        return IMPROVED
    if ratio >= NEUTRAL_THRESHOLD:
        return NEUTRAL
    return REGRESSION


def speedup_type(
    candidate_truncated: bool, baseline_truncated: bool
) -> str:
    """Which of the contract's speedup types a run pair produced."""
    if candidate_truncated and baseline_truncated:
        return BOTH_TIMEOUT
    if candidate_truncated or baseline_truncated:
        return VS_TIMEOUT_CEILING
    return MEASURED


# -- result normalization and checksums --------------------------------------


def normalized_row_key(row: Sequence[Any]) -> Tuple[Any, ...]:
    """Sort key tolerant of None and float summation-order noise.

    Floats are quantized to 12 significant digits: different plans sum in
    different orders, and the resulting last-ulp differences are not
    correctness violations.
    """
    normalized = []
    for value in row:
        if value is None:
            normalized.append((True, ""))
        elif isinstance(value, float):
            normalized.append((False, float(f"{value:.12g}")))
        else:
            normalized.append((False, value))
    return tuple(normalized)


def result_checksum(tuples: Iterable[Sequence[Any]]) -> str:
    """Order-insensitive checksum of a result multiset.

    Rows are normalized (:func:`normalized_row_key`), sorted, and hashed,
    so two plans producing the same rows in any order — with float
    aggregates differing only in the last ulps — checksum identically.
    """
    digest = hashlib.md5()
    for key in sorted(repr(normalized_row_key(row)) for row in tuples):
        digest.update(key.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass
class Validation:
    """One candidate-vs-oracle comparison, nested per the contract."""

    confidence: str
    rows_match: bool
    checksum_match: Optional[bool] = None

    @property
    def ok(self) -> bool:
        return self.rows_match and self.checksum_match is not False

    def as_dict(self) -> Dict[str, Any]:
        return {
            "confidence": self.confidence,
            "rows_match": self.rows_match,
            "checksum_match": self.checksum_match,
        }


def validate_rows(
    candidate: Sequence[Sequence[Any]],
    oracle: Sequence[Sequence[Any]],
    with_checksum: bool = True,
) -> Validation:
    """Row count + order-insensitive checksum against the oracle's rows."""
    rows_match = len(candidate) == len(oracle)
    if rows_match and len(oracle) == 0:
        return Validation(CONFIDENCE_ZERO_ROW, True, None)
    if not with_checksum:
        return Validation(CONFIDENCE_ROW_COUNT_ONLY, rows_match, None)
    checksum_match = rows_match and (
        result_checksum(candidate) == result_checksum(oracle)
    )
    return Validation(CONFIDENCE_HIGH, rows_match, checksum_match)


# -- per-query outcomes -------------------------------------------------------


@dataclass
class QueryOutcome:
    """One corpus query's classified A/B measurement."""

    query_id: str
    sql: str
    family: str = ""
    status: str = NEUTRAL
    #: Ratio the status was computed from (baseline/candidate on the
    #: runner's primary metric).
    speedup: float = 1.0
    speedup_type: str = MEASURED
    page_ratio: Optional[float] = None
    wall_ratio: Optional[float] = None
    cached_wall_ratio: Optional[float] = None
    candidate_pages: Optional[int] = None
    baseline_pages: Optional[int] = None
    candidate_s: Optional[float] = None
    baseline_s: Optional[float] = None
    row_count: Optional[int] = None
    qerror: Optional[float] = None
    validation: Optional[Validation] = None
    rewrites: List[str] = field(default_factory=list)
    error: Optional[str] = None

    def speedup_for(self, metric: str) -> float:
        """The ratio the runner's primary metric selects (1.0 when the
        measurement is missing)."""
        ratio = self.page_ratio if metric == "pages" else self.wall_ratio
        return 1.0 if ratio is None else ratio

    @property
    def ceiling_bounded(self) -> bool:
        """True when a guard truncation bounded either side's timing —
        such runs never enter measured aggregates."""
        return self.speedup_type != MEASURED

    @property
    def validation_ok(self) -> bool:
        return self.validation is None or self.validation.ok

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "query_id": self.query_id,
            "family": self.family,
            "status": self.status,
            "speedup": _round(self.speedup),
            "speedup_type": self.speedup_type,
            "page_ratio": _round(self.page_ratio),
            "wall_ratio": _round(self.wall_ratio),
            "cached_wall_ratio": _round(self.cached_wall_ratio),
            "candidate_pages": self.candidate_pages,
            "baseline_pages": self.baseline_pages,
            "row_count": self.row_count,
            "qerror": _round(self.qerror),
            "validation": (
                None if self.validation is None else self.validation.as_dict()
            ),
            "rewrites": list(self.rewrites),
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload


def _round(value: Optional[float], digits: int = 4) -> Optional[float]:
    return None if value is None else round(value, digits)


def qerror(estimated: float, actual: float) -> float:
    """The symmetric cardinality estimation error, floored at one row."""
    estimated = max(1.0, float(estimated))
    actual = max(1.0, float(actual))
    return max(estimated / actual, actual / estimated)


# -- aggregation --------------------------------------------------------------


def summarize(outcomes: Sequence[QueryOutcome]) -> Dict[str, Any]:
    """Fold outcomes into the gated summary shape.

    The measured/ceiling segregation rule is enforced here: win rate,
    mean speedup and per-status worst q-error aggregate *measured*
    outcomes only; ceiling-bounded runs are reported solely as a count
    plus their statuses (their ratios are bounds, not measurements).
    """
    measured = [o for o in outcomes if not o.ceiling_bounded]
    ceiling = [o for o in outcomes if o.ceiling_bounded]
    status_counts = {status: 0 for status in STATUSES}
    for outcome in outcomes:
        status_counts[outcome.status] += 1
    measured_ok = [
        o for o in measured if o.status not in (ERROR, FAIL)
    ]
    wins = sum(1 for o in measured_ok if o.status == WIN)
    worst_qerror: Dict[str, float] = {}
    for outcome in measured_ok:
        if outcome.qerror is None:
            continue
        prior = worst_qerror.get(outcome.status, 1.0)
        worst_qerror[outcome.status] = max(prior, outcome.qerror)
    mismatches = sum(1 for o in outcomes if not o.validation_ok)
    return {
        "queries": len(outcomes),
        "status_counts": status_counts,
        "win_rate": round(wins / len(measured_ok), 4) if measured_ok else 0.0,
        "wins": wins,
        "regressions": status_counts[REGRESSION],
        "errors": status_counts[ERROR] + status_counts[FAIL],
        "validation_mismatches": mismatches,
        "measured_queries": len(measured_ok),
        "mean_measured_speedup": (
            round(
                sum(o.speedup for o in measured_ok) / len(measured_ok), 4
            )
            if measured_ok
            else None
        ),
        "worst_qerror_by_status": {
            status: round(value, 3)
            for status, value in sorted(worst_qerror.items())
        },
        "ceiling_bounded": len(ceiling),
        "ceiling_statuses": sorted(o.status for o in ceiling),
        "validation_confidence_counts": _confidence_counts(outcomes),
    }


def _confidence_counts(outcomes: Sequence[QueryOutcome]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for outcome in outcomes:
        if outcome.validation is None:
            continue
        confidence = outcome.validation.confidence
        counts[confidence] = counts.get(confidence, 0) + 1
    return dict(sorted(counts.items()))
