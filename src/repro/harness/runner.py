"""Measurement helpers shared by the benchmark suite.

Classification of A/B measurements (WIN/REGRESSION statuses, validation
confidence, measured-vs-ceiling segregation) lives in
:mod:`repro.harness.classify`; this module supplies the raw measurements
those statuses are computed from.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.api import SoftDB
from repro.executor.runtime import ExecutionResult, Executor
from repro.harness.classify import normalized_row_key
from repro.optimizer.planner import Optimizer, OptimizerConfig
from repro.optimizer.physical import PhysicalPlan


class PlanMeasurement:
    """One measured execution: plan provenance + actual I/O + results."""

    def __init__(
        self, label: str, plan: PhysicalPlan, result: ExecutionResult
    ) -> None:
        self.label = label
        self.plan = plan
        self.result = result

    @property
    def page_reads(self) -> int:
        return self.result.page_reads

    @property
    def row_count(self) -> int:
        return self.result.row_count

    @property
    def estimated_rows(self) -> float:
        return self.plan.estimated_rows

    @property
    def rewrites(self) -> List[str]:
        return self.plan.rewrites_applied

    def __repr__(self) -> str:
        return (
            f"PlanMeasurement({self.label}: rows={self.row_count}, "
            f"pages={self.page_reads})"
        )


def measure_query(
    db: SoftDB,
    sql: str,
    optimizer: Optional[Optimizer] = None,
    label: str = "",
) -> PlanMeasurement:
    """Optimize and execute, capturing plan and actual I/O."""
    chosen = optimizer if optimizer is not None else db.optimizer
    plan = chosen.optimize(sql)
    result = Executor(db.database).execute(plan)
    return PlanMeasurement(label or sql[:40], plan, result)


def compare_optimizers(
    db: SoftDB,
    sql: str,
    enabled_config: Optional[OptimizerConfig] = None,
    disabled_config: Optional[OptimizerConfig] = None,
    check_same_answers: bool = True,
) -> Tuple[PlanMeasurement, PlanMeasurement]:
    """Run the same query with a mechanism on vs. off.

    Returns (with_mechanism, without_mechanism) measurements; asserts the
    two plans return identical multisets of rows (the correctness
    guarantee every semantics-preserving rewrite must satisfy).
    """
    with_optimizer = Optimizer(
        db.database, db.registry, enabled_config or OptimizerConfig()
    )
    without_optimizer = Optimizer(
        db.database,
        db.registry,
        disabled_config or _all_off(),
    )
    enabled = measure_query(db, sql, with_optimizer, label="with")
    disabled = measure_query(db, sql, without_optimizer, label="without")
    if check_same_answers:
        left = sorted(map(_row_key, enabled.result.tuples()))
        right = sorted(map(_row_key, disabled.result.tuples()))
        if left != right:
            raise AssertionError(
                f"rewrite changed answers for {sql!r}: "
                f"{len(left)} vs {len(right)} rows"
            )
    return enabled, disabled


#: Result-row sort key; canonical implementation is in the classify layer.
_row_key = normalized_row_key


def all_off(**overrides: Any) -> OptimizerConfig:
    """The SC-off baseline: every constraint-driven mechanism disabled.

    ``overrides`` pass through to :class:`OptimizerConfig` (e.g.
    ``batch_size=0, compile_expressions=False`` selects the interpreted
    row-at-a-time oracle configuration).
    """
    return OptimizerConfig(
        enable_branch_elimination=False,
        enable_join_elimination=False,
        enable_groupby_simplification=False,
        enable_ast_routing=False,
        enable_predicate_introduction=False,
        enable_hole_trimming=False,
        enable_twinning=False,
        use_twinning_in_estimation=False,
        **overrides,
    )


#: Backwards-compatible alias (the pre-corpus private name).
_all_off = all_off
