"""A simple workload model: queries with frequencies and their features.

The selection stage (paper Section 3.2) chooses soft constraints by their
expected utility "with respect to the optimizer's capabilities, the
database's statistics, and the workload".  This module extracts the
workload features that utility scoring needs: which columns queries
predicate on (and how), which join paths they use, and what they group or
order by.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Set, Tuple, Union

from repro.expr import analysis
from repro.sql import ast
from repro.sql.parser import parse_statement


class WorkloadQuery:
    """One workload query with an occurrence frequency."""

    def __init__(self, sql: str, frequency: float = 1.0) -> None:
        self.sql = sql
        self.frequency = frequency
        statement = parse_statement(sql)
        if not isinstance(statement, (ast.SelectStatement, ast.UnionAll)):
            raise ValueError("workload queries must be SELECT statements")
        self.statement = statement
        self.tables: Set[str] = set()
        self.alias_to_table: Dict[str, str] = {}
        self.predicate_columns: Set[Tuple[str, str]] = set()  # (table, column)
        self.equality_columns: Set[Tuple[str, str]] = set()
        self.range_columns: Set[Tuple[str, str]] = set()
        self.join_pairs: Set[Tuple[str, str, str, str]] = set()
        self.group_by_columns: List[Tuple[str, str]] = []
        self.order_by_columns: List[Tuple[str, str]] = []
        blocks = (
            statement.branches
            if isinstance(statement, ast.UnionAll)
            else [statement]
        )
        for block in blocks:
            self._extract(block)

    # -- feature extraction ----------------------------------------------------

    def _extract(self, block: ast.SelectStatement) -> None:
        for item in block.from_clause:
            self._collect_tables(item)
        conjuncts = analysis.split_conjuncts(block.where)
        for item in block.from_clause:
            conjuncts.extend(self._join_conditions(item))
        for conjunct in conjuncts:
            self._classify(conjunct)
        for expression in block.group_by:
            if isinstance(expression, ast.ColumnRef):
                self.group_by_columns.append(self._resolve(expression))
        for order in block.order_by:
            if isinstance(order.expression, ast.ColumnRef):
                self.order_by_columns.append(self._resolve(order.expression))

    def _collect_tables(self, item: Union[ast.TableRef, ast.Join]) -> None:
        if isinstance(item, ast.TableRef):
            self.tables.add(item.name)
            self.alias_to_table[item.binding] = item.name
        else:
            self._collect_tables(item.left)
            self._collect_tables(item.right)

    def _join_conditions(
        self, item: Union[ast.TableRef, ast.Join]
    ) -> List[ast.Expression]:
        if isinstance(item, ast.TableRef):
            return []
        conditions = (
            analysis.split_conjuncts(item.condition) if item.condition else []
        )
        return (
            conditions
            + self._join_conditions(item.left)
            + self._join_conditions(item.right)
        )

    def _classify(self, conjunct: ast.Expression) -> None:
        equijoin = analysis.match_equijoin(conjunct)
        if equijoin is not None:
            left, right = equijoin
            left_table, left_column = self._resolve(left)
            right_table, right_column = self._resolve(right)
            key = tuple(
                sorted(
                    [(left_table, left_column), (right_table, right_column)]
                )
            )
            self.join_pairs.add((key[0][0], key[0][1], key[1][0], key[1][1]))
            return
        comparison = analysis.match_column_comparison(conjunct)
        if comparison is not None:
            resolved = self._resolve(comparison.column)
            self.predicate_columns.add(resolved)
            if comparison.op == "=":
                self.equality_columns.add(resolved)
            else:
                self.range_columns.add(resolved)
            return
        between = analysis.match_column_between(conjunct)
        if between is not None:
            resolved = self._resolve(between[0])
            self.predicate_columns.add(resolved)
            self.range_columns.add(resolved)
            return
        for column in analysis.columns_in(conjunct):
            self.predicate_columns.add(self._resolve(column))

    def _resolve(self, column: ast.ColumnRef) -> Tuple[str, str]:
        """Map a column reference to (base_table, column)."""
        if column.table is not None:
            base = self.alias_to_table.get(column.table, column.table)
            return base, column.column
        if len(self.tables) == 1:
            return next(iter(self.tables)), column.column
        return "", column.column

    def __repr__(self) -> str:
        return f"WorkloadQuery({self.sql[:60]!r}, f={self.frequency})"


class Workload:
    """A weighted set of workload queries with aggregate feature counts."""

    def __init__(self, queries: Sequence[WorkloadQuery] = ()) -> None:
        self.queries: List[WorkloadQuery] = list(queries)

    @classmethod
    def from_sql(
        cls, statements: Sequence[Union[str, Tuple[str, float]]]
    ) -> "Workload":
        """Build from SQL strings or (sql, frequency) pairs."""
        queries = []
        for entry in statements:
            if isinstance(entry, tuple):
                queries.append(WorkloadQuery(entry[0], entry[1]))
            else:
                queries.append(WorkloadQuery(entry))
        return cls(queries)

    def add(self, sql: str, frequency: float = 1.0) -> WorkloadQuery:
        query = WorkloadQuery(sql, frequency)
        self.queries.append(query)
        return query

    @property
    def total_frequency(self) -> float:
        return sum(q.frequency for q in self.queries)

    def predicate_frequency(self, table: str, column: str) -> float:
        """Total frequency of queries predicating on (table, column)."""
        key = (table.lower(), column.lower())
        return sum(
            q.frequency for q in self.queries if key in q.predicate_columns
        )

    def equality_frequency(self, table: str, column: str) -> float:
        key = (table.lower(), column.lower())
        return sum(
            q.frequency for q in self.queries if key in q.equality_columns
        )

    def range_frequency(self, table: str, column: str) -> float:
        key = (table.lower(), column.lower())
        return sum(
            q.frequency for q in self.queries if key in q.range_columns
        )

    def join_frequency(
        self, table_one: str, column_one: str, table_two: str, column_two: str
    ) -> float:
        """Frequency of the equi-join path in the workload (order-free)."""
        key = tuple(
            sorted(
                [
                    (table_one.lower(), column_one.lower()),
                    (table_two.lower(), column_two.lower()),
                ]
            )
        )
        wanted = (key[0][0], key[0][1], key[1][0], key[1][1])
        return sum(
            q.frequency for q in self.queries if wanted in q.join_pairs
        )

    def grouping_frequency(self, table: str, columns: Sequence[str]) -> float:
        """Frequency of queries grouping/ordering by all given columns."""
        wanted = {(table.lower(), c.lower()) for c in columns}
        total = 0.0
        for query in self.queries:
            keys = set(query.group_by_columns) | set(query.order_by_columns)
            if wanted <= keys:
                total += query.frequency
        return total

    def common_column_pairs(
        self, table: str, minimum_frequency: float = 1.0
    ) -> List[Tuple[str, str]]:
        """Column pairs of one table that co-occur in query predicates.

        This is the workload-directed search-space restriction for the
        linear miner (the paper: pairs "which appear together commonly in
        workload queries").
        """
        pair_counts: Counter = Counter()
        table = table.lower()
        for query in self.queries:
            columns = sorted(
                {
                    column
                    for (t, column) in query.predicate_columns
                    if t == table
                }
            )
            for at, first in enumerate(columns):
                for second in columns[at + 1 :]:
                    pair_counts[(first, second)] += query.frequency
        return [
            pair
            for pair, count in pair_counts.most_common()
            if count >= minimum_frequency
        ]
