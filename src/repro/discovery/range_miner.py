"""Mining range characterizations: min/max SCs and range CHECK SCs.

Two flavours:

* :func:`mine_min_max` — the Sybase-style per-column min/max facts the
  paper cites in Section 2, emitted as :class:`MinMaxSC` candidates;
* :func:`mine_range_checks` — per-table range CHECK statements over a
  column, the characterization behind union-all branch knockout
  (Section 5: monthly partitions each carrying a range constraint).
  When the partitioning is *not* declared, mining each branch's actual
  min/max recovers the constraint as an SC.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.engine.database import Database
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.minmax import MinMaxSC
from repro.sql import ast


def mine_min_max(
    database: Database,
    table_name: str,
    columns: Optional[Sequence[str]] = None,
) -> List[MinMaxSC]:
    """Min/max SC candidates for each (ordered, non-empty) column."""
    table = database.table(table_name)
    schema = table.schema
    names = [c.lower() for c in columns] if columns else schema.column_names()
    lows: dict = {}
    highs: dict = {}
    positions = {name: schema.position(name) for name in names}
    for row in table.scan_rows():
        for name in names:
            value = row[positions[name]]
            if value is None:
                continue
            if name not in lows or value < lows[name]:
                lows[name] = value
            if name not in highs or value > highs[name]:
                highs[name] = value
    return [
        MinMaxSC(
            name=f"minmax_{table_name}_{name}",
            table_name=table_name,
            column_name=name,
            low=lows[name],
            high=highs[name],
        )
        for name in names
        if name in lows
    ]


def mine_range_checks(
    database: Database,
    table_names: Sequence[str],
    column_name: str,
    as_dates: bool = False,
) -> List[CheckSoftConstraint]:
    """One range CHECK SC per table over a shared column.

    Intended for the branches of a UNION ALL view: each branch table gets
    ``CHECK (column BETWEEN observed_min AND observed_max)``, recovering
    the partitioning constraint the optimizer needs for branch knockout.
    ``as_dates`` marks the literals as dates for display.
    """
    constraints: List[CheckSoftConstraint] = []
    for table_name in table_names:
        bounds = mine_min_max(database, table_name, [column_name])
        if not bounds:
            continue
        low, high = bounds[0].low, bounds[0].high
        expression = ast.BetweenExpr(
            ast.ColumnRef(column_name),
            ast.Literal(low, is_date=as_dates),
            ast.Literal(high, is_date=as_dates),
        )
        constraints.append(
            CheckSoftConstraint(
                name=f"range_{table_name}_{column_name}",
                table_name=table_name,
                condition=expression,
            )
        )
    return constraints
