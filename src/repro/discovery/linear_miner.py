"""Mining linear correlations between numeric attribute pairs.

Implements the discovery procedure the paper builds on ([10], Section 2):
for pairs of numeric attributes (A, B) of one table, find the best linear
formula ``A = k*B + b`` and a deviation ``eps`` such that (a fraction of)
A's values fall within ``eps`` of ``k*B + b``.  The formula must be fairly
*selective* — ``eps`` small relative to A's value range — or the
introduced BETWEEN predicate selects nearly everything and is useless; a
threshold bounds acceptable ``eps`` exactly as in the paper.

The miner emits one candidate per requested confidence level: the 100%
quantile of absolute residuals yields an ASC candidate, lower quantiles
yield SSC candidates with correspondingly tighter deviations — the paper's
"should the database also keep eps_70 and eps_80?" question made concrete.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.database import Database
from repro.softcon.linear import LinearCorrelationSC


class LinearFit:
    """A fitted linear model between one attribute pair."""

    __slots__ = ("column_a", "column_b", "slope", "intercept",
                 "residual_quantiles", "a_range", "sample_size", "r_squared")

    def __init__(
        self,
        column_a: str,
        column_b: str,
        slope: float,
        intercept: float,
        residual_quantiles: Dict[float, float],
        a_range: float,
        sample_size: int,
        r_squared: float,
    ) -> None:
        self.column_a = column_a
        self.column_b = column_b
        self.slope = slope
        self.intercept = intercept
        self.residual_quantiles = residual_quantiles
        self.a_range = a_range
        self.sample_size = sample_size
        self.r_squared = r_squared

    def epsilon_at(self, confidence: float) -> float:
        return self.residual_quantiles[confidence]

    def selectivity_at(self, confidence: float) -> float:
        """Width of the introduced band relative to A's range.

        Small is good: the introduced BETWEEN predicate admits roughly
        this fraction of the table.
        """
        if self.a_range <= 0:
            return 1.0
        return min(1.0, (2.0 * self.epsilon_at(confidence)) / self.a_range)

    def __repr__(self) -> str:
        return (
            f"LinearFit({self.column_a} = {self.slope:.4g}*{self.column_b} "
            f"+ {self.intercept:.4g}, r2={self.r_squared:.3f}, "
            f"n={self.sample_size})"
        )


class LinearMiner:
    """Searches attribute pairs of one table for usable linear models.

    Parameters
    ----------
    confidence_levels:
        Residual quantiles to report (1.0 must be included for ASC
        candidates).
    max_band_selectivity:
        The paper's threshold on acceptable ``eps``: a candidate is kept at
        a confidence level only if the introduced band admits at most this
        fraction of A's range.
    min_rows:
        Pairs with fewer non-NULL co-occurring rows are skipped.
    """

    def __init__(
        self,
        confidence_levels: Sequence[float] = (1.0, 0.99, 0.95, 0.9),
        max_band_selectivity: float = 0.25,
        min_rows: int = 20,
    ) -> None:
        if 1.0 not in confidence_levels:
            confidence_levels = tuple(confidence_levels) + (1.0,)
        self.confidence_levels = tuple(sorted(confidence_levels, reverse=True))
        self.max_band_selectivity = max_band_selectivity
        self.min_rows = min_rows

    # -- fitting one pair -----------------------------------------------------

    def fit_pair(
        self, a_values: Sequence[float], b_values: Sequence[float],
        column_a: str = "a", column_b: str = "b",
    ) -> Optional[LinearFit]:
        """Least-squares fit of A on B with residual quantiles."""
        pairs = [
            (a, b)
            for a, b in zip(a_values, b_values)
            if a is not None and b is not None
        ]
        if len(pairs) < self.min_rows:
            return None
        a_array = np.array([p[0] for p in pairs], dtype=float)
        b_array = np.array([p[1] for p in pairs], dtype=float)
        b_variance = float(np.var(b_array))
        if b_variance <= 0:
            return None
        slope = float(np.cov(b_array, a_array, bias=True)[0, 1] / b_variance)
        intercept = float(np.mean(a_array) - slope * np.mean(b_array))
        residuals = np.abs(a_array - (slope * b_array + intercept))
        quantiles = {
            level: float(np.quantile(residuals, level))
            for level in self.confidence_levels
        }
        a_range = float(a_array.max() - a_array.min())
        total_variance = float(np.var(a_array))
        explained = 0.0 if total_variance <= 0 else 1.0 - float(
            np.mean((a_array - (slope * b_array + intercept)) ** 2)
        ) / total_variance
        return LinearFit(
            column_a=column_a,
            column_b=column_b,
            slope=slope,
            intercept=intercept,
            residual_quantiles=quantiles,
            a_range=a_range,
            sample_size=len(pairs),
            r_squared=max(0.0, explained),
        )

    # -- mining a table -----------------------------------------------------------

    def mine_table(
        self,
        database: Database,
        table_name: str,
        column_pairs: Optional[Iterable[Tuple[str, str]]] = None,
    ) -> List[LinearCorrelationSC]:
        """Mine candidates for a table.

        ``column_pairs`` restricts the search (e.g. to pairs that co-occur
        in workload queries, as the paper suggests); by default every
        ordered pair of numeric columns is examined.
        """
        table = database.table(table_name)
        schema = table.schema
        if column_pairs is None:
            numeric = [c.name for c in schema.columns if c.type.is_numeric]
            column_pairs = [
                (a, b) for a, b in itertools.permutations(numeric, 2)
            ]
        columns_needed = sorted({c for pair in column_pairs for c in pair})
        positions = {name: schema.position(name) for name in columns_needed}
        data: Dict[str, List[float]] = {name: [] for name in columns_needed}
        for row in table.scan_rows():
            for name in columns_needed:
                data[name].append(row[positions[name]])

        candidates: List[LinearCorrelationSC] = []
        for column_a, column_b in column_pairs:
            fit = self.fit_pair(
                data[column_a], data[column_b], column_a, column_b
            )
            if fit is None:
                continue
            for level in self.confidence_levels:
                if fit.selectivity_at(level) > self.max_band_selectivity:
                    continue
                suffix = "asc" if level >= 1.0 else f"ssc{int(level * 100)}"
                candidates.append(
                    LinearCorrelationSC(
                        name=f"lin_{table_name}_{column_a}_{column_b}_{suffix}",
                        table_name=table_name,
                        column_a=column_a,
                        column_b=column_b,
                        slope=fit.slope,
                        intercept=fit.intercept,
                        epsilon=fit.epsilon_at(level),
                        confidence=level,
                    )
                )
        return candidates


def mine_linear_correlations(
    database: Database,
    table_name: str,
    column_pairs: Optional[Iterable[Tuple[str, str]]] = None,
    confidence_levels: Sequence[float] = (1.0, 0.99, 0.95, 0.9),
    max_band_selectivity: float = 0.25,
) -> List[LinearCorrelationSC]:
    """Convenience wrapper over :class:`LinearMiner`."""
    miner = LinearMiner(
        confidence_levels=confidence_levels,
        max_band_selectivity=max_band_selectivity,
    )
    return miner.mine_table(database, table_name, column_pairs)


def mine_join_linear_correlation(
    database: Database,
    table_one: str,
    column_a: str,
    table_two: str,
    column_b: str,
    join_column_one: str,
    join_column_two: str,
    confidence_levels: Sequence[float] = (1.0, 0.99, 0.95, 0.9),
    max_band_selectivity: float = 0.25,
    min_rows: int = 20,
):
    """Mine a linear correlation *across a join path* (paper Section 2:
    "it would be possible in principle to mine for these linear
    correlations between attributes across common join paths").

    Fits ``one.a ~= k * two.b + c`` over the pairs of ``one ⋈ two`` and
    emits one :class:`~repro.softcon.joinlinear.JoinLinearSC` candidate
    per confidence level passing the band-selectivity threshold.
    """
    from repro.softcon.joinlinear import JoinLinearSC
    from repro.softcon.joinpath import JoinPathSpec

    spec = JoinPathSpec(
        table_one, column_a, table_two, column_b,
        join_column_one, join_column_two,
    )
    pairs = [
        (a, b)
        for a, b in spec.join_pairs(database)
        if a is not None and b is not None
    ]
    miner = LinearMiner(
        confidence_levels=confidence_levels,
        max_band_selectivity=max_band_selectivity,
        min_rows=min_rows,
    )
    fit = miner.fit_pair(
        [a for a, _ in pairs], [b for _, b in pairs], column_a, column_b
    )
    if fit is None:
        return []
    candidates = []
    for level in miner.confidence_levels:
        if fit.selectivity_at(level) > max_band_selectivity:
            continue
        suffix = "asc" if level >= 1.0 else f"ssc{int(level * 100)}"
        candidates.append(
            JoinLinearSC(
                name=(
                    f"jlin_{table_one}_{column_a}_{table_two}_"
                    f"{column_b}_{suffix}"
                ),
                table_one=table_one,
                column_a=column_a,
                table_two=table_two,
                column_b=column_b,
                join_column_one=join_column_one,
                join_column_two=join_column_two,
                slope=fit.slope,
                intercept=fit.intercept,
                epsilon=fit.epsilon_at(level),
                confidence=level,
            )
        )
    return candidates
