"""Discovering join holes: maximal empty rectangles over a join path.

From the paper ([8], Section 2): for a join path ``one ⋈ two`` and
attributes ``one.a``, ``two.b``, find the maximal two-dimensional ranges
containing **no** tuple of the join result.  The published algorithm is
linear in the size of the join result; we reproduce that complexity
profile with a two-phase approach:

1. one pass over the join result drops every (a, b) pair onto a ``g × g``
   grid over the bounding box — O(|join|);
2. maximal empty rectangles are found *on the grid* with the classic
   largest-rectangle-in-a-histogram sweep — O(g²) independent of data
   size.

Any rectangle of empty cells is guaranteed point-free, so the discovered
holes are sound (possibly slightly smaller than the true maximal holes —
the price of the grid resolution).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.database import Database
from repro.softcon.holes import JoinHolesSC, Rectangle


class GridHole:
    """A maximal empty rectangle in grid coordinates (inclusive cells)."""

    __slots__ = ("row_lo", "row_hi", "col_lo", "col_hi")

    def __init__(self, row_lo: int, row_hi: int, col_lo: int, col_hi: int) -> None:
        self.row_lo = row_lo
        self.row_hi = row_hi
        self.col_lo = col_lo
        self.col_hi = col_hi

    @property
    def cell_count(self) -> int:
        return (self.row_hi - self.row_lo + 1) * (self.col_hi - self.col_lo + 1)

    def __repr__(self) -> str:
        return (
            f"GridHole(rows={self.row_lo}..{self.row_hi}, "
            f"cols={self.col_lo}..{self.col_hi})"
        )


def maximal_empty_rectangles(occupied: np.ndarray) -> List[GridHole]:
    """All maximal empty (all-False) rectangles of a boolean grid.

    Histogram-based sweep: for each row, maintain the count of consecutive
    empty cells above; every position where the histogram drops closes
    candidate rectangles.  Candidates are then filtered to keep only
    maximal ones (no candidate contains another).
    """
    rows, cols = occupied.shape
    heights = np.zeros(cols, dtype=int)
    candidates: List[GridHole] = []
    for row in range(rows):
        heights = np.where(occupied[row], 0, heights + 1)
        candidates.extend(_row_candidates(heights, row, cols))
    return _keep_maximal(candidates)


def _row_candidates(
    heights: np.ndarray, row: int, cols: int
) -> List[GridHole]:
    """Maximal-width rectangles ending at ``row`` from the height profile."""
    result: List[GridHole] = []
    stack: List[Tuple[int, int]] = []  # (start_col, height)
    for col in range(cols + 1):
        height = int(heights[col]) if col < cols else 0
        start = col
        while stack and stack[-1][1] >= height:
            open_col, open_height = stack.pop()
            if open_height > 0 and (not stack or stack[-1][1] < open_height):
                result.append(
                    GridHole(
                        row - open_height + 1, row, open_col, col - 1
                    )
                )
            start = open_col
        if height > 0 and (not stack or stack[-1][1] < height):
            stack.append((start, height))
    return result


def _keep_maximal(candidates: List[GridHole]) -> List[GridHole]:
    """Drop candidates contained in another candidate."""
    kept: List[GridHole] = []
    ordered = sorted(candidates, key=lambda h: -h.cell_count)
    for hole in ordered:
        contained = any(
            other.row_lo <= hole.row_lo
            and other.row_hi >= hole.row_hi
            and other.col_lo <= hole.col_lo
            and other.col_hi >= hole.col_hi
            for other in kept
        )
        if not contained:
            kept.append(hole)
    return kept


class HoleMiner:
    """Finds join holes for one join path and attribute pair.

    Parameters
    ----------
    grid_size:
        Resolution of the discretization grid per dimension.
    min_cells:
        Grid holes smaller than this many cells are discarded (tiny holes
        buy no optimization).
    max_holes:
        Keep only the top-N holes by area.
    """

    def __init__(
        self, grid_size: int = 32, min_cells: int = 2, max_holes: int = 16
    ) -> None:
        self.grid_size = grid_size
        self.min_cells = min_cells
        self.max_holes = max_holes

    def mine(
        self,
        database: Database,
        table_one: str,
        column_a: str,
        table_two: str,
        column_b: str,
        join_column_one: str,
        join_column_two: str,
        name: Optional[str] = None,
    ) -> JoinHolesSC:
        """Run discovery; returns a CANDIDATE :class:`JoinHolesSC`."""
        constraint = JoinHolesSC(
            name=name or f"holes_{table_one}_{column_a}_{table_two}_{column_b}",
            table_one=table_one,
            column_a=column_a,
            table_two=table_two,
            column_b=column_b,
            join_column_one=join_column_one,
            join_column_two=join_column_two,
        )
        pairs = [
            (a, b)
            for a, b in constraint.join_pairs(database)
            if a is not None and b is not None
        ]
        constraint.holes = self.holes_from_pairs(pairs)
        return constraint

    def holes_from_pairs(
        self, pairs: Sequence[Tuple[Any, Any]]
    ) -> List[Rectangle]:
        """Grid-discretize the pairs and extract maximal empty rectangles."""
        if not pairs:
            return []
        a_values = np.array([float(p[0]) for p in pairs])
        b_values = np.array([float(p[1]) for p in pairs])
        a_low, a_high = float(a_values.min()), float(a_values.max())
        b_low, b_high = float(b_values.min()), float(b_values.max())
        if a_high <= a_low or b_high <= b_low:
            return []
        grid = self.grid_size
        a_cells = np.minimum(
            ((a_values - a_low) / (a_high - a_low) * grid).astype(int), grid - 1
        )
        b_cells = np.minimum(
            ((b_values - b_low) / (b_high - b_low) * grid).astype(int), grid - 1
        )
        occupied = np.zeros((grid, grid), dtype=bool)
        occupied[a_cells, b_cells] = True

        a_step = (a_high - a_low) / grid
        b_step = (b_high - b_low) / grid
        # A value sitting exactly on a cell boundary belongs to the *next*
        # cell, so holes are shrunk by a sliver at their high edges to keep
        # the closed Rectangle sound against boundary points.
        a_sliver = (a_high - a_low) * 1e-9
        b_sliver = (b_high - b_low) * 1e-9
        holes: List[Rectangle] = []
        for grid_hole in maximal_empty_rectangles(occupied):
            if grid_hole.cell_count < self.min_cells:
                continue
            holes.append(
                Rectangle(
                    a_low + grid_hole.row_lo * a_step,
                    a_low + (grid_hole.row_hi + 1) * a_step - a_sliver,
                    b_low + grid_hole.col_lo * b_step,
                    b_low + (grid_hole.col_hi + 1) * b_step - b_sliver,
                )
            )
        holes.sort(key=lambda r: -r.area())
        return holes[: self.max_holes]


def mine_join_holes(
    database: Database,
    table_one: str,
    column_a: str,
    table_two: str,
    column_b: str,
    join_column_one: str,
    join_column_two: str,
    grid_size: int = 32,
) -> JoinHolesSC:
    """Convenience wrapper over :class:`HoleMiner`."""
    miner = HoleMiner(grid_size=grid_size)
    return miner.mine(
        database,
        table_one,
        column_a,
        table_two,
        column_b,
        join_column_one,
        join_column_two,
    )
