"""Mining functional dependencies (TANE-style level-wise search).

The paper (Section 2) points at the FD-mining literature [1, 14, 19, 20,
22, 26] as the source of FD soft constraints: "With a good FD mining tool,
FD information could be made available as SCs."

The miner performs a level-wise search over determinant sets (up to a
configurable size) using *stripped partitions*: the rows of the table are
partitioned by the determinant values, and ``X -> y`` holds exactly when
every X-group is constant in ``y``.  Approximate FDs are scored by the
classic *g3* measure — the minimum fraction of rows to remove for the FD
to hold — which maps directly onto SSC confidence (``1 - g3``).
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.engine.database import Database
from repro.softcon.fd import FunctionalDependencySC


class FDCandidate:
    """One scored FD candidate ``determinants -> dependent``."""

    __slots__ = ("determinants", "dependent", "g3_error", "confidence")

    def __init__(
        self,
        determinants: Tuple[str, ...],
        dependent: str,
        g3_error: float,
    ) -> None:
        self.determinants = determinants
        self.dependent = dependent
        self.g3_error = g3_error
        self.confidence = 1.0 - g3_error

    @property
    def is_exact(self) -> bool:
        return self.g3_error == 0.0

    def __repr__(self) -> str:
        lhs = ", ".join(self.determinants)
        return f"FDCandidate(({lhs}) -> {self.dependent}, g3={self.g3_error:.4f})"


class FDMiner:
    """Level-wise FD discovery on one table.

    Parameters
    ----------
    max_determinants:
        Maximum size of the left-hand side.
    max_g3_error:
        Approximate FDs with a g3 error above this are discarded
        (``0.0`` mines exact FDs only).
    prune_implied:
        Skip supersets of determinant sets that already imply the
        dependent exactly (the standard TANE pruning).
    """

    def __init__(
        self,
        max_determinants: int = 2,
        max_g3_error: float = 0.05,
        prune_implied: bool = True,
    ) -> None:
        self.max_determinants = max_determinants
        self.max_g3_error = max_g3_error
        self.prune_implied = prune_implied

    def mine(
        self,
        database: Database,
        table_name: str,
        columns: Optional[Sequence[str]] = None,
    ) -> List[FDCandidate]:
        """Mine FD candidates over the given (default: all) columns."""
        table = database.table(table_name)
        schema = table.schema
        names = [c.lower() for c in columns] if columns else schema.column_names()
        positions = {name: schema.position(name) for name in names}
        rows = [tuple(row[positions[name]] for name in names) for row in table.scan_rows()]
        index_of = {name: at for at, name in enumerate(names)}

        candidates: List[FDCandidate] = []
        exact: Dict[str, List[FrozenSet[str]]] = defaultdict(list)
        total = len(rows)
        for size in range(1, self.max_determinants + 1):
            for determinants in itertools.combinations(names, size):
                det_set = frozenset(determinants)
                for dependent in names:
                    if dependent in det_set:
                        continue
                    if self.prune_implied and any(
                        implied <= det_set for implied in exact[dependent]
                    ):
                        continue
                    error = self._g3_error(
                        rows,
                        [index_of[d] for d in determinants],
                        index_of[dependent],
                        total,
                    )
                    if error <= self.max_g3_error:
                        candidate = FDCandidate(determinants, dependent, error)
                        candidates.append(candidate)
                        if candidate.is_exact:
                            exact[dependent].append(det_set)
        return candidates

    @staticmethod
    def _g3_error(
        rows: List[Tuple[Any, ...]],
        det_positions: List[int],
        dep_position: int,
        total: int,
    ) -> float:
        """g3: min fraction of rows to delete so the FD holds exactly.

        Per determinant group, all rows except those agreeing with the
        group's most frequent dependent value must be removed.  Rows with
        NULL determinants are ignored (they form no comparable group).
        """
        if total == 0:
            return 0.0
        groups: Dict[Tuple[Any, ...], Dict[Any, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        counted = 0
        for row in rows:
            key = tuple(row[p] for p in det_positions)
            if any(part is None for part in key):
                continue
            counted += 1
            groups[key][row[dep_position]] += 1
        if counted == 0:
            return 0.0
        keep = sum(max(values.values()) for values in groups.values())
        return (counted - keep) / total

    def to_soft_constraints(
        self, table_name: str, candidates: Sequence[FDCandidate]
    ) -> List[FunctionalDependencySC]:
        """Wrap candidates as FD soft constraints (merged by determinant).

        Candidates sharing a determinant set merge into one SC with all
        their dependents (confidence = the minimum across dependents).
        """
        by_lhs: Dict[Tuple[str, ...], List[FDCandidate]] = defaultdict(list)
        for candidate in candidates:
            by_lhs[candidate.determinants].append(candidate)
        constraints: List[FunctionalDependencySC] = []
        for determinants, group in sorted(by_lhs.items()):
            dependents = sorted({c.dependent for c in group})
            confidence = min(c.confidence for c in group)
            lhs_tag = "_".join(determinants)
            constraints.append(
                FunctionalDependencySC(
                    name=f"fd_{table_name}_{lhs_tag}",
                    table_name=table_name,
                    determinants=list(determinants),
                    dependents=dependents,
                    confidence=max(1e-9, confidence),
                )
            )
        return constraints


def mine_functional_dependencies(
    database: Database,
    table_name: str,
    columns: Optional[Sequence[str]] = None,
    max_determinants: int = 2,
    max_g3_error: float = 0.05,
) -> List[FunctionalDependencySC]:
    """Convenience wrapper: mine and wrap as soft constraints."""
    miner = FDMiner(
        max_determinants=max_determinants, max_g3_error=max_g3_error
    )
    candidates = miner.mine(database, table_name, columns)
    return miner.to_soft_constraints(table_name, candidates)
