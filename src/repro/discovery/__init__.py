"""Discovery: mining soft-constraint candidates from the data.

Implements the discovery stage of the paper's SC process (Section 3.2)
with one miner per SC class:

* :mod:`repro.discovery.linear_miner` — linear correlations between numeric
  attribute pairs (the [10] work the paper builds on);
* :mod:`repro.discovery.hole_miner` — maximal empty rectangles ("holes")
  over a join path ([8]);
* :mod:`repro.discovery.fd_miner` — functional dependencies (TANE-style
  level-wise search with approximate-FD support);
* :mod:`repro.discovery.range_miner` — min/max and range check
  characterizations;

plus the *selection* stage (:mod:`repro.discovery.selection`), which ranks
candidates by estimated utility against a workload model
(:mod:`repro.discovery.workload_model`).
"""

from repro.discovery.linear_miner import (
    LinearMiner,
    mine_join_linear_correlation,
    mine_linear_correlations,
)
from repro.discovery.hole_miner import HoleMiner, mine_join_holes
from repro.discovery.fd_miner import FDMiner, mine_functional_dependencies
from repro.discovery.range_miner import mine_min_max, mine_range_checks
from repro.discovery.selection import SelectionEngine, UtilityScore
from repro.discovery.workload_model import Workload, WorkloadQuery

__all__ = [
    "FDMiner",
    "HoleMiner",
    "LinearMiner",
    "SelectionEngine",
    "UtilityScore",
    "Workload",
    "WorkloadQuery",
    "mine_functional_dependencies",
    "mine_join_holes",
    "mine_join_linear_correlation",
    "mine_linear_correlations",
    "mine_min_max",
    "mine_range_checks",
]
