"""The selection stage: rank discovered SC candidates by expected utility.

Paper Section 3.2: "The selection stage chooses the most promising of the
discovered SCs to keep ... based on the estimated utility of each for the
optimizer with respect to the optimizer's capabilities, the database's
statistics, and the workload.  ...  The expense of a SC's maintenance must
be weighed against its utility."

Scoring model
-------------
Each candidate gets ``benefit`` (workload frequency of queries the SC can
help, scaled by how much it helps) minus ``maintenance_cost`` (a per-class
per-update cost times the table's update weight).  Absolute candidates can
serve rewrite *and* estimation; statistical candidates only estimation, so
their benefit is discounted.  The engine returns scores sorted descending
and can apply a *probation* cut: keep the top N, activate those above an
activation threshold, and hold the rest in PROBATION (maintained but not
yet employed) as the paper suggests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.engine.database import Database
from repro.discovery.workload_model import Workload
from repro.softcon.base import SoftConstraint
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.fd import FunctionalDependencySC
from repro.softcon.holes import JoinHolesSC
from repro.softcon.linear import LinearCorrelationSC
from repro.softcon.minmax import MinMaxSC

# Relative synchronous-maintenance cost per update, by SC class.  Join
# holes require a join probe (expensive); FDs an index lookup; row-local
# checks are cheap; SSCs cost nothing at update time (handled by caller).
MAINTENANCE_COST = {
    "minmax": 1.0,
    "check": 1.0,
    "linear": 1.0,
    "fd": 3.0,
    "join_holes": 10.0,
    "join_linear": 10.0,
    "soft": 2.0,
}

ESTIMATION_ONLY_DISCOUNT = 0.4

# Ceiling on the execution-feedback benefit multiplier: a grotesquely
# misestimated table should dominate the ranking, not erase it.
FEEDBACK_BOOST_CAP = 4.0


class UtilityScore:
    """The scored utility of one candidate."""

    __slots__ = ("constraint", "benefit", "maintenance_cost", "matched_frequency")

    def __init__(
        self,
        constraint: SoftConstraint,
        benefit: float,
        maintenance_cost: float,
        matched_frequency: float,
    ) -> None:
        self.constraint = constraint
        self.benefit = benefit
        self.maintenance_cost = maintenance_cost
        self.matched_frequency = matched_frequency

    @property
    def net_utility(self) -> float:
        return self.benefit - self.maintenance_cost

    def __repr__(self) -> str:
        return (
            f"UtilityScore({self.constraint.name}: benefit={self.benefit:.2f}, "
            f"cost={self.maintenance_cost:.2f}, net={self.net_utility:.2f})"
        )


class SelectionEngine:
    """Scores and selects soft-constraint candidates against a workload.

    Parameters
    ----------
    update_weight:
        Relative volume of updates vs. queries; scales maintenance cost.
        Data-warehouse workloads (load nightly, query all day) use a small
        value; OLTP-ish workloads a larger one.
    feedback:
        Optional :class:`~repro.feedback.store.FeedbackStore`.  Execution
        feedback *targets* the miner: a candidate touching a table (or
        join pair) whose observed q-error is high gets its benefit
        multiplied by that q-error (capped at
        ``FEEDBACK_BOOST_CAP``) — exactly where better constraint-borne
        knowledge would have fixed a misestimate.
    """

    def __init__(
        self, update_weight: float = 0.1, feedback: Optional[object] = None
    ) -> None:
        self.update_weight = update_weight
        self.feedback = feedback

    # -- scoring --------------------------------------------------------------

    def score(
        self,
        candidate: SoftConstraint,
        workload: Workload,
        database: Optional[Database] = None,
    ) -> UtilityScore:
        matched, helpfulness = self._match(candidate, workload, database)
        benefit = matched * helpfulness
        if candidate.is_statistical:
            benefit *= ESTIMATION_ONLY_DISCOUNT
            maintenance = 0.0  # SSCs are not checked at update time
        else:
            per_update = MAINTENANCE_COST.get(candidate.kind, 2.0)
            maintenance = per_update * self.update_weight
        if self.feedback is not None:
            benefit *= self._feedback_boost(candidate)
        return UtilityScore(candidate, benefit, maintenance, matched)

    def _feedback_boost(self, candidate: SoftConstraint) -> float:
        """Multiplier from observed misestimation on the candidate's tables.

        Tables are matched against the store's worst scan q-errors, and —
        for two-table candidates — against the worst q-error of any join
        edge between the pair.  1.0 when nothing relevant misestimated.
        """
        tables = {t.lower() for t in candidate.table_names()}
        boost = 1.0
        scan_qerrors = self.feedback.tables_with_qerror(min_qerror=1.0)
        for table in tables:
            q = scan_qerrors.get(table)
            if q is not None and q > boost:
                boost = q
        if len(tables) >= 2:
            for pair, q in self.feedback.join_table_qerrors().items():
                if set(pair) <= tables and q > boost:
                    boost = q
        return min(FEEDBACK_BOOST_CAP, boost)

    def _match(
        self,
        candidate: SoftConstraint,
        workload: Workload,
        database: Optional[Database],
    ) -> Tuple[float, float]:
        """(matched workload frequency, helpfulness in [0, 1])."""
        if isinstance(candidate, LinearCorrelationSC):
            table = candidate.table_name
            matched = workload.predicate_frequency(table, candidate.column_b)
            helpfulness = 0.5
            if database is not None:
                index = database.catalog.find_index(table, [candidate.column_a])
                has_b_index = (
                    database.catalog.find_index(table, [candidate.column_b])
                    is not None
                )
                if index is not None and not has_b_index:
                    helpfulness = 1.0  # opens an otherwise-unavailable path
                elif index is None:
                    helpfulness = 0.3  # estimation-only value
            return matched, helpfulness
        from repro.softcon.joinlinear import JoinLinearSC

        if isinstance(candidate, JoinLinearSC):
            matched = workload.join_frequency(
                candidate.table_one,
                candidate.join_column_one,
                candidate.table_two,
                candidate.join_column_two,
            )
            ranged = workload.predicate_frequency(
                candidate.table_two, candidate.column_b
            ) + workload.predicate_frequency(
                candidate.table_one, candidate.column_a
            )
            helpfulness = 0.5
            if database is not None and (
                database.catalog.find_index(
                    candidate.table_one, [candidate.column_a]
                )
                is not None
            ):
                helpfulness = 0.9
            return min(matched, ranged) if ranged else 0.0, helpfulness
        if isinstance(candidate, JoinHolesSC):
            matched = workload.join_frequency(
                candidate.table_one,
                candidate.join_column_one,
                candidate.table_two,
                candidate.join_column_two,
            )
            ranged = max(
                workload.range_frequency(candidate.table_one, candidate.column_a),
                workload.range_frequency(candidate.table_two, candidate.column_b),
            )
            return min(matched, ranged) if ranged else 0.0, 0.8
        if isinstance(candidate, FunctionalDependencySC):
            matched = workload.grouping_frequency(
                candidate.table_name,
                candidate.determinants + candidate.dependents,
            )
            return matched, 0.6
        if isinstance(candidate, MinMaxSC):
            matched = workload.range_frequency(
                candidate.table_name, candidate.column_name
            )
            return matched, 0.4
        if isinstance(candidate, CheckSoftConstraint):
            from repro.expr.analysis import columns_in

            table = candidate.table_name
            columns = {ref.column for ref in columns_in(candidate.expression)}
            matched = sum(
                workload.predicate_frequency(table, column)
                for column in columns
            )
            return matched, 0.5
        return 0.0, 0.0

    # -- selection -----------------------------------------------------------------

    def rank(
        self,
        candidates: Sequence[SoftConstraint],
        workload: Workload,
        database: Optional[Database] = None,
    ) -> List[UtilityScore]:
        """Score all candidates, best first."""
        scores = [self.score(c, workload, database) for c in candidates]
        scores.sort(key=lambda s: -s.net_utility)
        return scores

    def select(
        self,
        candidates: Sequence[SoftConstraint],
        workload: Workload,
        database: Optional[Database] = None,
        keep: int = 10,
        activation_threshold: float = 0.0,
    ) -> Tuple[List[SoftConstraint], List[SoftConstraint]]:
        """Pick the top candidates; returns (activate_now, probation).

        Candidates above ``activation_threshold`` net utility are slated
        for activation; the remainder of the top ``keep`` go to probation
        (maintained, assessed, not yet employed — Section 3.2).
        """
        ranked = self.rank(candidates, workload, database)
        activate: List[SoftConstraint] = []
        probation: List[SoftConstraint] = []
        for score in ranked[:keep]:
            if score.net_utility > activation_threshold:
                activate.append(score.constraint)
            elif score.net_utility > 0:
                probation.append(score.constraint)
        return activate, probation
