"""The public facade: a complete soft-constraint-aware database session.

:class:`SoftDB` wires together the storage engine, the soft-constraint
registry, the optimizer, the plan cache and the executor, and exposes a
single ``execute(sql)`` entry point plus helpers for statistics, soft
constraints and exception tables.

Quickstart::

    db = SoftDB()
    db.execute("CREATE TABLE t (a INT, b INT)")
    db.execute("INSERT INTO t VALUES (1, 2), (3, 4)")
    db.runstats("t")
    result = db.execute("SELECT a FROM t WHERE b = 2")
    print(result.rows)          # [{'a': 1}]
    print(db.explain("SELECT a FROM t WHERE b = 2"))
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from repro.engine.constraints import (
    CheckConstraint,
    Constraint,
    ConstraintMode,
    ForeignKeyConstraint,
    PrimaryKeyConstraint,
    UniqueConstraint,
)
from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.types import type_from_name
from repro.errors import (
    BudgetExceededError,
    ExecutionError,
    QueryCancelledError,
    QueryGuardError,
    QueryTimeoutError,
    SqlError,
    TransactionError,
)
from repro.executor.runtime import ExecutionResult, Executor
from repro.expr.eval import compile_predicate, evaluate
from repro.optimizer.explain import explain as explain_plan
from repro.optimizer.physical import PhysicalPlan
from repro.optimizer.planner import Optimizer, OptimizerConfig, PlanCache
from repro.softcon.base import SoftConstraint
from repro.softcon.checksc import CheckSoftConstraint
from repro.softcon.exceptions_ast import ExceptionTable
from repro.softcon.maintenance import MaintenancePolicy
from repro.softcon.registry import SoftConstraintRegistry
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.sql.printer import sql_of
from repro.stats.runstats import TableStats, runstats, runstats_virtual


def _plan_tables(plan: PhysicalPlan) -> tuple:
    """The base tables a physical plan touches, sorted and deduplicated."""
    tables = set()
    stack = [plan.root]
    while stack:
        node = stack.pop()
        name = getattr(node, "table_name", None)
        if name:
            tables.add(name)
        stack.extend(node.children())
    return tuple(sorted(tables))


class SoftDB:
    """A self-contained database session with the soft-constraint facility.

    Parameters
    ----------
    config:
        Optimizer feature switches (all rewrites on by default).
    path:
        Optional durability directory.  When given, every statement is
        write-ahead logged there and :meth:`checkpoint` /
        :meth:`SoftDB.open` provide crash recovery; without it the
        session is purely in-memory (the historical behavior).
    crash_points:
        Optional :class:`~repro.resilience.faults.CrashSchedule` arming
        the durability layer's deterministic crash sites (testing only).
    """

    def __init__(
        self,
        config: Optional[OptimizerConfig] = None,
        path: Optional[Any] = None,
        crash_points: Optional[Any] = None,
    ) -> None:
        self.database = Database()
        self.registry = SoftConstraintRegistry(self.database)
        self.config = config or OptimizerConfig()
        # Execution feedback (repro.feedback): one store per session,
        # created only when switched on — the default path never touches
        # any of the feedback machinery.
        if self.config.collect_feedback:
            from repro.feedback import FeedbackStore

            self.feedback = FeedbackStore()
        else:
            self.feedback = None
        self.optimizer = Optimizer(
            self.database, self.registry, self.config, feedback=self.feedback
        )
        self.plan_cache = PlanCache(
            self.optimizer,
            qerror_threshold=(
                self.config.feedback_qerror_threshold
                if self.feedback is not None
                else None
            ),
        )
        self.executor = Executor(
            self.database,
            self.registry,
            batch_size=self.config.batch_size,
            feedback=self.feedback,
            columnar=self.config.columnar,
            workers=self.config.workers if self.config.workers else None,
        )
        self._constraint_sequence = 0
        self.durability = None
        # Facade-level explicit transaction (BEGIN..COMMIT/ROLLBACK on
        # this object directly, without a Session).
        self._txn = None
        if path is not None:
            self._attach_durability(path, crash_points)

    # ------------------------------------------------------------ durability

    @classmethod
    def open(
        cls,
        path: Any,
        config: Optional[OptimizerConfig] = None,
        crash_points: Optional[Any] = None,
    ) -> "SoftDB":
        """Open (or create) a durable session rooted at ``path``.

        When the directory holds persisted state — a checkpoint image
        and/or a write-ahead log — the session recovers it before
        returning: checkpoint restore, committed-WAL replay, torn-tail
        truncation, storage verification, and re-validation of recovered
        absolute soft constraints against the recovered data.  The
        recovery summary is available as ``db.durability.last_recovery``.
        """
        return cls(config, path=path, crash_points=crash_points)

    def _attach_durability(self, path: Any, crash_points: Optional[Any]) -> None:
        from repro.durability import DurabilityManager

        manager = DurabilityManager(path, crash_points)
        manager.attach(
            self.database, registry=self.registry, feedback=self.feedback
        )
        self.durability = manager
        if manager.has_persisted_state():
            manager.recover()
            self._constraint_sequence = manager.session_state.get(
                "constraint_sequence", 0
            )
            # Anything cached before recovery points at pre-crash objects.
            self.plan_cache.clear()

    def checkpoint(self, compact: bool = False) -> int:
        """Write a full-state checkpoint (durable sessions only).

        ``compact=True`` additionally truncates the WAL behind the
        installed image (log compaction) — replay history before the
        checkpoint is discarded and the log restarts a new generation,
        which forces any attached replication shipper into a full
        resync (see :mod:`repro.replication`).
        """
        if self.durability is None:
            raise ExecutionError(
                "this session is in-memory; construct it with a path "
                "(SoftDB.open) to enable durability"
            )
        self.durability.session_state["constraint_sequence"] = (
            self._constraint_sequence
        )
        return self.durability.checkpoint(compact=compact)

    def close(self, checkpoint: bool = True) -> None:
        """Close the session; by default a final checkpoint is taken so
        the next :meth:`open` restores without replaying the whole log."""
        if self._txn is not None and self._txn.is_active:
            self._txn.rollback()
            self._txn = None
        if self.durability is None:
            return
        if checkpoint:
            self.checkpoint()
        self.durability.close()

    # -------------------------------------------------------------- sessions

    def session(self, name: Optional[str] = None):
        """Open a concurrent session over this database.

        The first call attaches a
        :class:`~repro.concurrency.engine.ConcurrencyEngine` to the
        shared database (and, for durable sessions, installs WAL group
        commit); every session after that shares it.  Sessions are the
        concurrency unit: each holds its own transaction state, plan
        cache, and executor, and may run on any thread.
        """
        from repro.concurrency import ConcurrencyEngine, Session

        engine = self.database.concurrency
        if engine is None:
            engine = ConcurrencyEngine(self.database)
        engine.attach_group_commit(self.durability)
        return Session(self, name=name)

    def serve(self, host: str = "127.0.0.1", port: int = 0):
        """Construct (not start) the asyncio TCP session server."""
        from repro.concurrency.server import SessionServer

        return SessionServer(self, host=host, port=port)

    # ------------------------------------------------------------- execution

    def execute(
        self,
        sql: str,
        use_cache: bool = False,
        batch_size: Optional[int] = None,
        guard: Optional[Any] = None,
        cancel: Optional[Any] = None,
    ) -> Optional[Union[ExecutionResult, int]]:
        """Run one SQL statement.

        Returns an :class:`ExecutionResult` for queries, the affected row
        count for DML, and None for DDL.  ``batch_size`` overrides the
        session's executor batch size for this query only (0 selects the
        row-at-a-time interpreter).

        ``guard`` (a :class:`~repro.resilience.guards.QueryGuard`) caps
        this statement's resources; ``cancel`` (a
        :class:`~repro.resilience.guards.CancellationToken`) allows the
        issuer to stop it cooperatively.  Both are honored at row/batch
        boundaries on SELECT; for other statements the token is checked
        on entry.  A breach raises the typed error (or, under the guard's
        ``"partial"`` policy, returns a truncated result), is recorded in
        the feedback store as a guard trip, and evicts the cached plan —
        a tripped budget is the loudest possible mis-planning signal.

        With ``OptimizerConfig(collect_feedback=True)`` every query's
        actual cardinalities are harvested into the session's feedback
        store, and a cached plan whose execution misestimated past the
        q-error threshold is evicted so the next call reoptimizes it with
        feedback-corrected estimates.  Harvesting happens only for
        successful, untruncated executions.
        """
        if cancel is not None and cancel.cancelled:
            raise QueryCancelledError(f"query cancelled: {cancel.reason}")
        statement = parse_statement(sql)
        if isinstance(statement, (ast.SelectStatement, ast.UnionAll)):
            if use_cache:
                plan = self.plan_cache.get_plan(sql)
            else:
                plan = self.optimizer.optimize(statement)
            try:
                result = self.executor.execute(
                    plan,
                    batch_size=batch_size,
                    guard=guard,
                    cancel=cancel,
                )
            except QueryGuardError as error:
                self._note_guard_breach(sql, plan, error, use_cache)
                raise
            if result.truncated:
                self._note_guard_breach(
                    sql, plan, result.guard_breach, use_cache
                )
            elif use_cache and self.feedback is not None:
                self.plan_cache.note_execution(sql, result.max_qerror)
            return result
        if isinstance(statement, ast.BeginTransaction):
            self._begin_transaction()
            return None
        if isinstance(statement, ast.CommitTransaction):
            self._commit_transaction()
            return None
        if isinstance(statement, ast.RollbackTransaction):
            self._rollback_transaction()
            return None
        if self._txn is not None and not isinstance(
            statement, (ast.Insert, ast.Delete, ast.Update)
        ):
            raise TransactionError(
                "only DML is supported inside an explicit transaction"
            )
        # Every non-query statement is one WAL transaction: a crash (or
        # fault) mid-statement — even mid-DDL, e.g. halfway through
        # CREATE SUMMARY TABLE's register/populate sequence — leaves no
        # committed trace for recovery to replay.
        with self.database._statement_scope():
            if isinstance(statement, ast.Insert):
                return self._execute_insert(statement)
            if isinstance(statement, ast.Delete):
                return self._execute_delete(statement)
            if isinstance(statement, ast.Update):
                return self._execute_update(statement)
            if isinstance(statement, ast.CreateTable):
                self._execute_create_table(statement)
                return None
            if isinstance(statement, ast.CreateIndex):
                self.database.create_index(
                    statement.name,
                    statement.table,
                    statement.columns,
                    unique=statement.unique,
                )
                return None
            if isinstance(statement, ast.CreateSummaryTable):
                self._execute_create_summary(statement)
                return None
            if isinstance(statement, ast.DropTable):
                self.database.drop_table(statement.name)
                return None
        raise SqlError(f"unsupported statement {type(statement).__name__}")

    def _note_guard_breach(
        self,
        sql: str,
        plan: PhysicalPlan,
        error: Optional[Exception],
        use_cache: bool,
    ) -> None:
        """Feed a guard trip into the feedback loop.

        Budget and deadline breaches blame the plan: the trip is recorded
        against the plan's tables (repeated trips flag them suspect) and
        the cached plan is evicted.  A cancellation blames nobody — it is
        counted for reporting but neither marks tables nor evicts.
        """
        cancelled = isinstance(error, QueryCancelledError)
        if self.feedback is not None:
            if isinstance(error, QueryTimeoutError):
                kind = "deadline"
            elif isinstance(error, BudgetExceededError):
                kind = error.budget or "budget"
            elif cancelled:
                kind = "cancelled"
            else:
                kind = "guard"
            self.feedback.record_guard_trip(
                kind, () if cancelled else _plan_tables(plan)
            )
        if use_cache and not cancelled:
            self.plan_cache.note_guard_breach(sql)

    def query(self, sql: str) -> List[Dict[str, Any]]:
        """Run a SELECT and return its rows."""
        result = self.execute(sql)
        assert isinstance(result, ExecutionResult)
        return result.rows

    def plan(self, sql: str) -> PhysicalPlan:
        """Optimize without executing."""
        return self.optimizer.optimize(sql)

    def execute_plan(
        self, plan: PhysicalPlan, retry_on_stale: bool = True
    ) -> ExecutionResult:
        """Execute a previously compiled plan, re-issuing if it went stale.

        Models the paper's Section 4.1 resolution for a transaction whose
        ASC-based plan was overturned by a concurrent transaction: "the
        re-issue can be done behind the scenes just as is done in the case
        of deadlock resolution.  So the user who issued [it] sees no
        difference except for more wait time."
        """
        from repro.errors import StalePlanError

        try:
            return self.executor.execute(plan)
        except StalePlanError:
            if not retry_on_stale or not plan.sql:
                raise
            fresh = self.optimizer.optimize(plan.sql)
            return self.executor.execute(fresh)

    def explain(
        self,
        sql: str,
        analyze: bool = False,
        guard: Optional[Any] = None,
    ) -> str:
        """EXPLAIN text for a query.

        With ``analyze=True`` the query is *executed* and every operator
        line additionally shows its actual output row count (and, under
        the batched executor, the number of batches it emitted), plus a
        summary of the pages actually read — the estimate-vs-actual view
        used to validate the cost model.  A ``guard`` adds a ``guard:``
        line reporting consumption against each budget (tip: use the
        ``"partial"`` breach policy so a tripped analyze still prints
        what it consumed instead of raising).
        """
        plan = self.plan(sql)
        if not analyze:
            return explain_plan(plan)
        result = self.executor.execute(plan, instrument=True, guard=guard)
        text = explain_plan(plan)
        summary = (
            f"\nactual: {result.row_count} rows, "
            f"{result.page_reads} pages read"
        )
        if self.executor.batch_size:
            summary += (
                f" (batched, batch_size={self.executor.batch_size}, "
                f"columnar={'yes' if self.executor.columnar else 'no'}, "
                f"workers={self.executor.workers})"
            )
        if result.truncated:
            summary += " [truncated by guard]"
        if result.guard_report is not None:
            from repro.resilience.guards import format_guard_report

            summary += "\n" + format_guard_report(result.guard_report)
        if self.durability is not None:
            summary += "\n" + self.durability.describe()
        return text + summary

    # ----------------------------------------------------------------- stats

    def runstats(self, table_name: str, **kwargs: Any) -> TableStats:
        """Collect and store statistics for one table."""
        return runstats(self.database, table_name, **kwargs)

    def runstats_all(self, **kwargs: Any) -> None:
        """RUNSTATS over every base table."""
        for table_name in self.database.catalog.table_names():
            runstats(self.database, table_name, **kwargs)

    def runstats_virtual(
        self, table_name: str, virtual_name: str, expression: Any, **kwargs: Any
    ):
        """Collect statistics over a derived expression (paper §5.1's
        *virtual column* mechanism), e.g.
        ``db.runstats_virtual("project", "duration",
        "end_date - start_date")``."""
        return runstats_virtual(
            self.database, table_name, virtual_name, expression, **kwargs
        )

    # -------------------------------------------------------------- feedback

    def apply_feedback(
        self, suspect_qerror: Optional[float] = None
    ) -> List[str]:
        """Close the soft-constraint loop: re-verify constraints on tables
        the feedback store flags as misestimated (see
        :class:`repro.feedback.adjust.FeedbackAdjuster`).  Returns the
        human-readable actions taken; raises if feedback is off.
        """
        if self.feedback is None:
            raise ExecutionError(
                "feedback is off; construct SoftDB with "
                "OptimizerConfig(collect_feedback=True)"
            )
        from repro.feedback import FeedbackAdjuster

        kwargs = (
            {} if suspect_qerror is None
            else {"suspect_qerror": suspect_qerror}
        )
        adjuster = FeedbackAdjuster(
            self.registry, self.feedback, self.database, **kwargs
        )
        return adjuster.apply()

    def feedback_report(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot of the session's feedback state."""
        if self.feedback is None:
            return {"enabled": False}
        report = {"enabled": True}
        report.update(self.feedback.snapshot())
        report["plan_cache_feedback_invalidations"] = (
            self.plan_cache.feedback_invalidations
        )
        report["plan_cache_guard_invalidations"] = (
            self.plan_cache.guard_invalidations
        )
        return report

    # ------------------------------------------------------------- resilience

    def attach_fault_injector(self, injector: Any) -> None:
        """Attach a :class:`~repro.resilience.faults.FaultInjector` to the
        session's storage layer (pages and indexes, existing and future)."""
        self.database.attach_fault_injector(injector)

    def rebuild_index(self, name: str) -> None:
        """Rebuild an index from its heap — the recovery path for an index
        quarantined after corruption was detected.

        The rebuild changes the table's physical access paths out from
        under the session, so every cached plan touching the table is
        evicted and its statistics are marked stale (the next RUNSTATS
        replaces them)."""
        index = self.database.catalog.index(name)
        self.database.rebuild_index(name)
        self.plan_cache.invalidate_table(index.table_name)
        stats = self.database.catalog.statistics(index.table_name)
        if stats is not None:
            stats.stale = True

    # -------------------------------------------------------- soft constraints

    def add_soft_constraint(
        self,
        constraint: SoftConstraint,
        policy: Optional[MaintenancePolicy] = None,
        activate: bool = True,
        verify_first: bool = False,
    ) -> SoftConstraint:
        """Register (and by default activate) a soft constraint.

        The registration is one WAL statement: a crash between the
        register and activate snapshots cannot leave a half-registered
        constraint for recovery to resurrect.
        """
        with self.database._statement_scope():
            self.registry.register(constraint, policy=policy)
            if activate:
                self.registry.activate(
                    constraint.name, verify_first=verify_first
                )
        return constraint

    def create_exception_table(
        self, constraint: SoftConstraint, name: Optional[str] = None
    ) -> ExceptionTable:
        """Materialize a constraint's exceptions as an AST (Section 4.4)."""
        with self.database._statement_scope():
            return ExceptionTable(self.database, constraint, name)

    # ---------------------------------------------------------- transactions

    def _begin_transaction(self) -> None:
        """``BEGIN`` on the facade itself: a single-session transaction.

        DML until ``COMMIT``/``ROLLBACK`` routes through one undo-log
        :class:`~repro.engine.transactions.Transaction`, so a rollback
        publishes compensating events and the WAL hides the whole
        transaction.  Concurrent multi-session transactions live in
        :meth:`session` instead.
        """
        if self._txn is not None:
            raise TransactionError("a transaction is already open")
        from repro.engine.transactions import Transaction

        self._txn = Transaction(self.database)

    def _commit_transaction(self) -> None:
        if self._txn is None:
            raise TransactionError("no transaction is open")
        txn, self._txn = self._txn, None
        txn.commit()

    def _rollback_transaction(self) -> None:
        if self._txn is None:
            raise TransactionError("no transaction is open")
        txn, self._txn = self._txn, None
        txn.rollback()

    # ----------------------------------------------------------- DML internals

    def _execute_insert(self, statement: ast.Insert) -> int:
        table = self.database.table(statement.table)
        rows: List[List[Any]] = []
        for row_expressions in statement.rows:
            values = [evaluate(expr, {}) for expr in row_expressions]
            if statement.columns:
                if len(values) != len(statement.columns):
                    raise ExecutionError(
                        "INSERT value count does not match column list"
                    )
                mapping = dict(zip(statement.columns, values))
                values = table.schema.row_from_mapping(mapping)
            rows.append(values)
        if self._txn is not None:
            for values in rows:
                self._txn.insert(statement.table, values)
            return len(rows)
        # insert_many is atomic for multi-row statements: a fault midway
        # rolls the already-inserted prefix back.
        self.database.insert_many(statement.table, rows)
        return len(rows)

    def _execute_delete(self, statement: ast.Delete) -> int:
        if statement.where is None:
            # DELETE without WHERE: same all-or-nothing semantics as the
            # predicated path in Database.delete_where.
            predicate = lambda row: True
        else:
            predicate = compile_predicate(statement.where)
        if self._txn is not None:
            table = self.database.table(statement.table)
            names = table.schema.column_names()
            victims = [
                rid
                for rid, row in table.scan()
                if predicate(dict(zip(names, row))) is True
            ]
            for rid in victims:
                self._txn.delete(statement.table, rid)
            return len(victims)
        return self.database.delete_where(statement.table, predicate)

    def _execute_update(self, statement: ast.Update) -> int:
        if statement.where is None:
            predicate = lambda row: True
        else:
            predicate = compile_predicate(statement.where)
        assignments = statement.assignments

        def assign(row: Dict[str, Any]) -> Dict[str, Any]:
            return {
                column: evaluate(expression, row)
                for column, expression in assignments
            }

        if self._txn is not None:
            table = self.database.table(statement.table)
            names = table.schema.column_names()
            targets = []
            for rid, row in table.scan():
                row_dict = dict(zip(names, row))
                if predicate(row_dict) is True:
                    targets.append((rid, row_dict))
            for rid, row_dict in targets:
                new_dict = dict(row_dict)
                new_dict.update(assign(row_dict))
                self._txn.update(
                    statement.table, rid, [new_dict[name] for name in names]
                )
            return len(targets)
        return self.database.update_where(statement.table, predicate, assign)

    # ----------------------------------------------------------- DDL internals

    def _next_constraint_name(self, table: str, kind: str) -> str:
        self._constraint_sequence += 1
        return f"{table}_{kind}_{self._constraint_sequence}"

    def _execute_create_table(self, statement: ast.CreateTable) -> None:
        columns = []
        for definition in statement.columns:
            sql_type = type_from_name(definition.type_name, definition.length)
            columns.append(
                Column(
                    definition.name,
                    sql_type,
                    nullable=not (definition.not_null or definition.primary_key),
                )
            )
        schema = TableSchema(statement.name, columns)
        constraints: List[Constraint] = []
        for definition in statement.constraints:
            constraints.append(
                self._constraint_from_def(statement.name, definition)
            )
        self.database.create_table(schema, constraints)

    def _constraint_from_def(
        self, table_name: str, definition: ast.ConstraintDef
    ) -> Constraint:
        mode = (
            ConstraintMode.ENFORCED
            if definition.enforced
            else ConstraintMode.INFORMATIONAL
        )
        if isinstance(definition, ast.PrimaryKeyDef):
            name = definition.name or self._next_constraint_name(table_name, "pk")
            return PrimaryKeyConstraint(name, table_name, definition.columns, mode)
        if isinstance(definition, ast.UniqueDef):
            name = definition.name or self._next_constraint_name(table_name, "uq")
            return UniqueConstraint(name, table_name, definition.columns, mode)
        if isinstance(definition, ast.ForeignKeyDef):
            name = definition.name or self._next_constraint_name(table_name, "fk")
            parent_columns = definition.parent_columns
            if not parent_columns:
                parent_columns = self._default_parent_key(definition.parent_table)
            return ForeignKeyConstraint(
                name,
                table_name,
                definition.columns,
                definition.parent_table,
                parent_columns,
                mode,
            )
        assert isinstance(definition, ast.CheckDef)
        name = definition.name or self._next_constraint_name(table_name, "ck")
        assert definition.expression is not None
        return CheckConstraint(
            name,
            table_name,
            predicate=compile_predicate(definition.expression),
            expression=definition.expression,
            sql_text=definition.sql_text or sql_of(definition.expression),
            mode=mode,
        )

    def _default_parent_key(self, parent_table: str) -> List[str]:
        for constraint in self.database.catalog.constraints_on(parent_table):
            if isinstance(constraint, PrimaryKeyConstraint):
                return list(constraint.column_names)
        raise SqlError(
            f"REFERENCES {parent_table} without columns, and {parent_table} "
            f"has no primary key"
        )

    def _execute_create_summary(
        self, statement: ast.CreateSummaryTable
    ) -> None:
        """``CREATE SUMMARY TABLE name AS (SELECT * FROM t WHERE p)``.

        Per the paper (Section 4.4), such an AST expresses the business
        rule ``NOT p`` as a soft constraint whose exceptions the summary
        table materializes.  We register exactly that: a check SC with
        condition ``NOT p`` (verified, so its confidence is measured) plus
        the exception table under the requested name.
        """
        select = statement.select
        if (
            select is None
            or len(select.from_clause) != 1
            or not isinstance(select.from_clause[0], ast.TableRef)
            or select.where is None
            or not (
                len(select.select_items) == 1 and select.select_items[0].star
            )
        ):
            raise SqlError(
                "CREATE SUMMARY TABLE supports the exception-table form: "
                "SELECT * FROM one_table WHERE predicate"
            )
        base_table = select.from_clause[0].name
        rule = CheckSoftConstraint(
            name=f"{statement.name}_rule",
            table_name=base_table,
            condition=ast.UnaryOp("not", select.where),
        )
        self.registry.register(rule)
        rule.verify(self.database)
        self.registry.activate(rule.name)
        ExceptionTable(self.database, rule, statement.name)

    # ------------------------------------------------------------ introspection

    def describe(self) -> str:
        """A human-readable catalog listing: tables, indexes, integrity
        constraints (with enforcement mode), summary tables, and soft
        constraints (with lifecycle state and confidence)."""
        lines: List[str] = []
        catalog = self.database.catalog
        for table_name in catalog.table_names():
            table = catalog.table(table_name)
            columns = ", ".join(
                f"{c.name} {c.type}" for c in table.schema.columns
            )
            lines.append(
                f"TABLE {table_name} ({columns}) "
                f"[{table.row_count} rows, {table.page_count} pages]"
            )
            for index in catalog.indexes_on(table_name):
                unique = "UNIQUE " if index.unique else ""
                lines.append(
                    f"  {unique}INDEX {index.name} "
                    f"({', '.join(index.column_names)})"
                )
            for constraint in catalog.constraints_on(table_name):
                mode = (
                    " NOT ENFORCED" if constraint.is_informational else ""
                )
                lines.append(f"  {constraint.describe()}{mode}")
        for name in sorted(catalog.summary_tables()):
            lines.append(f"SUMMARY TABLE {name}")
        for constraint_name in self.registry.names():
            lines.append(self.registry.get(constraint_name).describe())
        if self.durability is not None:
            lines.append(self.durability.describe())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SoftDB(tables={self.database.catalog.table_names()}, "
            f"soft_constraints={self.registry.names()})"
        )
