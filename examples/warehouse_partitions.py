"""Data-warehouse patterns: informational constraints and branch knockout.

Two of the paper's warehouse motifs in one scenario:

1. **Informational constraints** (Section 1): the loader guarantees
   referential integrity, so the FKs are declared NOT ENFORCED — never
   checked, still used for join elimination.
2. **Union-all branch knockout** (Section 5): monthly partition tables
   under a UNION ALL view; range constraints let the optimizer skip the
   branches a query cannot touch — here the ranges are *mined* into soft
   constraints rather than declared.

Run:  python examples/warehouse_partitions.py
"""

from repro.discovery import mine_range_checks
from repro.harness.runner import compare_optimizers
from repro.workload.queries import monthly_union_sql
from repro.workload.schemas import (
    YEAR_START,
    build_monthly_union_scenario,
    build_star_schema,
)


def main() -> None:
    # ---------------------------------------------------------------- part 1
    print("=== informational constraints: join elimination ===")
    star = build_star_schema(
        facts=20000, customers=500, products=200, informational_fks=True
    )
    sql = (
        "SELECT s.id, s.amount FROM sales s, customer c "
        "WHERE s.customer_id = c.id AND s.amount > 450.0"
    )
    enabled, disabled = compare_optimizers(star, sql)
    print("query:", sql)
    for rewrite in enabled.plan.rewrites_applied:
        print("  fired:", rewrite)
    print(
        f"  pages: {enabled.page_reads} with the rewrite vs "
        f"{disabled.page_reads} without (answers identical)"
    )
    # The promise is external: an orphan insert is *accepted*.
    star.execute("INSERT INTO sales VALUES (999999, 424242, 1, 1, 1.0)")
    print("  orphan fact row accepted (constraint is NOT ENFORCED)\n")

    # ---------------------------------------------------------------- part 2
    print("=== mined range SCs: union-all branch knockout ===")
    db, tables = build_monthly_union_scenario(
        months=12, rows_per_month=2000, declare_checks=False
    )
    q1_sql = monthly_union_sql(tables, YEAR_START, YEAR_START + 89)

    before, baseline = compare_optimizers(db, q1_sql)
    print(f"before mining: {before.page_reads} pages (no constraints known)")

    mined = mine_range_checks(db.database, tables, "day")
    for constraint in mined:
        db.add_soft_constraint(constraint)
    print(f"mined {len(mined)} per-branch range soft constraints")

    after, baseline = compare_optimizers(db, q1_sql)
    knocked = sum("knocked" in r for r in after.plan.rewrites_applied)
    print(
        f"after mining:  {after.page_reads} pages, {knocked} of "
        f"{len(tables)} branches knocked out"
    )
    print(
        f"speedup for the Jan-Mar query: "
        f"{baseline.page_reads / after.page_reads:.1f}x"
    )


if __name__ == "__main__":
    main()
