"""The paper's Section 4.4 worked example, end to end: late_shipments.

The business rule "products are shipped within three weeks" is true of 99%
of the data.  It cannot be an integrity constraint (1% of rows violate it
and that's fine), but holding it as a soft constraint whose exceptions are
materialized in an automated summary table lets the optimizer answer

    SELECT * FROM purchase WHERE ship_date = :d

as

    (SELECT * FROM purchase
      WHERE ship_date = :d AND order_date BETWEEN :d - 21 AND :d)
    UNION ALL
    (SELECT * FROM late_shipments WHERE ship_date = :d)

— the first branch through the order_date index, the second over the tiny
exception table, with exact answers.

Run:  python examples/late_shipments.py
"""

from repro.harness.runner import compare_optimizers
from repro.workload.schemas import YEAR_START, build_purchase_scenario


def main() -> None:
    print("building the purchase table (20k orders, 1% ship late)...")
    db = build_purchase_scenario(rows=20000, exception_rate=0.01, seed=2001)

    # DB2-style AST DDL: the summary table materializes the rule's
    # violations, and the rule itself is registered as a soft constraint
    # (its confidence measured by verification).
    db.execute(
        "CREATE SUMMARY TABLE late_shipments AS (SELECT * FROM purchase "
        "WHERE ship_date > order_date + 21 OR ship_date < order_date)"
    )
    rule = db.registry.get("late_shipments_rule")
    exceptions = db.database.table("late_shipments").row_count
    print(f"rule: {rule.describe()}")
    print(f"late_shipments holds {exceptions} exception rows\n")

    probe = YEAR_START + 400
    query = f"SELECT id, amount FROM purchase WHERE ship_date = {probe}"
    print("EXPLAIN", query)
    print(db.explain(query))

    enabled, disabled = compare_optimizers(db, query)
    print(
        f"\nrouted plan:   {enabled.row_count} rows, "
        f"{enabled.page_reads} pages read"
    )
    print(
        f"full scan:     {disabled.row_count} rows, "
        f"{disabled.page_reads} pages read"
    )
    print(
        f"speedup:       {disabled.page_reads / enabled.page_reads:.1f}x "
        "(identical answers, checked)"
    )

    # Updates keep the exception table exact: a very late shipment lands
    # in late_shipments automatically and is still found by the query.
    print("\ninserting a 60-days-late shipment and re-running...")
    db.execute(
        f"INSERT INTO purchase VALUES (999999, {probe - 60}, {probe}, 19.99)"
    )
    rows = db.query(query)
    found = any(row["id"] == 999999 for row in rows)
    print(
        f"late order visible through the routed plan: {found} "
        f"(exception table now {db.database.table('late_shipments').row_count} rows)"
    )


if __name__ == "__main__":
    main()
