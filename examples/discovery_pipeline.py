"""The full SC process of paper Section 3.2: discovery → selection →
maintenance, against a workload.

A sensor database has an undeclared linear correlation (power ≈ 2·load),
undeclared functional dependencies (site → region), and range structure.
The miners find candidate soft constraints, the selection engine ranks
them against the workload, the winners are activated, and the optimizer
immediately exploits them — until an update overturns one and the
maintenance machinery reacts.

Run:  python examples/discovery_pipeline.py
"""

from repro import SoftDB
from repro.discovery import (
    SelectionEngine,
    Workload,
    mine_functional_dependencies,
    mine_linear_correlations,
    mine_min_max,
)
from repro.softcon.maintenance import AsyncRepairPolicy
from repro.workload.datagen import DataGenerator


def build_sensor_db() -> SoftDB:
    db = SoftDB()
    db.execute(
        "CREATE TABLE readings (id INT PRIMARY KEY, site INT, region INT, "
        "load DOUBLE, power DOUBLE)"
    )
    generator = DataGenerator(314)
    batch = []
    for n in range(10000):
        site = generator.integer(0, 49)
        load = generator.uniform(0.0, 400.0)
        power = 2.0 * load + 12.0 + generator.uniform(-3.0, 3.0)
        batch.append((n, site, site % 5, load, power))
    db.database.insert_many("readings", batch)
    db.execute("CREATE INDEX idx_power ON readings (power)")
    db.runstats_all()
    return db


def main() -> None:
    db = build_sensor_db()

    # -- stage 1: discovery -------------------------------------------------
    print("=== discovery ===")
    candidates = []
    candidates += mine_linear_correlations(
        db.database, "readings",
        column_pairs=[("power", "load"), ("load", "power")],
        confidence_levels=(1.0, 0.95),
    )
    candidates += mine_functional_dependencies(
        db.database, "readings", columns=["site", "region"], max_g3_error=0.0
    )
    candidates += mine_min_max(db.database, "readings", ["load"])
    for candidate in candidates:
        print(" ", candidate.describe())

    # -- stage 2: selection against the workload --------------------------------
    print("\n=== selection ===")
    workload = Workload.from_sql(
        [
            ("SELECT id, power FROM readings WHERE load = 200.0", 20.0),
            ("SELECT site, region, avg(power) AS p FROM readings "
             "GROUP BY site, region", 5.0),
        ]
    )
    engine = SelectionEngine(update_weight=0.05)
    ranked = engine.rank(candidates, workload, db.database)
    for score in ranked[:5]:
        print(
            f"  {score.constraint.name:<38} benefit={score.benefit:6.2f} "
            f"cost={score.maintenance_cost:5.2f} net={score.net_utility:6.2f}"
        )
    activate, probation = engine.select(
        candidates, workload, db.database, keep=4, activation_threshold=0.5
    )
    policy = AsyncRepairPolicy(drop_threshold=0.5)
    for constraint in activate:
        db.add_soft_constraint(constraint, policy=policy, verify_first=True)
    print(f"activated: {[c.name for c in activate]}")
    print(f"probation: {[c.name for c in probation]}")

    # -- exploitation -----------------------------------------------------------
    print("\n=== exploitation ===")
    hot_query = "SELECT id, power FROM readings WHERE load = 200.0"
    print(db.explain(hot_query))

    grouped = "SELECT site, region, avg(power) AS p FROM readings GROUP BY site, region"
    plan = db.plan(grouped)
    for rewrite in plan.rewrites_applied:
        print("  fired:", rewrite)

    # -- maintenance: an outlier reading overturns the linear ASC ----------------
    print("\n=== violation and asynchronous repair ===")
    db.execute("INSERT INTO readings VALUES (99999, 3, 3, 200.0, 5000.0)")
    linear = next(c for c in activate if c.kind == "linear")
    print(f"after outlier: {linear.describe()}")
    outcomes = policy.run_pending(db.registry, db.database)
    print(f"async repair outcomes: {outcomes}")
    print(f"after repair:  {linear.describe()}")
    print(
        "still serving cardinality estimation via twinning:",
        bool(db.plan(hot_query).estimation_notes)
        or linear.usable_in_rewrite,
    )


if __name__ == "__main__":
    main()
