"""Plan resilience: how cached plans survive a changing database.

Three mechanisms from the paper's Sections 3.2 / 4.1 / 4.2, demonstrated
on one workload:

1. **Runtime parameters** (§4.2): a min/max soft constraint is read at
   execution time — widening repairs never invalidate the plan.
2. **Backup plans** (§4.1): a plan that *does* rely on an ASC keeps an
   ASC-free alternative; when the ASC is overturned, the package reverts
   instead of recompiling.
3. **Probation** (§3.2): a freshly-discovered constraint is assessed in
   shadow mode before being trusted.

Run:  python examples/resilient_plans.py
"""

from repro import SoftDB
from repro.discovery import mine_linear_correlations
from repro.optimizer.planner import PlanCache
from repro.softcon import MinMaxSC
from repro.softcon.maintenance import DropPolicy, RepairPolicy
from repro.workload.datagen import DataGenerator


def build_db() -> SoftDB:
    db = SoftDB()
    db.execute(
        "CREATE TABLE metrics (id INT PRIMARY KEY, load DOUBLE, "
        "latency DOUBLE)"
    )
    generator = DataGenerator(2718)
    batch = []
    for n in range(8000):
        load = generator.uniform(0.0, 100.0)
        batch.append((n, load, 5.0 * load + 20.0 + generator.uniform(-2, 2)))
    db.database.insert_many("metrics", batch)
    db.execute("CREATE INDEX idx_latency ON metrics (latency)")
    db.runstats_all()
    return db


def main() -> None:
    db = build_db()

    # -- 1. runtime parameters -----------------------------------------------
    print("=== runtime parameters (Section 4.2) ===")
    db.add_soft_constraint(
        MinMaxSC("load_range", "metrics", "load", 0.0, 100.0),
        policy=RepairPolicy(),
    )
    cache = PlanCache(db.optimizer, backup_plans=True)
    sql = "SELECT id FROM metrics WHERE load >= 95.0"
    plan = cache.get_plan(sql)
    print(db.explain(sql))
    print(f"rows: {db.executor.execute(plan).row_count}")
    print("inserting load=250 (widens the min/max SC via repair)...")
    db.execute("INSERT INTO metrics VALUES (99999, 250.0, 1270.0)")
    same = cache.get_plan(sql)
    print(
        f"plan reused: {same is plan}; invalidations: {cache.invalidations}; "
        f"rows now: {db.executor.execute(same).row_count} "
        "(the new row is found — PARAM reads the current bound)\n"
    )

    # -- 2. probation, then backup plans -----------------------------------------
    print("=== probation (Section 3.2) ===")
    (asc,) = mine_linear_correlations(
        db.database, "metrics", [("latency", "load")], confidence_levels=(1.0,)
    )
    db.registry.register(asc, policy=DropPolicy())
    db.registry.hold_in_probation(asc.name)
    hot = "SELECT id, latency FROM metrics WHERE load = 42.0"
    for _ in range(5):
        db.plan(hot)  # the shadow pass counts would-have-helped queries
    print(f"probation report: {db.registry.probation_report()}")
    promoted = db.registry.promote_ready(min_uses=3)
    print(f"promoted after assessment: {promoted}\n")

    print("=== backup plans (Section 4.1) ===")
    plan = cache.get_plan(hot)
    print(
        f"plan depends on: {sorted(plan.sc_dependencies)} "
        f"(backup compiled: {len(cache._backups)} entries)"
    )
    print("inserting an outlier that overturns the correlation...")
    db.execute("INSERT INTO metrics VALUES (100000, 42.0, 99999.0)")
    fallback = cache.get_plan(hot)
    rows = db.executor.execute(fallback).rows
    print(
        f"reverted to backup (fallbacks={cache.fallbacks}, "
        f"recompiles avoided); outlier visible: "
        f"{any(r['id'] == 100000 for r in rows)}"
    )


if __name__ == "__main__":
    main()
