"""A failover drill: kill the primary, watch the fleet elect, fence,
and converge — then try (and fail) to split the brain.

Walks the full ISSUE-10 story end to end:

1. a `FailoverCluster` ships a tagged commit storm to two replicas,
   ledgering which commits reach **cluster-ack** (durable on the
   primary and mirrored by at least one replica);
2. an asymmetric partition cuts the heartbeat plane while the data
   plane stays up — the lease expires, the detector suspects;
3. `promote()` elects the most-caught-up survivor, drains it through
   crash recovery, bumps the promotion epoch, and re-attaches the rest;
4. the deposed-but-alive primary tries to keep writing: every attempt
   is rejected with a typed `FencedError` (its reads still serve —
   merely stale, the paper's Section 3.3 currency in the extreme);
5. the old primary rejoins as a replica and the fleet converges with
   zero cluster-acked commits lost.

Run:  python examples/failover_drill.py
"""

import tempfile
from pathlib import Path

from repro import SoftDB
from repro.errors import FencedError
from repro.replication import FailoverCluster, Replica


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="failover_drill_"))
    fleet = FailoverCluster(SoftDB.open(root / "primary"), lease_timeout=1.0)
    fleet.primary_db.execute("CREATE TABLE kv (id INT PRIMARY KEY, v INT)")
    for n in range(2):
        fleet.attach(Replica(root / f"r{n}", name=f"r{n}"))

    print("=== commit storm (cluster-acked = durable + mirrored) ===")
    for n in range(20):
        fleet.execute(f"INSERT INTO kv VALUES ({n}, {n * 10})", tag=n)
        fleet.tick(advance=0.1)
    print(f"cluster-acked: {len(fleet.cluster_acked)} commits")

    print("\n=== asymmetric partition: heartbeats cut, data plane up ===")
    deposed = fleet.primary_db
    fleet.channel.partition()
    while not fleet.primary_suspected():
        fleet.tick(advance=0.3)
    print("lease expired -> primary suspected")

    report = fleet.promote()
    print(
        f"promoted {report['winner']} at epoch {report['epoch']} "
        f"(survivors: {report['survivors']})"
    )

    print("\n=== the deposed primary tries to write ===")
    for n in range(20, 23):
        try:
            deposed.execute(f"INSERT INTO kv VALUES ({n}, 0)")
        except FencedError as exc:
            print(f"  fenced: epoch {exc.epoch} < cluster {exc.cluster_epoch}")
    stale = deposed.query("SELECT count(*) AS c FROM kv")[0]["c"]
    print(f"  ...but its reads still serve: {stale} rows (stale snapshot)")

    print("\n=== new primary keeps going; old primary rejoins ===")
    fleet.execute("INSERT INTO kv VALUES (100, 1000)", tag=100)
    fleet.channel.heal()
    rejoined = fleet.rejoin_deposed()
    fleet.shipper.pump_until_synced()
    rows = fleet.primary_db.query("SELECT count(*) AS c FROM kv")[0]["c"]
    print(f"fleet converged at {rows} rows; ex-primary now {rejoined.name}")
    missing = [
        tag
        for tag in fleet.cluster_acked
        if isinstance(tag, int)
        and not fleet.primary_db.query(f"SELECT id FROM kv WHERE id = {tag}")
    ]
    print(f"cluster-acked commits lost: {len(missing)}")

    for _name, link in fleet.shipper.links.items():
        link.replica.close()
    fleet.primary_db.close()


if __name__ == "__main__":
    main()
