"""Quickstart: the SoftDB public API in five minutes.

Creates a small database, runs SQL through the full
parse → rewrite → cost-based-optimize → execute pipeline, and shows the
soft-constraint facility at its simplest: declare a statement about the
data, let the optimizer use it, watch it survive (or not) updates.

Run:  python examples/quickstart.py
"""

from repro import SoftDB
from repro.softcon import CheckSoftConstraint, MinMaxSC
from repro.softcon.maintenance import RepairPolicy


def main() -> None:
    db = SoftDB()

    # -- ordinary SQL ------------------------------------------------------
    db.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, customer VARCHAR(20), "
        "total DOUBLE, placed DATE, shipped DATE)"
    )
    db.execute(
        "INSERT INTO orders VALUES "
        "(1, 'acme',  120.0, DATE '2001-05-01', DATE '2001-05-03'), "
        "(2, 'acme',   80.5, DATE '2001-05-02', DATE '2001-05-10'), "
        "(3, 'initech', 42.0, DATE '2001-05-04', DATE '2001-05-04'), "
        "(4, 'initech', 99.9, DATE '2001-05-10', DATE '2001-05-21'), "
        "(5, 'hooli',  310.0, DATE '2001-05-12', DATE '2001-05-13')"
    )
    db.runstats_all()  # collect optimizer statistics, DB2's RUNSTATS

    rows = db.query(
        "SELECT customer, count(*) AS n, sum(total) AS revenue "
        "FROM orders GROUP BY customer ORDER BY revenue DESC"
    )
    print("revenue by customer:")
    for row in rows:
        print(f"  {row['customer']:<8} n={row['n']}  revenue={row['revenue']}")

    # -- a soft constraint -------------------------------------------------
    # Not an integrity constraint: nothing stops future updates from
    # breaking it.  But while it holds, the optimizer may use it.
    ship_fast = CheckSoftConstraint(
        "ship_fast", "orders", "shipped <= placed + 14"
    )
    db.add_soft_constraint(ship_fast, policy=RepairPolicy(), verify_first=True)
    print(f"\nregistered: {ship_fast.describe()}")

    bounds = MinMaxSC("total_range", "orders", "total", 0.0, 500.0)
    db.add_soft_constraint(bounds, policy=RepairPolicy())

    # The min/max SC proves this query empty without touching the table:
    plan = db.plan("SELECT id FROM orders WHERE total > 1000.0")
    print("\nplan for an out-of-known-range query:")
    print(db.explain("SELECT id FROM orders WHERE total > 1000.0"))

    # -- updates and maintenance ------------------------------------------------
    # This order violates ship_fast (shipped 40 days after placed); the
    # RepairPolicy absorbs the violation by demoting the SC to statistical.
    db.execute(
        "INSERT INTO orders VALUES "
        "(6, 'acme', 55.0, DATE '2001-06-01', DATE '2001-07-11')"
    )
    print(f"\nafter a violating insert: {ship_fast.describe()}")
    print(
        "usable in rewrite:", ship_fast.usable_in_rewrite,
        "| usable in estimation:", ship_fast.usable_in_estimation,
    )


if __name__ == "__main__":
    main()
